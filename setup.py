"""Setuptools shim.

The offline environment used for this reproduction lacks the ``wheel``
package, which modern PEP 517 editable installs require; keeping a setup.py
allows ``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on fully provisioned machines) to work everywhere.
"""

from setuptools import setup

setup()
