"""Tests for the GBDT implementation and the HL-Pow baseline."""

import numpy as np
import pytest

from repro.baselines.gbdt import (
    DecisionTreeRegressor,
    GBDTConfig,
    GradientBoostingRegressor,
    tune_gbdt,
)
from repro.baselines.hlpow import HLPowConfig, HLPowModel, hlpow_features


# --------------------------------------------------------------------------- decision tree


def test_tree_fits_piecewise_constant_function():
    rng = np.random.default_rng(0)
    features = rng.random((200, 3))
    targets = np.where(features[:, 0] > 0.5, 2.0, -1.0)
    tree = DecisionTreeRegressor(max_depth=2).fit(features, targets)
    predictions = tree.predict(features)
    assert np.mean(np.abs(predictions - targets)) < 0.05


def test_tree_respects_min_samples_leaf():
    features = np.arange(10.0).reshape(-1, 1)
    targets = np.arange(10.0)
    deep = DecisionTreeRegressor(max_depth=10, min_samples_leaf=5).fit(features, targets)
    # With a leaf size of 5 on 10 samples the tree can split at most once.
    assert len(set(deep.predict(features))) <= 2


def test_tree_constant_targets_is_single_leaf():
    features = np.random.default_rng(0).random((20, 4))
    targets = np.full(20, 3.3)
    tree = DecisionTreeRegressor().fit(features, targets)
    assert np.allclose(tree.predict(features), 3.3)


def test_tree_validation_errors():
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_depth=0)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_features=1.5)
    tree = DecisionTreeRegressor()
    with pytest.raises(RuntimeError):
        tree.predict(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        tree.fit(np.zeros(5), np.zeros(5))


# --------------------------------------------------------------------------- GBDT


def test_gbdt_outperforms_single_tree_on_smooth_function():
    rng = np.random.default_rng(1)
    features = rng.random((300, 4))
    targets = np.sin(3 * features[:, 0]) + features[:, 1] ** 2
    tree = DecisionTreeRegressor(max_depth=3).fit(features, targets)
    boosted = GradientBoostingRegressor(
        GBDTConfig(n_estimators=60, max_depth=3, max_features=None)
    ).fit(features, targets)
    tree_error = np.mean(np.abs(tree.predict(features) - targets))
    boosted_error = np.mean(np.abs(boosted.predict(features) - targets))
    assert boosted_error < tree_error * 0.6
    assert boosted.num_trees == 60


def test_gbdt_config_validation():
    with pytest.raises(ValueError):
        GBDTConfig(n_estimators=0)
    with pytest.raises(ValueError):
        GBDTConfig(learning_rate=0.0)


def test_tune_gbdt_returns_best_on_validation():
    rng = np.random.default_rng(2)
    features = rng.random((150, 5))
    targets = 2.0 * features[:, 0] + features[:, 3] + 0.5
    model, config = tune_gbdt(
        features[:100], targets[:100], features[100:], targets[100:],
        n_estimators_grid=(30,), max_depth_grid=(2, 4), learning_rate_grid=(0.1,),
    )
    assert config.max_depth in (2, 4)
    predictions = model.predict(features[100:])
    assert np.mean(np.abs(predictions - targets[100:]) / targets[100:]) < 0.2


# --------------------------------------------------------------------------- HL-Pow


def test_hlpow_feature_vector_is_fixed_length(small_dataset):
    config = HLPowConfig(histogram_bins=6)
    lengths = {hlpow_features(sample, config).shape[0] for sample in small_dataset}
    assert len(lengths) == 1  # alignment across designs, the point of histograms


def test_hlpow_features_depend_on_activity_not_structure(small_dataset):
    sample = small_dataset[0]
    features = hlpow_features(sample)
    assert features.ndim == 1
    assert np.all(np.isfinite(features))
    assert features.sum() > 0


def test_hlpow_config_validation():
    with pytest.raises(ValueError):
        HLPowConfig(histogram_bins=1)
    with pytest.raises(ValueError):
        HLPowConfig(activation_rate_cap=0.0)


def test_hlpow_model_fit_predict(small_dataset):
    model = HLPowModel(HLPowConfig(tune_hyperparameters=False))
    model.fit(small_dataset.samples, target="dynamic")
    predictions = model.predict(small_dataset.samples)
    assert predictions.shape == (len(small_dataset),)
    assert np.all(predictions > 0)
    targets = small_dataset.targets("dynamic")
    training_error = np.mean(np.abs(predictions - targets) / targets)
    assert training_error < 0.5  # fits the training set reasonably


def test_hlpow_model_requires_fit_and_enough_samples(small_dataset):
    model = HLPowModel()
    with pytest.raises(RuntimeError):
        model.predict(small_dataset.samples)
    with pytest.raises(ValueError):
        model.fit(small_dataset.samples[:2])
