"""Tests for stimulus generation, activity tracing and activity simulation."""

import numpy as np
import pytest

from repro.activity.simulator import simulate_activity
from repro.activity.stimuli import StimulusGenerator, generate_stimuli
from repro.activity.tracer import ActivityTracer, ValueStreamStats
from repro.hls.frontend import lower_kernel
from repro.ir.instructions import Opcode


# --------------------------------------------------------------------------- stimuli


def test_stimuli_cover_all_arrays(gemm_kernel):
    inputs = generate_stimuli(gemm_kernel, seed=0)
    assert set(inputs) == {"A", "B", "C"}
    assert inputs["A"].shape == (6, 6)


def test_stimuli_are_reproducible_and_seed_sensitive(gemm_kernel):
    a = generate_stimuli(gemm_kernel, seed=1)
    b = generate_stimuli(gemm_kernel, seed=1)
    c = generate_stimuli(gemm_kernel, seed=2)
    assert np.allclose(a["A"], b["A"])
    assert not np.allclose(a["A"], c["A"])


def test_stimuli_output_arrays_start_at_zero(atax_kernel):
    inputs = generate_stimuli(atax_kernel, seed=0)
    assert np.allclose(inputs["y"], 0.0)


def test_stimulus_profiles_change_activity(gemm_kernel):
    design = lower_kernel(gemm_kernel)
    uniform = simulate_activity(design, stimuli=generate_stimuli(gemm_kernel, 0, "uniform"))
    sparse = simulate_activity(design, stimuli=generate_stimuli(gemm_kernel, 0, "sparse"))
    assert uniform.total_hamming() > sparse.total_hamming()


def test_stimulus_generator_rejects_unknown_profile():
    with pytest.raises(ValueError):
        StimulusGenerator(profile="chaotic")


# --------------------------------------------------------------------------- tracer


def test_value_stream_stats_accumulates_hamming():
    stats = ValueStreamStats(bit_width=8)
    stats.observe(0b0000)
    stats.observe(0b1111)
    stats.observe(0b1111)  # unchanged: no transition counted
    stats.observe(0b0111)
    assert stats.exec_count == 4
    assert stats.change_count == 2
    assert stats.hamming_sum == 4 + 1
    assert stats.switching_activity(10) == pytest.approx(0.5)
    assert stats.activation_rate(10) == pytest.approx(0.2)


def test_value_stream_stats_requires_positive_latency():
    stats = ValueStreamStats(bit_width=8)
    stats.observe(1)
    with pytest.raises(ValueError):
        stats.switching_activity(0)


def test_value_stream_stats_merge():
    a = ValueStreamStats(bit_width=8)
    b = ValueStreamStats(bit_width=16)
    for value in (0, 3, 0):
        a.observe(value)
    for value in (1, 2):
        b.observe(value)
    merged = a.merged_with(b)
    assert merged.bit_width == 16
    assert merged.exec_count == 5
    assert merged.hamming_sum == a.hamming_sum + b.hamming_sum


def test_tracer_edge_activity_directions(gemm_kernel):
    design = lower_kernel(gemm_kernel)
    profile = simulate_activity(design, seed=0)
    # Pick one fmul and its fadd consumer and check both directions are populated.
    fmuls = [i for i in design.function.instructions if i.opcode == Opcode.FMUL]
    assert fmuls
    fmul = fmuls[-1]
    consumers = [
        (instr, slot)
        for instr in design.function.instructions
        for slot, op in enumerate(instr.operands)
        if op is fmul
    ]
    assert consumers
    consumer, slot = consumers[0]
    activity = profile.edge_activity(fmul.uid, consumer.uid, slot, latency=100)
    assert activity.sa_src > 0
    assert activity.sa_snk > 0
    assert activity.ar_src > 0
    assert activity.as_tuple() == (
        activity.sa_src,
        activity.sa_snk,
        activity.ar_src,
        activity.ar_snk,
    )


# --------------------------------------------------------------------------- simulator


def test_activity_profile_counts_dynamic_instructions(gemm_kernel):
    design = lower_kernel(gemm_kernel)
    profile = simulate_activity(design, seed=0)
    assert profile.dynamic_instructions > 6**3  # at least one op per innermost iteration
    assert profile.kernel_name == "gemm"
    assert profile.total_hamming() > 0
    assert profile.average_toggle_rate(1000) > 0


def test_node_activity_features(gemm_kernel):
    design = lower_kernel(gemm_kernel)
    profile = simulate_activity(design, seed=0)
    fadd = next(i for i in design.function.instructions if i.opcode == Opcode.FADD)
    features = profile.node_activity(fadd.uid, len(fadd.operands), latency=500)
    assert set(features) == {
        "activation_rate",
        "input_switching",
        "output_switching",
        "overall_switching",
    }
    assert features["overall_switching"] == pytest.approx(
        features["input_switching"] + features["output_switching"]
    )


def test_activity_unknown_uid_returns_empty_stats(gemm_kernel):
    design = lower_kernel(gemm_kernel)
    profile = simulate_activity(design, seed=0)
    stats = profile.result_stats(10**9)
    assert stats.exec_count == 0
    assert stats.switching_activity(10) == 0.0


def test_tracer_is_attached_by_simulator(atax_kernel):
    design = lower_kernel(atax_kernel)
    profile = simulate_activity(design, seed=1)
    loads = [i for i in design.function.instructions if i.opcode == Opcode.LOAD]
    assert any(profile.result_stats(load.uid).exec_count > 0 for load in loads)


def test_activity_tracer_standalone_observe():
    tracer = ActivityTracer()
    from repro.ir.instructions import Instruction
    from repro.ir.types import FLOAT32

    instr = Instruction(Opcode.FADD, [], FLOAT32, name="x")
    tracer.on_execute(instr, [], 1.0)
    tracer.on_execute(instr, [], 2.0)
    assert tracer.result_stats(instr.uid).exec_count == 2
    assert tracer.observed_instructions == 2
