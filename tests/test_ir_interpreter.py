"""Tests for the IR interpreter: numerical correctness against numpy references."""

import numpy as np
import pytest

from repro.hls.frontend import lower_kernel
from repro.ir.builder import IRBuilder
from repro.ir.interpreter import ExecutionTrace, IRInterpreter
from repro.ir.types import ArrayType, FloatType
from repro.ir.values import ArgumentDirection
from repro.kernels.polybench import ALPHA, BETA, polybench_kernel


def test_interpreter_elementwise_multiply():
    builder = IRBuilder("scale")
    a = builder.add_array_argument("a", (4,))
    out = builder.add_array_argument("out", (4,), direction=ArgumentDirection.OUT)
    with builder.loop("i", 4) as i:
        addr = builder.getelementptr(a, [i])
        value = builder.load(addr)
        scaled = builder.fmul(value, builder.const_float(3.0))
        builder.store(scaled, builder.getelementptr(out, [i]))
    builder.ret()
    function = builder.build()

    inputs = {"a": np.array([1.0, 2.0, 3.0, 4.0])}
    outputs = IRInterpreter(function).run(inputs)
    assert np.allclose(outputs["out"], np.array([3.0, 6.0, 9.0, 12.0]))


def test_interpreter_accumulator_via_internal_buffer():
    builder = IRBuilder("dot")
    a = builder.add_array_argument("a", (5,))
    b = builder.add_array_argument("b", (5,))
    out = builder.add_array_argument("out", (1,), direction=ArgumentDirection.OUT)
    acc = builder.alloca("acc", ArrayType(FloatType(32), (1,)))
    builder.store(builder.const_float(0.0), builder.getelementptr(acc, [builder.const_int(0)]))
    with builder.loop("i", 5) as i:
        lhs = builder.load(builder.getelementptr(a, [i]))
        rhs = builder.load(builder.getelementptr(b, [i]))
        product = builder.fmul(lhs, rhs)
        current = builder.load(builder.getelementptr(acc, [builder.const_int(0)]))
        builder.store(builder.fadd(current, product), builder.getelementptr(acc, [builder.const_int(0)]))
    final = builder.load(builder.getelementptr(acc, [builder.const_int(0)]))
    builder.store(final, builder.getelementptr(out, [builder.const_int(0)]))
    builder.ret()
    function = builder.build()

    rng = np.random.default_rng(0)
    a_values, b_values = rng.random(5), rng.random(5)
    outputs = IRInterpreter(function).run({"a": a_values, "b": b_values})
    assert outputs["out"][0] == pytest.approx(float(np.dot(a_values, b_values)), rel=1e-5)


def test_interpreter_requires_scalar_inputs():
    builder = IRBuilder("needs_scalar")
    builder.add_scalar_argument("x")
    builder.ret()
    with pytest.raises(ValueError):
        IRInterpreter(builder.build()).run({})


def test_interpreter_rejects_wrong_array_size():
    builder = IRBuilder("wrong_size")
    builder.add_array_argument("a", (4,))
    builder.ret()
    with pytest.raises(ValueError):
        IRInterpreter(builder.build()).run({"a": np.zeros(3)})


def test_execution_trace_records_and_truncates():
    builder = IRBuilder("traced")
    a = builder.add_array_argument("a", (4,))
    with builder.loop("i", 4) as i:
        builder.load(builder.getelementptr(a, [i]))
    builder.ret()
    function = builder.build()

    trace = ExecutionTrace(max_events=3)
    interpreter = IRInterpreter(function)
    interpreter.add_observer(trace)
    interpreter.run({"a": np.arange(4.0)})
    assert len(trace.events) == 3
    assert trace.truncated
    assert interpreter.dynamic_instruction_count > 3


# --------------------------------------------------------------------------- PolyBench correctness


def _reference(name: str, n: int, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Numpy reference implementations of the PolyBench kernels under test."""
    if name == "gemm":
        c = inputs["C"].copy()
        return {"C": ALPHA * inputs["A"] @ inputs["B"] + BETA * c}
    if name == "atax":
        tmp = inputs["A"] @ inputs["x"]
        return {"y": inputs["A"].T @ tmp}
    if name == "mvt":
        return {
            "x1": inputs["x1"] + inputs["A"] @ inputs["y1"],
            "x2": inputs["x2"] + inputs["A"].T @ inputs["y2"],
        }
    if name == "bicg":
        return {"s": inputs["A"].T @ inputs["r"], "q": inputs["A"] @ inputs["p"]}
    if name == "gesummv":
        return {"y": ALPHA * inputs["A"] @ inputs["x"] + BETA * inputs["B"] @ inputs["x"]}
    if name == "syrk":
        return {"C": ALPHA * inputs["A"] @ inputs["A"].T + BETA * inputs["C"]}
    raise KeyError(name)


@pytest.mark.parametrize("name", ["gemm", "atax", "mvt", "bicg", "gesummv", "syrk"])
def test_polybench_kernels_match_numpy_reference(name):
    n = 5
    kernel = polybench_kernel(name, n)
    design = lower_kernel(kernel)
    rng = np.random.default_rng(42)
    inputs = {}
    for spec in kernel.arrays:
        if spec.direction == "out":
            inputs[spec.name] = np.zeros(spec.shape)
        else:
            inputs[spec.name] = rng.uniform(-1.0, 1.0, size=spec.shape)
    outputs = IRInterpreter(design.function).run(inputs)
    expected = _reference(name, n, inputs)
    for array_name, reference in expected.items():
        assert np.allclose(outputs[array_name], reference, rtol=1e-4, atol=1e-5), array_name


def test_unrolled_gemm_matches_baseline_result():
    from repro.hls.pragmas import DesignDirectives, LoopPragmas

    n = 4
    kernel = polybench_kernel("gemm", n)
    rng = np.random.default_rng(1)
    inputs = {
        "A": rng.random((n, n)),
        "B": rng.random((n, n)),
        "C": rng.random((n, n)),
    }
    baseline = IRInterpreter(lower_kernel(kernel).function).run(dict(inputs))
    unrolled_directives = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=2), "j0": LoopPragmas(unroll_factor=2)}
    )
    unrolled = IRInterpreter(
        lower_kernel(polybench_kernel("gemm", n), unrolled_directives).function
    ).run(dict(inputs))
    assert np.allclose(baseline["C"], unrolled["C"], rtol=1e-5)
