"""Tests for Pareto utilities, ADRS and the DSE explorer."""

import numpy as np
import pytest

from repro.dse.explorer import DesignCandidate, DSEConfig, DSEResult, ParetoExplorer
from repro.dse.pareto import ParetoPoint, adrs, pareto_front


# --------------------------------------------------------------------------- pareto / adrs


def test_pareto_front_simple_case():
    points = np.array(
        [
            [1.0, 5.0],  # frontier (lowest latency)
            [2.0, 3.0],  # frontier
            [3.0, 4.0],  # dominated by (2, 3)
            [4.0, 1.0],  # frontier (lowest power)
            [5.0, 2.0],  # dominated by (4, 1)
        ]
    )
    assert set(pareto_front(points).tolist()) == {0, 1, 3}


def test_pareto_front_single_point_and_validation():
    assert pareto_front(np.array([[1.0, 1.0]])).tolist() == [0]
    with pytest.raises(ValueError):
        pareto_front(np.zeros((0, 2)))
    with pytest.raises(ValueError):
        pareto_front(np.zeros((3, 3)))


def test_pareto_front_accepts_pareto_points():
    points = [ParetoPoint(1.0, 2.0), ParetoPoint(2.0, 1.0), ParetoPoint(3.0, 3.0)]
    assert set(pareto_front(points).tolist()) == {0, 1}


def test_adrs_zero_when_sets_match():
    exact = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0]])
    assert adrs(exact, exact) == pytest.approx(0.0)


def test_adrs_positive_for_worse_approximation():
    exact = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0]])
    worse = np.array([[1.0, 5.0], [2.0, 3.0], [4.0, 2.0]])
    value = adrs(exact, worse)
    assert value > 0
    # 25 % degradation on the first point, 50 % on the second, 100 % on the third.
    assert value == pytest.approx((0.25 + 0.5 + 1.0) / 3)


def test_adrs_ignores_dominating_approximations():
    exact = np.array([[2.0, 2.0]])
    better = np.array([[1.0, 1.0]])
    assert adrs(exact, better) == 0.0


# --------------------------------------------------------------------------- explorer


def make_candidates(count: int = 50, seed: int = 0) -> list[DesignCandidate]:
    rng = np.random.default_rng(seed)
    candidates = []
    for index in range(count):
        config = rng.random(4)
        latency = 100.0 + 900.0 * config[0]
        power = 0.05 + 0.25 * (1.2 - config[0]) + 0.02 * config[1]
        candidates.append(
            DesignCandidate(
                index=index,
                latency=latency,
                true_power=float(power),
                config_vector=config,
            )
        )
    return candidates


def perfect_predictor(batch):
    return np.array([c.true_power for c in batch])


def noisy_predictor(noise, seed=0):
    rng = np.random.default_rng(seed)

    def predict(batch):
        return np.array([c.true_power * (1 + rng.normal(0, noise)) for c in batch])

    return predict


def test_dse_config_validation():
    with pytest.raises(ValueError):
        DSEConfig(initial_budget=0.5, total_budget=0.2)
    with pytest.raises(ValueError):
        DSEConfig(batch_size=0)
    with pytest.raises(ValueError):
        DSEConfig(exploration_fraction=2.0)


def test_candidate_validation():
    with pytest.raises(ValueError):
        DesignCandidate(index=0, latency=0.0, true_power=0.1, config_vector=[1.0])


def test_explorer_respects_budget():
    candidates = make_candidates(60)
    config = DSEConfig(initial_budget=0.05, total_budget=0.3, seed=1)
    result = ParetoExplorer(config).explore(candidates, perfect_predictor)
    assert isinstance(result, DSEResult)
    assert result.num_sampled <= int(round(0.3 * 60))
    assert result.num_sampled >= int(round(0.05 * 60))
    assert result.history


def test_explorer_with_perfect_predictor_achieves_low_adrs():
    candidates = make_candidates(80, seed=3)
    config = DSEConfig(initial_budget=0.05, total_budget=0.5, seed=0)
    result = ParetoExplorer(config).explore(candidates, perfect_predictor)
    assert result.adrs < 0.35
    assert set(result.approximate_pareto_indices).issubset(set(result.sampled_indices))


def test_explorer_better_predictor_gives_better_adrs_on_average():
    candidates = make_candidates(80, seed=4)
    good, bad = [], []
    for seed in range(3):
        config = DSEConfig(initial_budget=0.05, total_budget=0.4, seed=seed)
        good.append(ParetoExplorer(config).explore(candidates, perfect_predictor).adrs)
        bad.append(
            ParetoExplorer(config).explore(candidates, noisy_predictor(0.8, seed)).adrs
        )
    assert np.mean(good) <= np.mean(bad) + 1e-9


def test_explorer_larger_budget_does_not_hurt():
    candidates = make_candidates(70, seed=5)
    small = ParetoExplorer(DSEConfig(total_budget=0.15, seed=2)).explore(
        candidates, perfect_predictor
    )
    large = ParetoExplorer(DSEConfig(total_budget=0.6, seed=2)).explore(
        candidates, perfect_predictor
    )
    assert large.adrs <= small.adrs + 0.05


def test_explorer_requires_enough_candidates():
    with pytest.raises(ValueError):
        ParetoExplorer().explore(make_candidates(2), perfect_predictor)
