"""Backend-equivalence property suite.

The contract of :mod:`repro.backend`: every registered backend produces
**bitwise-identical** forward-path results.  This suite drives random graphs
and batches through the full stack — ``predict_batch``, ``estimate_many``
(fresh and through the :class:`InferenceCache`), and the pooled forward — and
compares raw float bytes between the ``numpy`` reference and the
``optimized`` backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime import RuntimeConfig
from repro.serve import EstimateRequest, PowerEstimationService

from test_serve_service import build_synthetic_samples


@pytest.fixture(scope="module")
def single_model():
    samples = build_synthetic_samples(36, seed=5)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=10, num_layers=2),
            training=TrainingConfig(epochs=4, batch_size=16),
            ensemble=None,
        )
    ).fit(samples[:24])
    return model, samples


@pytest.fixture(scope="module")
def ensemble_model():
    samples = build_synthetic_samples(36, seed=9)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=10, num_layers=2),
            training=TrainingConfig(epochs=3, batch_size=16),
            ensemble=EnsembleConfig(folds=2, seeds=(0, 1)),  # 4 members
        )
    ).fit(samples[:24])
    return model, samples


def _bitwise(a: np.ndarray, b: np.ndarray, label: str) -> None:
    assert a.shape == b.shape, label
    assert a.tobytes() == b.tobytes(), f"{label} diverged bitwise"


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("batch_size", [None, 3, 7])
def test_predict_batch_bitwise_across_backends(ensemble_model, seed, batch_size):
    """Random batches: every backend returns the reference's exact bytes."""
    model, _ = ensemble_model
    queries = build_synthetic_samples(17, seed=100 + seed)
    with use_backend("numpy"):
        reference = model.predict_batch(queries, batch_size=batch_size)
    for name in available_backends():
        with use_backend(name):
            _bitwise(
                reference,
                model.predict_batch(queries, batch_size=batch_size),
                f"predict_batch[{name}, bs={batch_size}]",
            )


@pytest.mark.parametrize("seed", [0, 1])
def test_predict_loop_bitwise_across_backends(single_model, seed):
    """The per-sample loop (predict without batching) is covered too."""
    model, _ = single_model
    queries = build_synthetic_samples(9, seed=200 + seed)
    with use_backend("numpy"):
        reference = model.predict(queries)
    with use_backend("optimized"):
        _bitwise(reference, model.predict(queries), "predict loop")


def test_estimate_many_bitwise_across_backends(ensemble_model):
    """Whole-service equivalence, fresh and through the InferenceCache."""
    model, samples = ensemble_model
    queries = samples[24:]
    requests = [EstimateRequest.from_sample(s) for s in queries]

    with PowerEstimationService(
        model, batch_size=5, runtime=RuntimeConfig(backend="numpy")
    ) as reference_service:
        reference = [r.power for r in reference_service.estimate_many(requests)]
        cached_reference = [r.power for r in reference_service.estimate_many(requests)]
    assert reference == cached_reference

    with PowerEstimationService(
        model, batch_size=5, runtime=RuntimeConfig(backend="optimized")
    ) as service:
        fresh = service.estimate_many(requests)
        assert [r.power for r in fresh] == reference
        assert not any(r.cached_prediction for r in fresh)
        # Second pass: served from the InferenceCache, still identical.
        warm = service.estimate_many(requests)
        assert all(r.cached_prediction for r in warm)
        assert [r.power for r in warm] == reference
        assert service.metrics.backend == "optimized"
        assert service.runtime_stats()["backend"]["active"] == "optimized"


@pytest.mark.parametrize("backend", ["numpy", "optimized"])
def test_pooled_forward_bitwise_through_service(ensemble_model, backend):
    """The pooled path (shared-memory forward shards) matches serial bytes."""
    model, samples = ensemble_model
    queries = samples[24:]
    requests = [EstimateRequest.from_sample(s) for s in queries]

    with PowerEstimationService(
        model, batch_size=6, runtime=RuntimeConfig(backend="numpy")
    ) as serial_service:
        reference = [r.power for r in serial_service.estimate_many(requests)]

    runtime = RuntimeConfig(backend=backend, forward_workers=2, forward_min_members=2)
    with PowerEstimationService(model, batch_size=6, runtime=runtime) as service:
        pooled = [r.power for r in service.estimate_many(requests)]
        assert pooled == reference
        snapshot = service.metrics.snapshot()
        assert snapshot["pooled_predicted"] == len(requests)
        stats = service.runtime_stats()["forward_pool"]
        assert stats["designs"] == len(requests)
        assert stats["shards"] >= 2


def test_tolerance_tier_contract(ensemble_model):
    """The numerical contract is explicit per backend instance.

    ``tolerance is None`` (every default backend) means bitwise — asserted
    with ``tobytes`` throughout this suite.  A non-``None`` ``(rtol, atol)``
    (only the explicit ``f32`` accelerator opt-in) relaxes the assertion to
    ``np.allclose`` at exactly the advertised tolerances — and nothing
    looser.
    """
    from repro.backend import NumpyBackend, OptimizedBackend, get_backend
    from repro.backend.optimized import F32_TOLERANCE

    model, _ = ensemble_model
    queries = build_synthetic_samples(13, seed=400)
    with use_backend("numpy"):
        reference = model.predict_batch(queries, batch_size=5)
    assert np.ptp(reference) > 1e-6  # non-vacuous: spread above clamp floor

    backends = [get_backend(name) for name in available_backends()]
    assert all(b.tolerance is None for b in backends)  # defaults are bitwise
    backends.append(OptimizedBackend(accel="f32"))
    assert backends[-1].tolerance == F32_TOLERANCE
    assert NumpyBackend().tolerance is None

    for backend in backends:
        with use_backend(backend):
            predictions = model.predict_batch(queries, batch_size=5)
        if backend.tolerance is None:
            _bitwise(reference, predictions, f"tolerance[{backend.name}]")
        else:
            rtol, atol = backend.tolerance
            assert np.allclose(predictions, reference, rtol=rtol, atol=atol), (
                f"{backend.name}/{backend.accelerator} broke its advertised "
                f"tolerance contract {backend.tolerance}"
            )


def test_env_selected_backend_reaches_service(monkeypatch):
    """$REPRO_BACKEND steers a service constructed without an explicit name."""
    monkeypatch.setenv("REPRO_BACKEND", "optimized")
    # The default may already be resolved for this process; the service path
    # resolves through RuntimeConfig.backend=None → env each construction.
    samples = build_synthetic_samples(30, seed=3)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=8, num_layers=1),
            training=TrainingConfig(epochs=2, batch_size=16),
            ensemble=None,
        )
    ).fit(samples[:24])
    service = PowerEstimationService(model)
    try:
        assert service.backend.name == "optimized"
        assert service.metrics.backend == "optimized"
    finally:
        service.close()
