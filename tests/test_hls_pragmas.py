"""Tests for HLS design directives."""

import pytest

from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas


def test_loop_pragmas_defaults_and_validation():
    assert LoopPragmas().is_default
    assert not LoopPragmas(unroll_factor=2).is_default
    assert not LoopPragmas(pipeline=True).is_default
    with pytest.raises(ValueError):
        LoopPragmas(unroll_factor=0)


def test_array_partition_validation():
    assert ArrayPartition().factor == 1
    with pytest.raises(ValueError):
        ArrayPartition(factor=0)
    with pytest.raises(ValueError):
        ArrayPartition(kind="diagonal")


def test_design_directives_lookup_defaults():
    directives = DesignDirectives.from_dicts(
        {"i": LoopPragmas(unroll_factor=4)}, {"A": ArrayPartition(2)}
    )
    assert directives.pragmas_for_loop("i").unroll_factor == 4
    assert directives.pragmas_for_loop("missing").is_default
    assert directives.partition_for_array("A").factor == 2
    assert directives.partition_for_array("missing").factor == 1


def test_design_directives_baseline_detection():
    assert DesignDirectives().is_baseline
    assert DesignDirectives.from_dicts({"i": LoopPragmas()}, {"A": ArrayPartition()}).is_baseline
    assert not DesignDirectives.from_dicts({"i": LoopPragmas(pipeline=True)}).is_baseline


def test_design_directives_describe_and_hashable():
    directives = DesignDirectives.from_dicts(
        {"i": LoopPragmas(unroll_factor=2, pipeline=True)}, {"A": ArrayPartition(4)}
    )
    description = directives.describe()
    assert "i:u2p" in description
    assert "A:x4" in description
    assert DesignDirectives().describe() == "baseline"
    # Hashability is required for design-space deduplication.
    assert len({directives, directives}) == 1
