"""Tests for the IR builder and validator."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import walk_instructions
from repro.ir.types import ArrayType, FloatType, PointerType, VOID
from repro.ir.validation import IRValidationError, pointer_roots, validate_function
from repro.ir.values import ArgumentDirection


def build_simple_function():
    builder = IRBuilder("simple")
    a = builder.add_array_argument("a", (4,))
    out = builder.add_array_argument("out", (4,), direction=ArgumentDirection.OUT)
    with builder.loop("i", 4) as i:
        addr = builder.getelementptr(a, [i])
        value = builder.load(addr)
        doubled = builder.fmul(value, builder.const_float(2.0))
        out_addr = builder.getelementptr(out, [i])
        builder.store(doubled, out_addr)
    builder.ret()
    return builder.build()


def test_builder_constructs_valid_function():
    function = build_simple_function()
    validate_function(function)
    opcodes = [instr.opcode for instr in function.instructions]
    assert Opcode.LOAD in opcodes
    assert Opcode.STORE in opcodes
    assert Opcode.FMUL in opcodes


def test_builder_loop_nesting_and_names():
    builder = IRBuilder("nest")
    array = builder.add_array_argument("a", (2, 2))
    with builder.loop("i", 2) as i:
        with builder.loop("j", 2) as j:
            addr = builder.getelementptr(array, [i, j])
            builder.load(addr)
    function = builder.build()
    loops = function.loops
    assert len(loops) == 2
    assert loops[0].name == "i"
    assert loops[1].name == "j"


def test_builder_rejects_unterminated_loop():
    builder = IRBuilder("broken")
    builder.add_array_argument("a", (4,))
    context = builder.loop("i", 4)
    context.__enter__()
    with pytest.raises(RuntimeError):
        builder.build()


def test_load_requires_pointer_operand():
    builder = IRBuilder("bad_load")
    scalar = builder.add_scalar_argument("x")
    with pytest.raises(TypeError):
        builder.load(scalar)


def test_validator_detects_use_before_definition():
    builder = IRBuilder("oops")
    builder.add_array_argument("a", (4,))
    function = builder.build()
    orphan = Instruction(Opcode.FADD, [], FloatType(32), name="orphan")
    ghost = Instruction(Opcode.FADD, [orphan, orphan], FloatType(32), name="ghost")
    function.body.append(ghost)
    with pytest.raises(IRValidationError):
        validate_function(function)


def test_validator_requires_alloca_metadata():
    bad_alloca = Instruction(Opcode.ALLOCA, [], PointerType(FloatType(32)), name="buf")
    builder = IRBuilder("alloca")
    function = builder.build()
    function.body.append(bad_alloca)
    with pytest.raises(IRValidationError):
        validate_function(function)


def test_pointer_roots_resolve_gep_chains():
    function = build_simple_function()
    roots = pointer_roots(function)
    gep_instructions = [
        instr for instr in function.instructions if instr.opcode == Opcode.GETELEMENTPTR
    ]
    assert gep_instructions
    for gep in gep_instructions:
        root = roots[gep.uid]
        assert root.name in ("a", "out")


def test_alloca_records_allocated_type():
    builder = IRBuilder("alloca_ok")
    buffer = builder.alloca("acc", ArrayType(FloatType(32), (4,)))
    assert isinstance(buffer.attrs["allocated_type"], ArrayType)
    validate_function(builder.build())


def test_store_has_void_type():
    builder = IRBuilder("store")
    a = builder.add_array_argument("a", (2,))
    addr = builder.getelementptr(a, [builder.const_int(0)])
    store = builder.store(builder.const_float(1.0), addr)
    assert store.type == VOID
    assert not store.has_result


def test_walk_instructions_covers_nested_loops():
    function = build_simple_function()
    walked = list(walk_instructions(function.body))
    assert len(walked) == len(function.instructions)
