"""Tests for the multi-process featurisation pool and its deterministic merge."""

import pytest

from repro.flow.dataset_gen import (
    DatasetConfig,
    DatasetGenerator,
    FeaturisationTask,
    featurisation_worker_init,
    run_featurisation_task,
)
from repro.kernels.polybench import polybench_kernel
from repro.runtime import WorkerPool, shard_evenly
from repro.serve.cache import sample_fingerprint

POOL_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=8)


@pytest.fixture(scope="module")
def atax_space():
    generator = DatasetGenerator(POOL_CONFIG)
    kernel = polybench_kernel("atax", POOL_CONFIG.kernel_size)
    return list(generator.design_space_for(kernel))


# ----------------------------------------------------------------- sharding


def test_shard_evenly_covers_range_contiguously():
    for count in (0, 1, 2, 5, 8, 13):
        for shards in (1, 2, 3, 4, 7):
            slices = shard_evenly(count, shards)
            assert len(slices) == min(shards, count) if count else not slices
            covered = [i for part in slices for i in range(part.start, part.stop)]
            assert covered == list(range(count))
            sizes = [part.stop - part.start for part in slices]
            assert all(size >= 1 for size in sizes)
            assert max(sizes) - min(sizes) <= 1 if sizes else True


def test_shard_evenly_is_deterministic_and_validates():
    assert shard_evenly(10, 4) == shard_evenly(10, 4)
    assert shard_evenly(10, 4) == [slice(0, 3), slice(3, 6), slice(6, 8), slice(8, 10)]
    with pytest.raises(ValueError):
        shard_evenly(-1, 2)
    with pytest.raises(ValueError):
        shard_evenly(4, 0)


# ------------------------------------------------------------- worker tasks


def test_worker_task_requires_initialised_worker(atax_space):
    import repro.flow.dataset_gen as dataset_gen

    saved = dataset_gen._WORKER_GENERATOR
    dataset_gen._WORKER_GENERATOR = None
    try:
        with pytest.raises(RuntimeError, match="not initialised"):
            run_featurisation_task(
                FeaturisationTask(kernel="atax", directives=tuple(atax_space[:1]))
            )
    finally:
        dataset_gen._WORKER_GENERATOR = saved


def test_worker_task_matches_generator_inline(atax_space):
    """The worker entry points reproduce the generator's featurisation exactly."""
    featurisation_worker_init(POOL_CONFIG)
    task = FeaturisationTask(kernel="atax", directives=tuple(atax_space[:3]))
    from_task = run_featurisation_task(task)
    direct = DatasetGenerator(POOL_CONFIG).featurise("atax", atax_space[:3])
    assert [sample_fingerprint(s) for s in from_task] == [
        sample_fingerprint(s) for s in direct
    ]


# -------------------------------------------------------------------- pool


def test_pool_validates_configuration():
    with pytest.raises(ValueError):
        WorkerPool(config=POOL_CONFIG, num_workers=1)
    with pytest.raises(ValueError):
        WorkerPool(config=POOL_CONFIG, num_workers=2, min_designs_per_worker=0)


def test_pool_should_parallelise_threshold():
    pool = WorkerPool(config=POOL_CONFIG, num_workers=2, min_designs_per_worker=3)
    assert not pool.should_parallelise(5)
    assert pool.should_parallelise(6)
    pool.close()  # never started: close is a safe no-op


def test_pooled_featurisation_is_bitwise_identical_to_serial(atax_space):
    """Acceptance invariant: pooled featurisation == serial, bit for bit."""
    serial = DatasetGenerator(POOL_CONFIG).featurise("atax", atax_space)
    with WorkerPool(
        config=POOL_CONFIG, num_workers=2, min_designs_per_worker=1
    ) as pool:
        pooled = pool.featurise("atax", atax_space)
        # A second batch reuses the warm workers (and their per-kernel state).
        again = pool.featurise("atax", atax_space[:3])
        assert pool.stats.batches == 2
        assert pool.stats.designs == len(atax_space) + 3
    assert len(pooled) == len(serial)
    for mine, theirs in zip(pooled, serial):
        assert sample_fingerprint(mine) == sample_fingerprint(theirs)
        assert mine.dynamic_power == theirs.dynamic_power
        assert mine.total_power == theirs.total_power
        assert mine.latency_cycles == theirs.latency_cycles
        assert mine.directives == theirs.directives
    assert [sample_fingerprint(s) for s in again] == [
        sample_fingerprint(s) for s in serial[:3]
    ]


def test_pool_featurise_empty_list_is_noop():
    with WorkerPool(config=POOL_CONFIG, num_workers=2) as pool:
        assert pool.featurise("atax", []) == []
        assert pool.stats.batches == 0


def test_closed_pool_refuses_work_and_close_is_idempotent(atax_space):
    pool = WorkerPool(config=POOL_CONFIG, num_workers=2)
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.featurise("atax", atax_space[:2])
