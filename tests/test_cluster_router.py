"""Cluster tier acceptance: routed == direct, bitwise, even across a kill.

The suite boots a real 2-replica cluster — each replica a full
service/gateway/HTTP process loaded from one shared registry — behind a
:class:`~repro.cluster.router.ClusterRouter`, and holds the routed responses
against a *direct* in-process service built from the same registry:

* every ``/v1/estimate`` / ``/v1/estimate_many`` / ``/v1/explore`` response
  through the router is bitwise-identical to the direct call (the registry's
  bit-exact load plus batch-composition-invariant predictions make the
  replica boundary and the router's per-kernel sub-batching invisible);
* requests route to the kernel's ring owner, and ``/v1/cluster`` exposes the
  ring, per-replica counters and routing policy;
* SIGKILLing a replica mid-run is absorbed: the request retries on the next
  replica in ring order *with the same bytes*, the dead replica is ejected
  and respawned (visible on ``/v1/events``), the router's ``/healthz`` is
  degraded-not-dead throughout, and post-respawn traffic is again bitwise
  equal.

Model training is module-scoped (the expensive part); each test builds its
own router inside its own event loop (asyncio objects are loop-bound), over
either the shared module-scoped replica set or — for the kill test, which
consumes replicas — a private one.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    ConsistentHashRing,
    ReplicaManager,
    ReplicaSpec,
)
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime.http import (
    HTTPConnectionPool,
    directives_to_json,
    response_to_json,
)
from repro.serve import ModelRegistry, PowerEstimationService

SERVICE_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=10)
KERNELS = ("atax", "gemm")
MODEL_NAME = "cluster-under-test"


# ---------------------------------------------------------------- fixtures


@pytest.fixture(scope="module")
def cluster_registry(small_dataset, tmp_path_factory):
    """One trained model saved once; every replica and the direct baseline
    load this exact artifact (bit-exact by the registry's contract)."""
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    registry_dir = tmp_path_factory.mktemp("cluster-registry")
    ModelRegistry(registry_dir).save(model, MODEL_NAME)
    return registry_dir


@pytest.fixture(scope="module")
def replica_spec(cluster_registry):
    return ReplicaSpec(
        registry_dir=cluster_registry,
        model_name=MODEL_NAME,
        dataset_config=SERVICE_CONFIG,
    )


@pytest.fixture(scope="module")
def direct_service(replica_spec):
    """The in-process baseline the routed responses must match bitwise."""
    service, _ = replica_spec.build_service()
    yield service
    service.close()


@pytest.fixture(scope="module")
def shared_manager(replica_spec):
    """A 2-replica set shared by the non-destructive tests (replica spawn is
    the expensive part — a model load each)."""
    manager = ReplicaManager(replica_spec, num_replicas=2)
    manager.start()
    yield manager
    manager.close()


@pytest.fixture()
def requests_by_kernel(direct_service):
    """A couple of real design points per kernel, as wire payloads."""
    generator = DatasetGenerator(SERVICE_CONFIG)
    from repro.kernels.polybench import polybench_kernel

    payloads = {}
    for kernel in KERNELS:
        space = generator.design_space_for(
            polybench_kernel(kernel, SERVICE_CONFIG.kernel_size)
        )
        payloads[kernel] = [
            {"kernel": kernel, "directives": directives_to_json(directives)}
            for directives in space.points[:3]
        ]
    return payloads


def routed(manager, config=None):
    """Async context: a started router over ``manager`` + a client pool."""

    class _Context:
        async def __aenter__(self):
            self.router = ClusterRouter(
                manager, config=config or ClusterConfig(health_interval_s=0.25)
            )
            host, port = await self.router.start()
            self.pool = HTTPConnectionPool(host, port)
            return self

        async def __aexit__(self, *exc_info):
            await self.pool.aclose()
            await self.router.aclose()

        async def call(self, method, path, body=None):
            status, _, data = await self.pool.request(method, path, body)
            return status, json.loads(data.decode())

    return _Context()


def direct_estimate_json(service: PowerEstimationService, payload: dict) -> dict:
    """The direct call, serialised exactly as the wire would carry it,
    minus the fields the determinism contract excludes (latency, cache
    flags — both depend on who served the request, not on the answer)."""
    from repro.runtime.http import estimate_request_from_json

    response = response_to_json(service.estimate(estimate_request_from_json(payload)))
    return strip_volatile(response)


def strip_volatile(response: dict) -> dict:
    return {
        key: value
        for key, value in response.items()
        if key not in ("latency_ms", "cached_features", "cached_prediction")
    }


# ------------------------------------------------------------- equivalence


def test_routed_estimate_is_bitwise_equal_to_direct(
    shared_manager, direct_service, requests_by_kernel
):
    async def scenario():
        async with routed(shared_manager) as ctx:
            results = []
            for kernel in KERNELS:
                for payload in requests_by_kernel[kernel]:
                    status, routed_response = await ctx.call(
                        "POST", "/v1/estimate", payload
                    )
                    assert status == 200
                    results.append((payload, routed_response))
            return results

    for payload, routed_response in asyncio.run(scenario()):
        assert strip_volatile(routed_response) == direct_estimate_json(
            direct_service, payload
        )


def test_routed_estimate_many_matches_direct_across_kernels(
    shared_manager, direct_service, requests_by_kernel
):
    """A mixed-kernel batch splits across both replicas and merges back in
    request order, bitwise equal to the direct batch."""
    from repro.runtime.http import estimate_request_from_json

    mixed = [
        requests_by_kernel["atax"][0],
        requests_by_kernel["gemm"][0],
        requests_by_kernel["atax"][1],
        requests_by_kernel["gemm"][1],
        requests_by_kernel["atax"][2],
    ]

    async def scenario():
        async with routed(shared_manager) as ctx:
            status, body = await ctx.call(
                "POST", "/v1/estimate_many", {"requests": mixed}
            )
            assert status == 200
            empty_status, empty = await ctx.call(
                "POST", "/v1/estimate_many", {"requests": []}
            )
            status_cluster, cluster = await ctx.call("GET", "/v1/cluster")
            return body, (empty_status, empty), cluster

    body, (empty_status, empty), cluster = asyncio.run(scenario())
    direct = direct_service.estimate_many(
        [estimate_request_from_json(payload) for payload in mixed]
    )
    assert [strip_volatile(r) for r in body["responses"]] == [
        strip_volatile(response_to_json(r)) for r in direct
    ]
    assert (empty_status, empty) == (200, {"responses": []})
    # The batch really did fan out: both replicas served designs.
    served = [r["designs"] for r in cluster["replicas"].values()]
    assert all(count > 0 for count in served), served


def test_routed_explore_matches_direct(shared_manager, direct_service):
    from repro.runtime.http import explore_report_to_json

    async def scenario():
        async with routed(shared_manager) as ctx:
            status, body = await ctx.call(
                "POST", "/v1/explore", {"kernel": "atax", "budget": 0.4}
            )
            return status, body

    status, body = asyncio.run(scenario())
    assert status == 200
    direct = explore_report_to_json(direct_service.explore("atax", 0.4))
    # Frontier, ADRS, every evaluated point — identical to the in-process
    # run; only wall-clock differs.
    assert {k: v for k, v in body.items() if k != "elapsed_seconds"} == {
        k: v for k, v in direct.items() if k != "elapsed_seconds"
    }


def test_requests_route_to_the_ring_owner(shared_manager, requests_by_kernel):
    """The affinity contract: all of one kernel's traffic lands on the
    replica a same-membership ring predicts."""
    ring = ConsistentHashRing(virtual_nodes=ClusterConfig().virtual_nodes)
    for handle in shared_manager.handles():
        ring.add(handle.replica_id)

    async def scenario():
        async with routed(shared_manager) as ctx:
            for _ in range(4):
                await ctx.call(
                    "POST", "/v1/estimate", requests_by_kernel["atax"][0]
                )
            _, cluster = await ctx.call("GET", "/v1/cluster")
            return cluster

    cluster = asyncio.run(scenario())
    owner = ring.lookup("atax")
    backup = [r for r in cluster["replicas"] if r != owner][0]
    assert cluster["replicas"][owner]["designs"] >= 4
    assert cluster["replicas"][backup]["designs"] == 0
    assert cluster["stats"]["retries"] == 0
    assert cluster["ring"]["nodes"] == sorted(cluster["replicas"])


# ------------------------------------------------------------ control plane


def test_cluster_and_metrics_views(shared_manager, requests_by_kernel):
    async def scenario():
        async with routed(shared_manager) as ctx:
            await ctx.call("POST", "/v1/estimate", requests_by_kernel["atax"][0])
            _, cluster = await ctx.call("GET", "/v1/cluster")
            _, metrics = await ctx.call("GET", "/metrics")
            _, models = await ctx.call("GET", "/v1/models")
            status_prom, _, prom = await ctx.pool.request(
                "GET", "/metrics", None, {"Accept": "text/plain"}
            )
            _, health = await ctx.call("GET", "/healthz")
            return cluster, metrics, models, (status_prom, prom), health

    cluster, metrics, models, (status_prom, prom), health = asyncio.run(scenario())
    assert cluster["policy"]["affinity"] == "kernel"
    assert set(cluster["replicas"]) == {"replica-0", "replica-1"}
    for replica in cluster["replicas"].values():
        assert replica["state"] == "ready"
        assert replica["generation"] == 0
    assert 0.99 < sum(cluster["ring"]["ownership"].values()) < 1.01
    assert metrics["cluster"]["stats"]["designs"] >= 1
    assert "repro_cluster_requests_total" in str(metrics["observability"])
    assert MODEL_NAME in [entry["name"] for entry in models["models"]]
    assert status_prom == 200
    text = prom.decode()
    assert "repro_cluster_requests_total" in text
    assert "repro_cluster_stats_designs" in text
    assert health["status"] in ("ok", "degraded")  # probes may not have run yet
    assert set(health["replicas"]) == {"replica-0", "replica-1"}


def test_router_error_paths(shared_manager):
    async def scenario():
        async with routed(shared_manager) as ctx:
            results = {}
            results["no_kernel"] = await ctx.call("POST", "/v1/estimate", {})
            results["bad_path"] = await ctx.call("GET", "/v1/nonsense")
            results["bad_method"] = await ctx.call("GET", "/v1/estimate")
            # A replica-level 400 (unknown kernel) relays verbatim.
            results["unknown_kernel"] = await ctx.call(
                "POST", "/v1/estimate", {"kernel": "not-a-kernel"}
            )
            return results

    results = asyncio.run(scenario())
    status, body = results["no_kernel"]
    assert status == 400 and body["error"]["type"] == "bad_request"
    assert results["bad_path"][0] == 404
    assert results["bad_method"][0] == 405
    status, body = results["unknown_kernel"]
    assert status == 400
    assert "not-a-kernel" in body["error"]["message"]


def test_router_admission_rejects_oversized_batches(shared_manager):
    async def scenario():
        config = ClusterConfig(max_in_flight=4, health_interval_s=0.25)
        async with routed(shared_manager, config) as ctx:
            return await ctx.call(
                "POST",
                "/v1/estimate_many",
                {"requests": [{"kernel": "atax"} for _ in range(5)]},
            )

    status, body = asyncio.run(scenario())
    assert status == 400
    assert "max_in_flight" in body["error"]["message"]


# ---------------------------------------------------------------- failure


def test_replica_sigkill_mid_load_is_absorbed(
    replica_spec, direct_service, requests_by_kernel
):
    """The ISSUE's acceptance scenario, end to end: SIGKILL the owner of a
    kernel's traffic mid-run; the in-flight and subsequent requests retry on
    the surviving replica bitwise-unchanged, the kill shows up as
    eject + respawn on ``/v1/events``, ``/healthz`` reports degraded (never
    503) throughout, and the respawned replica serves bitwise-equal answers
    again."""
    manager = ReplicaManager(replica_spec, num_replicas=2)
    manager.start()
    config = ClusterConfig(
        health_interval_s=0.15, fail_threshold=2, virtual_nodes=64
    )
    payload = requests_by_kernel["atax"][0]
    expected = direct_estimate_json(direct_service, payload)

    async def scenario():
        async with routed(manager, config) as ctx:
            ring = ConsistentHashRing(virtual_nodes=config.virtual_nodes)
            for handle in manager.handles():
                ring.add(handle.replica_id)
            owner = ring.lookup("atax")

            # Warm both paths, then kill atax's owner outright.
            status, before = await ctx.call("POST", "/v1/estimate", payload)
            assert status == 200
            os.kill(manager.handle(owner).pid, signal.SIGKILL)

            # The very next request hits the dead owner, fails at the
            # connection, and must come back 200 from the backup replica.
            status, during = await ctx.call("POST", "/v1/estimate", payload)
            assert status == 200

            # The health loop notices, ejects, respawns; healthz must be
            # degraded-not-dead in between (and the cluster keeps serving).
            saw_degraded = False
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                health_status, health = await ctx.call("GET", "/healthz")
                assert health_status == 200, health  # never 503: one replica lives
                saw_degraded = saw_degraded or health["status"] == "degraded"
                _, events = await ctx.call("GET", "/v1/events")
                kinds = [e["kind"] for e in events["events"]]
                if "replica_respawn" in kinds:
                    break
                await asyncio.sleep(0.2)
            else:
                pytest.fail(f"no respawn within budget; events: {kinds}")

            # Post-respawn: both replicas ready, owner back in the ring,
            # traffic for the kernel bitwise-unchanged.
            _, health = await ctx.call("GET", "/healthz")
            status, after = await ctx.call("POST", "/v1/estimate", payload)
            assert status == 200
            _, cluster = await ctx.call("GET", "/v1/cluster")
            return before, during, after, saw_degraded, kinds, health, cluster, owner

    try:
        before, during, after, saw_degraded, kinds, health, cluster, owner = (
            asyncio.run(scenario())
        )
    finally:
        manager.close()

    # Bitwise equivalence across the whole failure arc.
    assert strip_volatile(before) == expected
    assert strip_volatile(during) == expected
    assert strip_volatile(after) == expected
    # The timeline tells the story: eject then respawn for the killed owner.
    assert "replica_eject" in kinds and "replica_respawn" in kinds
    assert kinds.index("replica_eject") < kinds.index("replica_respawn")
    assert saw_degraded
    # The respawned owner carries a bumped generation and is ready again.
    assert cluster["replicas"][owner]["generation"] == 1
    assert cluster["stats"]["ejections"] == 1
    assert cluster["stats"]["respawns"] == 1
    assert cluster["stats"]["retries"] >= 1
    assert set(cluster["ring"]["nodes"]) == set(cluster["replicas"])
