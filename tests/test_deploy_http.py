"""Deployment-layer acceptance over the real serving stack.

The contracts pinned here are the PR's acceptance criteria:

* with no plan installed a registry-backed service answers **bitwise
  identically** to the plain single-model service it replaced (fresh and
  cached, and the wire payload carries no new keys);
* a published plan routes per kernel pattern, canary splits are the
  deterministic blake2b function of the design point (identical on every
  replica, across a SIGKILL + respawn), shadow mode never changes what
  callers see, and champion/challenger divergence is exported on
  ``/metrics``;
* the lifecycle verbs (``GET/PUT /v1/deployments``, promote, rollback) work
  end to end — gateway, cluster router, and typed client — and every failure
  wears the unified error envelope.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.client import PowerAPIError, PowerClient
from repro.cluster import ClusterConfig, ClusterRouter, ReplicaManager, ReplicaSpec
from repro.deploy import assign_challenger
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.jobs import JobManager
from repro.kernels.polybench import polybench_kernel
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import (
    GatewayHTTPServer,
    HTTPConnectionPool,
    directives_to_json,
    request_json,
    response_to_json,
)
from repro.serve import ModelRegistry, PowerEstimationService
from repro.serve.service import EstimateRequest

SERVICE_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=10)
MODEL_NAME = "lifecycle"

VOLATILE = ("latency_ms", "cached_features", "cached_prediction")


def strip_volatile(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k not in VOLATILE}


# ------------------------------------------------------------------- fixtures


def train(samples, epochs: int) -> PowerGear:
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=epochs, batch_size=16),
            ensemble=None,
        )
    ).fit(samples)


@pytest.fixture(scope="module")
def lifecycle_models(small_dataset):
    """Two genuinely different artifacts: v1 the incumbent, v2 the candidate."""
    v1 = train(small_dataset.samples, epochs=8)
    v2 = train(small_dataset.samples[2:], epochs=6)
    assert v1.fingerprint() != v2.fingerprint()
    return v1, v2


@pytest.fixture()
def fresh_registry(lifecycle_models, tmp_path):
    """A per-test registry holding ``lifecycle`` v1 and v2 (plans published
    by one test must not leak into the next — the deployment store lives
    through the registry directory)."""
    v1, v2 = lifecycle_models
    registry_dir = tmp_path / "registry"
    registry = ModelRegistry(registry_dir)
    registry.save(v1, MODEL_NAME)
    registry.save(v2, MODEL_NAME)
    return registry_dir


@pytest.fixture()
def atax_requests():
    generator = DatasetGenerator(SERVICE_CONFIG)
    space = generator.design_space_for(
        polybench_kernel("atax", SERVICE_CONFIG.kernel_size)
    )
    return [
        EstimateRequest(kernel="atax", directives=point)
        for point in space.points[:12]
    ]


def build_service(registry_dir=None, model=None, **kwargs) -> PowerEstimationService:
    if registry_dir is not None:
        return PowerEstimationService(
            registry=registry_dir,
            model_name=MODEL_NAME,
            model_version=1,
            generator=DatasetGenerator(SERVICE_CONFIG),
            **kwargs,
        )
    return PowerEstimationService(
        model, generator=DatasetGenerator(SERVICE_CONFIG), **kwargs
    )


def canary_doc(fraction=0.5, shadow=False) -> dict:
    challenger: dict = {"model": MODEL_NAME, "model_version": 2, "shadow": shadow}
    if not shadow:
        challenger["fraction"] = fraction
    return {
        "version": 1,
        "rules": [
            {
                "pattern": "atax*",
                "model": MODEL_NAME,
                "model_version": 1,
                "challenger": challenger,
            }
        ],
    }


def serve(registry_dir=None, model=None, *, jobs=False):
    """Async context: a full HTTP server over a (registry-backed) service."""

    class _Context:
        async def __aenter__(self):
            self.service = build_service(registry_dir, model)
            self.manager = JobManager(self.service, runners=1) if jobs else None
            self.gateway = AsyncPowerGateway(self.service, jobs=self.manager)
            self.server = GatewayHTTPServer(self.gateway)
            self.host, self.port = await self.server.start()
            return self

        async def __aexit__(self, *exc_info):
            await self.server.aclose()
            await self.gateway.aclose(close_service=True)

        async def call(self, method, path, body=None, headers=None):
            return await request_json(
                self.host, self.port, method, path, body, headers
            )

    return _Context()


# --------------------------------------------------- the no-plan wire contract


def test_no_plan_wire_is_bitwise_identical_to_plain_service(
    lifecycle_models, fresh_registry, atax_requests
):
    """A registry-backed (resolver-holding) service with no plan installed is
    indistinguishable on the wire from the single-model service it replaced —
    same bytes fresh AND cached, and no ``served_by`` key appears."""
    v1, _ = lifecycle_models
    plain = build_service(model=v1)
    backed = build_service(fresh_registry)
    try:
        assert backed.resolver is not None and plain.resolver is None
        for _ in range(2):  # second pass answers from the caches
            plain_wire = [
                strip_volatile(response_to_json(r))
                for r in plain.estimate_many(atax_requests)
            ]
            backed_wire = [
                strip_volatile(response_to_json(r))
                for r in backed.estimate_many(atax_requests)
            ]
            assert backed_wire == plain_wire
            assert all("served_by" not in payload for payload in backed_wire)
    finally:
        plain.close()
        backed.close()


# ------------------------------------------------------------ routing over HTTP


def test_put_plan_routes_and_emits_served_by(lifecycle_models, fresh_registry):
    _, v2 = lifecycle_models

    async def scenario():
        async with serve(fresh_registry) as ctx:
            status, before = await ctx.call(
                "POST", "/v1/estimate", {"kernel": "atax"}
            )
            assert status == 200 and "served_by" not in before

            doc = {
                "rules": [
                    {"pattern": "atax*", "model": MODEL_NAME, "model_version": 2}
                ]
            }
            status, view = await ctx.call("PUT", "/v1/deployments", doc)
            assert status == 200
            assert view["seq"] == 1
            assert view["plan"]["rules"][0]["model_version"] == 2
            assert view["default"]["model"] == MODEL_NAME

            status, routed = await ctx.call(
                "POST", "/v1/estimate", {"kernel": "atax"}
            )
            status2, unrouted = await ctx.call(
                "POST", "/v1/estimate", {"kernel": "gemm"}
            )
            status3, shown = await ctx.call("GET", "/v1/deployments")
            return before, routed, unrouted, shown

    before, routed, unrouted, shown = asyncio.run(scenario())
    # The matching kernel is served by the named artifact, role and all...
    assert routed["served_by"] == {"model": MODEL_NAME, "version": 2, "role": "champion"}
    assert routed["model_fingerprint"] == v2.fingerprint()
    # ...while a kernel no rule matches keeps the exact pre-deployment shape.
    assert "served_by" not in unrouted
    assert unrouted["model_fingerprint"] == before["model_fingerprint"]
    assert shown["seq"] == 1


def test_canary_split_is_deterministic_and_exports_divergence(
    fresh_registry, atax_requests
):
    service = build_service(fresh_registry)
    try:
        service.put_deployment(canary_doc(fraction=0.5))
        first = service.estimate_many(atax_requests)

        picked = 0
        for response in first:
            expected = assign_challenger("atax", response.directives, 0.5)
            picked += int(expected)
            if expected:
                assert response.served_by == {
                    "model": MODEL_NAME,
                    "version": 2,
                    "role": "challenger",
                }
            else:
                assert response.served_by == {
                    "model": MODEL_NAME,
                    "version": 1,
                    "role": "champion",
                }
        # The hash really split this design set (both arms non-empty).
        assert 0 < picked < len(first)

        # Every design was predicted by the champion (serving or recorded),
        # the picked slice also by the challenger, and each comparison landed
        # in the divergence histogram under the rule's pattern label.
        obs = service.obs
        champion = obs.deploy_requests.labels(
            artifact=f"{MODEL_NAME}:v1", role="champion"
        )
        challenger = obs.deploy_requests.labels(
            artifact=f"{MODEL_NAME}:v2", role="challenger"
        )
        assert champion.value == len(first)
        assert challenger.value == picked
        snapshot = obs.deploy_divergence_abs.labels(rule="atax*").snapshot()
        assert snapshot["count"] == picked
        assert obs.deploy_divergence.labels(rule="atax*").value == picked

        text = obs.metrics.render_prometheus()
        assert "repro_deploy_requests_total" in text
        assert "repro_deploy_divergence_abs" in text

        # A second pass is bitwise identical, arm for arm.
        second = service.estimate_many(atax_requests)
        assert [(r.power, r.served_by) for r in second] == [
            (r.power, r.served_by) for r in first
        ]
    finally:
        service.close()


def test_shadow_mode_never_changes_what_callers_see(fresh_registry, atax_requests):
    service = build_service(fresh_registry)
    try:
        baseline = service.estimate_many(atax_requests)
        service.put_deployment(canary_doc(shadow=True))
        shadowed = service.estimate_many(atax_requests)
        # Same values as with no plan at all — the challenger only records.
        assert [r.power for r in shadowed] == [r.power for r in baseline]
        assert all(
            r.served_by == {"model": MODEL_NAME, "version": 1, "role": "champion"}
            for r in shadowed
        )
        # Shadow defaults to the full slice: every design was double-predicted.
        challenger = service.obs.deploy_requests.labels(
            artifact=f"{MODEL_NAME}:v2", role="challenger"
        )
        assert challenger.value == len(atax_requests)
    finally:
        service.close()


# -------------------------------------------------------------- error envelopes


def test_deployment_error_envelopes(lifecycle_models, fresh_registry):
    v1, _ = lifecycle_models

    async def scenario():
        results = {}
        async with serve(fresh_registry) as ctx:
            results["ghost"] = await ctx.call(
                "PUT",
                "/v1/deployments",
                {"rules": [{"pattern": "*", "model": "ghost", "model_version": 1}]},
            )
            results["malformed"] = await ctx.call(
                "PUT", "/v1/deployments", {"rules": "nope"}
            )
            results["promote_nothing"] = await ctx.call(
                "POST", "/v1/deployments/promote", {}
            )
        async with serve(model=v1) as ctx:
            results["disabled_get"] = await ctx.call("GET", "/v1/deployments")
            results["disabled_put"] = await ctx.call(
                "PUT", "/v1/deployments", canary_doc()
            )
        return results

    results = asyncio.run(scenario())
    status, body = results["ghost"]
    assert status == 400
    assert body["error"]["type"] == "unknown_artifact"
    assert body["error"]["retryable"] is False
    assert "ghost v1" in body["error"]["message"]

    status, body = results["malformed"]
    assert status == 400 and body["error"]["type"] == "invalid_request"

    status, body = results["promote_nothing"]
    assert status == 400
    assert "no deployment plan is installed" in body["error"]["message"]

    for key in ("disabled_get", "disabled_put"):
        status, body = results[key]
        assert status == 503
        assert body["error"]["type"] == "deployments_disabled"
        assert body["error"]["retryable"] is False


# ---------------------------------------------------------------- typed client


def test_client_drives_the_deployment_lifecycle(fresh_registry):
    async def scenario():
        async with serve(fresh_registry) as ctx:
            async with PowerClient(ctx.host, ctx.port) as client:
                view = await client.put_deployment(canary_doc(fraction=0.25))
                assert view["seq"] == 1
                assert (await client.get_deployment())["seq"] == 1

                promoted = await client.promote()
                rule = promoted["plan"]["rules"][0]
                assert promoted["seq"] == 2
                assert rule["model_version"] == 2
                assert "challenger" not in rule

                # Nothing left to roll back → unified envelope, typed error.
                with pytest.raises(PowerAPIError) as rollback_error:
                    await client.rollback()
                # Unknown artifact refs are rejected with their own type.
                with pytest.raises(PowerAPIError) as ghost_error:
                    await client.put_deployment(
                        {
                            "rules": [
                                {
                                    "pattern": "*",
                                    "model": MODEL_NAME,
                                    "model_version": 99,
                                }
                            ]
                        }
                    )
                estimate = await client.estimate("atax")
                return rollback_error.value, ghost_error.value, estimate

    rollback_error, ghost_error, estimate = asyncio.run(scenario())
    assert rollback_error.status == 400
    assert "no canary to roll back" in str(ghost_error) or "no canary" in str(
        rollback_error
    )
    assert ghost_error.error_type == "unknown_artifact"
    assert ghost_error.retryable is False
    # The promoted champion serves the estimate the client just made.
    assert estimate["served_by"]["version"] == 2


# ----------------------------------------------------------------- job pinning


def test_jobs_pin_the_plan_seq_they_started_under(fresh_registry):
    async def scenario():
        async with serve(fresh_registry, jobs=True) as ctx:
            status, early = await ctx.call(
                "POST", "/v1/jobs/explore", {"kernel": "atax", "budget": 0.3}
            )
            assert status == 202

            status, _ = await ctx.call("PUT", "/v1/deployments", canary_doc())
            assert status == 200
            status, late = await ctx.call(
                "POST", "/v1/jobs/explore", {"kernel": "gemm", "budget": 0.3}
            )
            assert status == 202

            async def wait_terminal(job_id):
                deadline = time.monotonic() + 60.0
                while True:
                    _, snapshot = await ctx.call("GET", f"/v1/jobs/{job_id}")
                    if snapshot["state"] in ("succeeded", "failed", "cancelled"):
                        return snapshot
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.05)

            return (
                await wait_terminal(early["job_id"]),
                await wait_terminal(late["job_id"]),
            )

    early, late = asyncio.run(scenario())
    assert early["state"] == "succeeded" and late["state"] == "succeeded"
    # The job submitted before any plan pins "no plan" (0) — it would have
    # kept predicting through the default even if resumed after the publish —
    # while the one submitted after pins the live seq.
    assert early["plan_seq"] == 0
    assert late["plan_seq"] == 1


def test_open_exploration_pins_an_explicit_seq(fresh_registry):
    service = build_service(fresh_registry)
    try:
        first = service.put_deployment(canary_doc(fraction=0.25))
        service.promote_deployment()
        assert service.current_plan_seq() == 2

        live = service.open_exploration("atax", 0.3)
        pinned = service.open_exploration("atax", 0.3, plan_seq=first["seq"])
        unplanned = service.open_exploration("atax", 0.3, plan_seq=0)
        assert live.plan_seq == 2
        assert pinned.plan_seq == 1
        assert pinned.plan.rules[0].challenger is not None
        assert unplanned.plan is None and unplanned.plan_seq is None
    finally:
        service.close()


# -------------------------------------------------------------------- cluster


def test_router_deployments_survive_replica_kill(fresh_registry, atax_requests):
    """The full cluster scenario: publish a canary through the router, verify
    the split is the deterministic hash on every replica, SIGKILL a replica,
    and verify the respawned one serves the exact same assignment — then
    promote through the router."""
    spec = ReplicaSpec(
        registry_dir=fresh_registry,
        model_name=MODEL_NAME,
        model_version=1,
        dataset_config=SERVICE_CONFIG,
    )
    payloads = [
        {"kernel": "atax", "directives": directives_to_json(request.directives)}
        for request in atax_requests[:6]
    ]
    manager = ReplicaManager(spec, num_replicas=2)
    manager.start()

    async def scenario():
        router = ClusterRouter(
            manager, config=ClusterConfig(health_interval_s=0.25)
        )
        host, port = await router.start()
        pool = HTTPConnectionPool(host, port)

        async def call(method, path, body=None):
            status, payload = await pool.request_json(method, path, body)
            return status, payload

        async def traffic():
            answers = []
            for payload in payloads:
                status, body = await call("POST", "/v1/estimate", payload)
                assert status == 200
                answers.append(
                    (body["directives"], body["power"], body.get("served_by"))
                )
            return answers

        try:
            status, view = await call("PUT", "/v1/deployments", canary_doc(0.5))
            assert status == 200 and view["seq"] == 1

            first = await traffic()

            # Every replica converges on the published seq (the router's
            # health probes surface it per slot on /v1/cluster).
            deadline = time.monotonic() + 15.0
            while True:
                status, cluster = await call("GET", "/v1/cluster")
                seqs = [
                    replica.get("deployment_seq")
                    for replica in cluster["replicas"].values()
                ]
                if seqs and all(seq == 1 for seq in seqs):
                    break
                assert time.monotonic() < deadline, seqs
                await asyncio.sleep(0.1)

            victim = manager.handles()[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while True:
                status, cluster = await call("GET", "/v1/cluster")
                ready = [
                    replica.get("state") == "ready"
                    for replica in cluster["replicas"].values()
                ]
                if cluster["stats"]["respawns"] >= 1 and all(ready):
                    break
                assert time.monotonic() < deadline, cluster
                await asyncio.sleep(0.2)

            second = await traffic()

            status, promoted = await call("POST", "/v1/deployments/promote", {})
            assert status == 200 and promoted["seq"] == 2
            status, after = await call("POST", "/v1/estimate", payloads[0])
            assert status == 200
            return first, second, after
        finally:
            await pool.aclose()
            await router.aclose()

    try:
        first, second, after = asyncio.run(scenario())
    finally:
        manager.close()

    # The canary assignment is the pure hash of the design point...
    for directives, _, served_by in first:
        expected_role = (
            "challenger" if assign_challenger("atax", directives, 0.5) else "champion"
        )
        assert served_by is not None and served_by["role"] == expected_role
    assert {s["role"] for _, _, s in first} == {"champion", "challenger"}
    # ...and the respawned replica reproduces it bitwise, power and all.
    assert second == first
    # Post-promote, the former challenger serves everything on the rule.
    assert after["served_by"] == {
        "model": MODEL_NAME,
        "version": 2,
        "role": "champion",
    }
