"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.activity.tracer import ValueStreamStats
from repro.dse.pareto import adrs, pareto_front
from repro.graph.hetero_graph import HeteroGraph, relation_type_index
from repro.ir.bitpack import hamming_distance, to_bits
from repro.ir.types import IntType
from repro.nn.tensor import Tensor
from repro.utils.metrics import mape


# --------------------------------------------------------------------------- bit packing


@given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
def test_hamming_distance_is_a_metric(a, b):
    ty = IntType(32)
    bits_a, bits_b = to_bits(a, ty), to_bits(b, ty)
    assert hamming_distance(bits_a, bits_a) == 0
    assert hamming_distance(bits_a, bits_b) == hamming_distance(bits_b, bits_a)
    assert 0 <= hamming_distance(bits_a, bits_b) <= 32


@given(st.integers(-(2**15), 2**15 - 1))
def test_to_bits_width_bound(value):
    assert 0 <= to_bits(value, IntType(16)) < 2**16


# --------------------------------------------------------------------------- activity stats


@given(st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=40))
def test_value_stream_stats_invariants(values):
    stats = ValueStreamStats(bit_width=16)
    for value in values:
        stats.observe(value)
    assert stats.exec_count == len(values)
    assert 0 <= stats.change_count <= len(values) - 1
    assert stats.hamming_sum <= 16 * stats.change_count
    assert stats.switching_activity(100) >= 0
    assert stats.activation_rate(100) <= (len(values) - 1) / 100 + 1e-12


@given(
    st.lists(st.integers(0, 255), min_size=1, max_size=20),
    st.lists(st.integers(0, 255), min_size=1, max_size=20),
)
def test_value_stream_merge_is_additive(first, second):
    a = ValueStreamStats(bit_width=8)
    b = ValueStreamStats(bit_width=8)
    for value in first:
        a.observe(value)
    for value in second:
        b.observe(value)
    merged = a.merged_with(b)
    assert merged.exec_count == a.exec_count + b.exec_count
    assert merged.hamming_sum == a.hamming_sum + b.hamming_sum
    assert merged.change_count == a.change_count + b.change_count


# --------------------------------------------------------------------------- pareto


@st.composite
def objective_sets(draw):
    count = draw(st.integers(2, 30))
    latencies = draw(
        st.lists(st.floats(1.0, 1e4, allow_nan=False), min_size=count, max_size=count)
    )
    powers = draw(
        st.lists(st.floats(0.01, 10.0, allow_nan=False), min_size=count, max_size=count)
    )
    return np.stack([latencies, powers], axis=1)


@given(objective_sets())
@settings(max_examples=50)
def test_pareto_front_points_are_mutually_nondominated(points):
    front = pareto_front(points)
    assert len(front) >= 1
    for i in front:
        for j in front:
            if i == j:
                continue
            dominates = (
                points[j, 0] <= points[i, 0]
                and points[j, 1] <= points[i, 1]
                and (points[j, 0] < points[i, 0] or points[j, 1] < points[i, 1])
            )
            assert not dominates


@given(objective_sets())
@settings(max_examples=50)
def test_adrs_non_negative_and_zero_against_itself(points):
    front = points[pareto_front(points)]
    assert adrs(front, front) == 0.0
    assert adrs(front, points) >= 0.0


# --------------------------------------------------------------------------- metrics


@given(
    st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=1, max_size=30),
    st.floats(0.5, 2.0, allow_nan=False),
)
def test_mape_scale_invariance(targets, scale):
    targets = np.array(targets)
    predictions = targets * 1.07
    assert abs(mape(targets, predictions) - 7.0) < 1e-6
    assert abs(mape(targets * scale, predictions * scale) - mape(targets, predictions)) < 1e-6


# --------------------------------------------------------------------------- autograd


@given(
    st.integers(1, 6),
    st.integers(1, 5),
    st.integers(1, 4),
)
def test_matmul_gradient_shapes(n, m, k):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(n, m)), requires_grad=True)
    b = Tensor(rng.normal(size=(m, k)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape
    # d(sum(AB))/dA = 1 @ B^T
    assert np.allclose(a.grad, np.ones((n, k)) @ b.data.T)


@given(st.integers(2, 20), st.integers(1, 5), st.integers(1, 4))
def test_segment_sum_conserves_mass(rows, cols, segments):
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(rows, cols)))
    index = rng.integers(0, segments, size=rows)
    summed = x.segment_sum(index, segments)
    assert np.allclose(summed.data.sum(axis=0), x.data.sum(axis=0))


# --------------------------------------------------------------------------- hetero graph


@st.composite
def small_graphs(draw):
    num_nodes = draw(st.integers(2, 12))
    num_edges = draw(st.integers(1, 30))
    rng = np.random.default_rng(draw(st.integers(0, 1000)))
    edge_index = rng.integers(0, num_nodes, size=(2, num_edges))
    node_is_arithmetic = rng.random(num_nodes) > 0.5
    edge_types = np.array(
        [
            relation_type_index(bool(node_is_arithmetic[s]), bool(node_is_arithmetic[d]))
            for s, d in zip(edge_index[0], edge_index[1])
        ]
    )
    return HeteroGraph(
        node_features=rng.random((num_nodes, 5)),
        edge_index=edge_index,
        edge_features=rng.random((num_edges, 4)),
        edge_types=edge_types,
        metadata=rng.random(3),
        node_is_arithmetic=node_is_arithmetic,
    )


@given(st.lists(small_graphs(), min_size=1, max_size=5))
@settings(max_examples=30)
def test_batching_preserves_counts_and_degree_sums(graphs):
    batch = HeteroGraph.batch_graphs(graphs)
    assert batch.num_nodes == sum(g.num_nodes for g in graphs)
    assert batch.num_edges == sum(g.num_edges for g in graphs)
    assert batch.in_degrees().sum() == sum(g.in_degrees().sum() for g in graphs)
    assert batch.metadata.shape[0] == len(graphs)


@given(small_graphs())
@settings(max_examples=30)
def test_undirected_relation_consistency(graph):
    symmetric = graph.undirected()
    assert symmetric.num_edges == 2 * graph.num_edges
    for position in range(symmetric.num_edges):
        src, dst = symmetric.edge_index[:, position]
        expected = relation_type_index(
            bool(symmetric.node_is_arithmetic[src]), bool(symmetric.node_is_arithmetic[dst])
        )
        assert symmetric.edge_types[position] == expected
