"""Jobs API acceptance over real HTTP: lifecycle, streaming, resume.

Everything here speaks actual bytes to a real server — the same stack a curl
user hits — and pins the PR's acceptance criteria:

* submit → poll → stream → cancel over ``/v1/jobs/...``, with per-iteration
  updates observable *before* the job completes;
* job-mode exploration is bitwise-identical to the direct blocking
  ``service.explore`` (same frontier, same ADRS float), including after a
  mid-job SIGKILL + replica respawn resumes it from the durable checkpoint;
* the blocking ``POST /v1/explore`` still answers — with the ``Deprecation``
  header pointing at the successor route;
* every failure path (quota, unknown job, disabled tier, validation) wears
  the unified ``{"error": {type, message, retryable}}`` envelope.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.cluster import ReplicaManager, ReplicaSpec
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.jobs import JobManager
from repro.runtime.config import RuntimeConfig
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import (
    GatewayHTTPServer,
    request_json,
    request_raw,
    stream_json_lines,
)
from repro.serve import ModelRegistry, PowerEstimationService
from repro.serve.wire import explore_report_to_json

SERVICE_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=10)
MODEL_NAME = "jobs-under-test"


@pytest.fixture(scope="module")
def served_model(small_dataset):
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)


def stable(result: dict) -> dict:
    """A finished report minus wall-clock (the one legitimately varying field)."""
    return {k: v for k, v in result.items() if k != "elapsed_seconds"}


def serve(model, *, runtime=None, jobs=True, **manager_kwargs):
    """Async context: server (+ optional jobs tier) on an ephemeral port."""

    class _Context:
        async def __aenter__(self):
            self.service = PowerEstimationService(
                model,
                generator=DatasetGenerator(SERVICE_CONFIG),
                runtime=runtime or RuntimeConfig(),
            )
            self.manager = (
                JobManager(self.service, **manager_kwargs) if jobs else None
            )
            self.gateway = AsyncPowerGateway(self.service, jobs=self.manager)
            self.server = GatewayHTTPServer(self.gateway)
            self.host, self.port = await self.server.start()
            return self

        async def __aexit__(self, *exc_info):
            await self.server.aclose()
            await self.gateway.aclose(close_service=True)

        async def call(self, method, path, body=None, headers=None):
            return await request_json(
                self.host, self.port, method, path, body, headers
            )

        async def submit(self, body, headers=None):
            return await self.call("POST", "/v1/jobs/explore", body, headers)

        async def wait_terminal(self, job_id, timeout=60.0):
            deadline = time.monotonic() + timeout
            while True:
                status, snapshot = await self.call("GET", f"/v1/jobs/{job_id}")
                assert status == 200
                if snapshot["state"] in ("succeeded", "failed", "cancelled"):
                    return snapshot
                assert time.monotonic() < deadline, f"job stuck: {snapshot}"
                await asyncio.sleep(0.05)

    return _Context()


# ------------------------------------------------------------------ lifecycle


def test_submit_poll_stream_lifecycle_and_bitwise_equality(served_model):
    async def scenario():
        async with serve(served_model) as ctx:
            status, snapshot = await ctx.submit({"kernel": "atax", "budget": 0.5})
            assert status == 202  # accepted, not yet done
            assert snapshot["state"] == "queued"
            assert snapshot["kernel"] == "atax"
            job_id = snapshot["job_id"]
            assert job_id.startswith("atax-")

            # Stream the whole update log over chunked NDJSON.
            streamed = []
            async for update in stream_json_lines(
                ctx.host, ctx.port, f"/v1/jobs/{job_id}/updates?stream=1"
            ):
                streamed.append(update)
            assert [u["seq"] for u in streamed] == list(
                range(1, len(streamed) + 1)
            )
            assert streamed[-1]["event"] == "done"
            assert streamed[-1]["state"] == "succeeded"
            iterations = [u for u in streamed if u["event"] == "iteration"]
            assert iterations and iterations[0]["frontier"]

            final = await ctx.wait_terminal(job_id)
            assert final["state"] == "succeeded"

            # `since` pagination agrees with the stream.
            status, page = await ctx.call(
                "GET", f"/v1/jobs/{job_id}/updates?since={len(streamed) - 1}"
            )
            assert status == 200
            assert [u["seq"] for u in page["updates"]] == [len(streamed)]

            # The acceptance bar: the job's result is bitwise the direct
            # blocking exploration (identical trajectory, frontier, ADRS).
            direct = explore_report_to_json(ctx.service.explore("atax", 0.5))
            assert stable(final["result"]) == stable(direct)

            # The job also shows up in the listing.
            status, listing = await ctx.call("GET", "/v1/jobs")
            assert status == 200
            assert [j["job_id"] for j in listing["jobs"]] == [job_id]

    asyncio.run(scenario())


def test_streamed_updates_arrive_before_completion(served_model):
    async def scenario():
        runtime = RuntimeConfig(job_step_delay_s=0.3)
        async with serve(served_model, runtime=runtime) as ctx:
            _, snapshot = await ctx.submit({"kernel": "atax", "budget": 0.9})
            job_id = snapshot["job_id"]
            stream = stream_json_lines(
                ctx.host, ctx.port, f"/v1/jobs/{job_id}/updates?stream=1"
            )
            first = await anext(stream)
            assert first["event"] == "iteration"
            # The stream handed us an iteration while the job is still live.
            _, mid = await ctx.call("GET", f"/v1/jobs/{job_id}")
            assert mid["state"] in ("queued", "running")
            async for update in stream:  # drain to completion
                last = update
            assert last["event"] == "done"
            final = await ctx.wait_terminal(job_id)
            assert final["state"] == "succeeded"

    asyncio.run(scenario())


def test_cancel_mid_flight_over_http(served_model):
    async def scenario():
        runtime = RuntimeConfig(job_step_delay_s=0.3)
        async with serve(served_model, runtime=runtime) as ctx:
            _, snapshot = await ctx.submit({"kernel": "atax", "budget": 0.9})
            job_id = snapshot["job_id"]
            # Wait for the first iteration (long-poll), then cancel.
            status, payload = await ctx.call(
                "GET", f"/v1/jobs/{job_id}/updates?since=0&wait=30"
            )
            assert status == 200 and payload["updates"]
            status, cancelled = await ctx.call(
                "POST", f"/v1/jobs/{job_id}/cancel", {}
            )
            assert status == 200
            final = await ctx.wait_terminal(job_id)
            assert final["state"] == "cancelled"
            assert final["result"] is None
            _, log = await ctx.call("GET", f"/v1/jobs/{job_id}/updates")
            assert log["updates"][-1] == {
                "seq": log["next_since"],
                "event": "done",
                "state": "cancelled",
            }

    asyncio.run(scenario())


# ------------------------------------------------- deprecated blocking wrapper


def test_blocking_explore_wraps_jobs_with_deprecation_header(served_model):
    async def scenario():
        async with serve(served_model) as ctx:
            status, headers, data = await request_raw(
                ctx.host,
                ctx.port,
                "POST",
                "/v1/explore",
                {"kernel": "atax", "budget": 0.5},
            )
            assert status == 200
            assert headers.get("deprecation") == "true"
            assert "/v1/jobs/explore" in headers.get("link", "")
            import json as _json

            blocking = _json.loads(data.decode())
            direct = explore_report_to_json(ctx.service.explore("atax", 0.5))
            assert stable(blocking) == stable(direct)
            # The wrapper ran as a real job: it's in the table, succeeded.
            status, listing = await ctx.call("GET", "/v1/jobs")
            assert [j["state"] for j in listing["jobs"]] == ["succeeded"]

    asyncio.run(scenario())


def test_blocking_explore_still_works_without_jobs_tier(served_model):
    async def scenario():
        async with serve(served_model, jobs=False) as ctx:
            status, headers, data = await request_raw(
                ctx.host,
                ctx.port,
                "POST",
                "/v1/explore",
                {"kernel": "atax", "budget": 0.5},
            )
            assert status == 200
            assert headers.get("deprecation") == "true"

    asyncio.run(scenario())


# ------------------------------------------------------------ error envelopes


def test_quota_rejection_is_typed_backpressure(served_model):
    async def scenario():
        runtime = RuntimeConfig(job_step_delay_s=0.5, max_jobs_per_client=1)
        async with serve(served_model, runtime=runtime) as ctx:
            alice = {"X-Client-ID": "alice"}
            status, first = await ctx.submit(
                {"kernel": "atax", "budget": 0.9}, headers=alice
            )
            assert status == 202 and first["client"] == "alice"
            status, envelope = await ctx.submit(
                {"kernel": "atax", "budget": 0.9}, headers=alice
            )
            assert status == 429
            assert envelope["error"]["type"] == "job_quota"
            assert envelope["error"]["retryable"] is True
            assert "alice" in envelope["error"]["message"]
            # The quota is per client: bob (via the body field) is admitted.
            status, second = await ctx.submit(
                {"kernel": "atax", "budget": 0.9, "client": "bob"}
            )
            assert status == 202 and second["client"] == "bob"
            for job_id in (first["job_id"], second["job_id"]):
                await ctx.call("POST", f"/v1/jobs/{job_id}/cancel", {})
                await ctx.wait_terminal(job_id)

    asyncio.run(scenario())


def test_unknown_job_is_404_envelope_everywhere(served_model):
    async def scenario():
        async with serve(served_model) as ctx:
            for method, path in (
                ("GET", "/v1/jobs/atax-deadbeef"),
                ("GET", "/v1/jobs/atax-deadbeef/updates"),
                ("POST", "/v1/jobs/atax-deadbeef/cancel"),
            ):
                status, envelope = await ctx.call(
                    method, path, {} if method == "POST" else None
                )
                assert status == 404, path
                assert envelope["error"]["type"] == "job_not_found"
                assert envelope["error"]["retryable"] is False
            # The stream flavour refuses with the same envelope (no chunked
            # head is committed for a job that doesn't exist).
            from repro.runtime.errors import HTTPError

            with pytest.raises(HTTPError) as excinfo:
                async for _ in stream_json_lines(
                    ctx.host, ctx.port, "/v1/jobs/atax-deadbeef/updates?stream=1"
                ):
                    pass
            assert excinfo.value.status == 404

    asyncio.run(scenario())


def test_jobs_disabled_is_503_envelope(served_model):
    async def scenario():
        async with serve(served_model, jobs=False) as ctx:
            status, envelope = await ctx.submit({"kernel": "atax", "budget": 0.5})
            assert status == 503
            assert envelope["error"]["type"] == "jobs_disabled"
            assert envelope["error"]["retryable"] is False
            status, envelope = await ctx.call("GET", "/v1/jobs")
            assert status == 503

    asyncio.run(scenario())


def test_submit_validation_envelopes(served_model):
    async def scenario():
        async with serve(served_model) as ctx:
            status, envelope = await ctx.submit({})
            assert status == 400 and envelope["error"]["type"] == "bad_request"
            status, envelope = await ctx.submit(
                {"kernel": "atax", "budget": 0.5, "dse_config": {"seed": 1}}
            )
            assert status == 400
            status, envelope = await ctx.call(
                "GET", "/v1/jobs/atax-deadbeef/updates?since=-1"
            )
            assert status == 400
            # Wrong method on a known path: 405 with the envelope.  (Not
            # /v1/jobs/explore: as a GET that legitimately matches the
            # /v1/jobs/{job_id} pattern and is a 404 unknown job.)
            status, envelope = await ctx.call("GET", "/v1/estimate")
            assert status == 405
            assert envelope["error"]["type"] == "method_not_allowed"

    asyncio.run(scenario())


# ------------------------------------------------------- discovery and metrics


def test_routes_table_is_machine_readable(served_model):
    async def scenario():
        async with serve(served_model) as ctx:
            status, payload = await ctx.call("GET", "/v1/routes")
            assert status == 200 and payload["version"] == "v1"
            by_path = {
                (r["method"], r["path"]): r for r in payload["routes"]
            }
            explore = by_path[("POST", "/v1/explore")]
            assert explore["deprecated"] is True
            assert explore["successor"] == "/v1/jobs/explore"
            assert ("GET", "/v1/jobs/{job_id}/updates") in by_path
            assert ("POST", "/v1/jobs/{job_id}/cancel") in by_path

    asyncio.run(scenario())


def test_metrics_export_job_states(served_model):
    async def scenario():
        async with serve(served_model) as ctx:
            _, snapshot = await ctx.submit({"kernel": "atax", "budget": 0.5})
            await ctx.wait_terminal(snapshot["job_id"])
            status, metrics = await ctx.call("GET", "/metrics")
            assert status == 200
            assert metrics["jobs"]["by_state"] == {"succeeded": 1}
            assert metrics["jobs"]["durable"] is False
            status, headers, text = await request_raw(
                ctx.host, ctx.port, "GET", "/metrics", None,
                {"Accept": "text/plain"},
            )
            assert status == 200
            body = text.decode()
            assert 'repro_jobs{state="succeeded"} 1' in body
            assert "repro_job_transitions_total" in body

    asyncio.run(scenario())


# --------------------------------------------------- SIGKILL + restart resume


@pytest.mark.slow
def test_sigkill_respawn_resumes_job_bitwise(small_dataset, tmp_path, served_model):
    """Kill -9 a replica mid-exploration; the respawned process resumes the
    job from its durable checkpoint and finishes with a final report bitwise
    equal to the uninterrupted direct run."""
    registry_dir = tmp_path / "registry"
    ModelRegistry(registry_dir).save(served_model, MODEL_NAME)
    jobs_dir = tmp_path / "jobs"
    spec = ReplicaSpec(
        registry_dir=registry_dir,
        model_name=MODEL_NAME,
        dataset_config=SERVICE_CONFIG,
        runtime=RuntimeConfig(jobs_dir=jobs_dir, job_step_delay_s=0.5),
    )

    # The uninterrupted reference, computed in-process from the same artifact.
    reference_service, _ = spec.build_service()
    try:
        reference = explore_report_to_json(reference_service.explore("atax", 0.9))
    finally:
        reference_service.close()

    async def scenario():
        manager = ReplicaManager(spec, num_replicas=1)
        manager.start()
        try:
            handle = manager.handles()[0]
            host, port = "127.0.0.1", handle.port
            status, snapshot = await request_json(
                host, port, "POST", "/v1/jobs/explore",
                {"kernel": "atax", "budget": 0.9},
            )
            assert status == 202
            job_id = snapshot["job_id"]

            # Let it checkpoint at least one iteration, then kill -9.
            status, payload = await request_json(
                host, port, "GET", f"/v1/jobs/{job_id}/updates?since=0&wait=30"
            )
            assert status == 200 and payload["updates"]
            os.kill(handle.pid, signal.SIGKILL)

            respawned = manager.respawn(handle.replica_id)
            port = respawned.port

            # The fresh process found the checkpoint and resumed the job.
            deadline = time.monotonic() + 120
            while True:
                status, snapshot = await request_json(
                    host, port, "GET", f"/v1/jobs/{job_id}"
                )
                assert status == 200, snapshot
                if snapshot["state"] in ("succeeded", "failed", "cancelled"):
                    break
                assert time.monotonic() < deadline, f"job stuck: {snapshot}"
                await asyncio.sleep(0.2)

            assert snapshot["state"] == "succeeded"
            assert snapshot["resumes"] == 1
            assert stable(snapshot["result"]) == stable(reference)

            # The stitched update log is still seq-contiguous.
            status, log = await request_json(
                host, port, "GET", f"/v1/jobs/{job_id}/updates"
            )
            seqs = [u["seq"] for u in log["updates"]]
            assert seqs == list(range(1, len(seqs) + 1))
        finally:
            manager.close()

    asyncio.run(scenario())
