"""HTTP/1.1 keep-alive tests: server-side connection reuse and the client pool.

These drive :class:`~repro.runtime.http.AsyncJSONHTTPServer` directly through
a trivial echo subclass — keep-alive is a property of the connection loop,
not of any particular route — plus :class:`HTTPConnectionPool`, the matching
client the cluster router holds per replica.  Sockets are exercised raw
(``asyncio.open_connection``) where the assertion is about connection
lifetime: whether the server answered ``Connection: keep-alive`` or
``close``, and whether the socket then yields another response or EOF.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.runtime.http import AsyncJSONHTTPServer, HTTPConnectionPool, HTTPError


class EchoServer(AsyncJSONHTTPServer):
    """Minimal dispatcher: /echo answers, /fail raises, anything else 404s."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.dispatched = 0

    async def _dispatch(self, method, path, query, headers, body, request_id):
        self.dispatched += 1
        if path == "/echo":
            return 200, {"n": self.dispatched, "body": body.decode() or None}
        if path == "/fail":
            raise HTTPError(400, "bad_request", "told to fail")
        raise HTTPError(404, "not_found", f"no route for {path}")


def request_bytes(path: str, *, keep_alive: bool, body: bytes = b"") -> bytes:
    connection = "keep-alive" if keep_alive else "close"
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Connection: {connection}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode() + body


async def read_response(reader: asyncio.StreamReader):
    """One full response off the stream: (status, headers, parsed body)."""
    status_line = await reader.readline()
    assert status_line, "server closed the connection instead of answering"
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = (await reader.readline()).decode().strip()
        if not line:
            break
        name, _, value = line.partition(":")
        headers[name.lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, json.loads(body.decode())


# ------------------------------------------------------------------- server


def test_default_connection_closes():
    """No opt-in → Connection: close and EOF, the pre-keep-alive behaviour."""

    async def scenario():
        async with EchoServer() as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(request_bytes("/echo", keep_alive=False))
            await writer.drain()
            status, headers, payload = await read_response(reader)
            eof = await reader.read(1)
            writer.close()
            return status, headers, eof

    status, headers, eof = asyncio.run(scenario())
    assert status == 200
    assert headers["connection"] == "close"
    assert eof == b""


def test_keep_alive_reuses_one_connection():
    async def scenario():
        async with EchoServer() as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            results = []
            for index in range(5):
                writer.write(
                    request_bytes("/echo", keep_alive=True, body=f"r{index}".encode())
                )
                await writer.drain()
                results.append(await read_response(reader))
            writer.close()
            return results

    results = asyncio.run(scenario())
    assert [payload["n"] for _, _, payload in results] == [1, 2, 3, 4, 5]
    assert [payload["body"] for _, _, payload in results] == [
        "r0", "r1", "r2", "r3", "r4"
    ]
    assert all(headers["connection"] == "keep-alive" for _, headers, _ in results)


def test_per_connection_request_cap():
    """The Nth request on one connection answers Connection: close — one
    client cannot pin a handler task forever."""

    async def scenario():
        async with EchoServer(keep_alive_max_requests=3) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            headers_seen = []
            for _ in range(3):
                writer.write(request_bytes("/echo", keep_alive=True))
                await writer.drain()
                _, headers, _ = await read_response(reader)
                headers_seen.append(headers["connection"])
            eof = await reader.read(1)
            writer.close()
            return headers_seen, eof

    headers_seen, eof = asyncio.run(scenario())
    assert headers_seen == ["keep-alive", "keep-alive", "close"]
    assert eof == b""


def test_idle_timeout_closes_silently():
    """An idle kept-alive connection expires with EOF, not a 408 — parking a
    pooled connection is normal client behaviour, not a protocol fault."""

    async def scenario():
        async with EchoServer(keep_alive_idle_s=0.15) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(request_bytes("/echo", keep_alive=True))
            await writer.drain()
            status, headers, _ = await read_response(reader)
            assert headers["connection"] == "keep-alive"
            trailing = await asyncio.wait_for(reader.read(64), timeout=5)
            writer.close()
            return trailing

    assert asyncio.run(scenario()) == b""  # EOF, no 408 bytes


def test_first_request_timeout_still_answers_408():
    """The idle window only applies *between* requests; a connection that
    never delivers its first request keeps the 408 contract."""

    async def scenario():
        async with EchoServer(read_timeout=0.15) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            status, headers, payload = await read_response(reader)  # sent nothing
            writer.close()
            return status, payload

    status, payload = asyncio.run(scenario())
    assert status == 408
    assert payload["error"]["type"] == "timeout"


def test_error_responses_close_despite_opt_in():
    async def scenario():
        async with EchoServer() as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(request_bytes("/fail", keep_alive=True))
            await writer.drain()
            status, headers, _ = await read_response(reader)
            eof = await reader.read(1)
            writer.close()
            return status, headers, eof

    status, headers, eof = asyncio.run(scenario())
    assert status == 400
    assert headers["connection"] == "close"
    assert eof == b""


def test_aclose_does_not_wait_out_idle_connections():
    """Shutdown with a parked keep-alive connection returns promptly: the
    idle handler's transport is closed instead of waiting out its window."""

    async def scenario():
        server = EchoServer(keep_alive_idle_s=30.0)
        await server.start()
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(request_bytes("/echo", keep_alive=True))
        await writer.drain()
        await read_response(reader)  # connection now parked idle for 30s
        loop = asyncio.get_running_loop()
        started = loop.time()
        await server.aclose()
        elapsed = loop.time() - started
        writer.close()
        return elapsed

    assert asyncio.run(scenario()) < 5.0


# ------------------------------------------------------------------- client


def test_pool_reuses_connections():
    async def scenario():
        async with EchoServer() as server:
            pool = HTTPConnectionPool(server.host, server.port)
            try:
                for _ in range(6):
                    status, _, data = await pool.request("POST", "/echo", b"")
                    assert status == 200
                return pool.stats()
            finally:
                await pool.aclose()

    stats = asyncio.run(scenario())
    assert stats["created"] == 1
    assert stats["reused"] == 5
    assert stats["idle"] == 1


def test_pool_retries_on_stale_idle_connection():
    """A parked connection the server already closed (idle expiry) must not
    fail the request — the pool falls back to a fresh connection."""

    async def scenario():
        async with EchoServer(keep_alive_idle_s=0.1) as server:
            pool = HTTPConnectionPool(server.host, server.port)
            try:
                await pool.request("POST", "/echo", b"")
                await asyncio.sleep(0.4)  # server times the idle connection out
                status, _, _ = await pool.request("POST", "/echo", b"")
                return status, pool.stats()
            finally:
                await pool.aclose()

    status, stats = asyncio.run(scenario())
    assert status == 200
    assert stats["created"] == 2  # stale one was discarded, not errored on


def test_pool_fresh_connection_failure_raises_connection_error():
    """Failure on a *fresh* connection is a real peer-down signal — the
    exception type the router's failover keys on."""

    async def scenario():
        async with EchoServer() as server:
            dead_port = server.port
        # context exit closed the server; the port is now unreachable
        pool = HTTPConnectionPool("127.0.0.1", dead_port, request_timeout=2.0)
        try:
            with pytest.raises(ConnectionError):
                await pool.request("POST", "/echo", b"")
        finally:
            await pool.aclose()

    asyncio.run(scenario())


def test_pool_json_helper_and_dict_bodies():
    async def scenario():
        async with EchoServer() as server:
            pool = HTTPConnectionPool(server.host, server.port)
            try:
                status, payload = await pool.request_json(
                    "POST", "/echo", {"kernel": "atax"}
                )
                return status, payload
            finally:
                await pool.aclose()

    status, payload = asyncio.run(scenario())
    assert status == 200
    assert json.loads(payload["body"]) == {"kernel": "atax"}


def test_pool_respects_max_idle():
    """Concurrent requests beyond max_idle park only max_idle connections."""

    async def scenario():
        async with EchoServer() as server:
            pool = HTTPConnectionPool(server.host, server.port, max_idle=2)
            try:
                await asyncio.gather(
                    *(pool.request("POST", "/echo", b"") for _ in range(5))
                )
                return pool.stats()
            finally:
                await pool.aclose()

    stats = asyncio.run(scenario())
    assert stats["idle"] <= 2
