"""Tests for the incremental explorer API (start / step / finalize).

The async job service depends on two properties pinned here: driving the
loop one step at a time is *exactly* the blocking ``explore`` (same
trajectory, same result, bit for bit), and the mid-flight
:class:`~repro.dse.explorer.ExplorationState` survives a JSON round-trip —
the job checkpoint format — without perturbing that trajectory.
"""

import json

import numpy as np
import pytest

from repro.dse.explorer import DesignCandidate, DSEConfig, ExplorationState, ParetoExplorer


def make_candidates(count: int = 50, seed: int = 0) -> list[DesignCandidate]:
    rng = np.random.default_rng(seed)
    candidates = []
    for index in range(count):
        config = rng.random(4)
        latency = 100.0 + 900.0 * config[0]
        power = 0.05 + 0.25 * (1.2 - config[0]) + 0.02 * config[1]
        candidates.append(
            DesignCandidate(
                index=index,
                latency=latency,
                true_power=float(power),
                config_vector=config,
            )
        )
    return candidates


def perfect_predictor(batch):
    return np.array([c.true_power for c in batch])


def assert_results_identical(a, b):
    assert a.sampled_indices == b.sampled_indices
    assert a.approximate_pareto_indices == b.approximate_pareto_indices
    assert a.exact_pareto_indices == b.exact_pareto_indices
    assert a.adrs == b.adrs  # bitwise, not approx
    assert a.history == b.history
    assert a.predictions == b.predictions


def test_stepwise_loop_is_bitwise_identical_to_explore():
    candidates = make_candidates(60, seed=7)
    config = DSEConfig(initial_budget=0.05, total_budget=0.4, seed=3)
    blocking = ParetoExplorer(config).explore(candidates, perfect_predictor)

    explorer = ParetoExplorer(config)
    state = explorer.start(candidates)
    updates = []
    while not state.done:
        updates.append(explorer.step(candidates, state, perfect_predictor))
    incremental = explorer.finalize(candidates, state)

    assert_results_identical(blocking, incremental)
    assert [u["iteration"] for u in updates] == list(range(1, len(updates) + 1))
    assert updates[-1]["done"] is True
    assert all(u["done"] is False for u in updates[:-1])


def test_state_json_round_trip_mid_flight_preserves_trajectory():
    candidates = make_candidates(70, seed=1)
    config = DSEConfig(initial_budget=0.05, total_budget=0.5, seed=9)
    blocking = ParetoExplorer(config).explore(candidates, perfect_predictor)

    explorer = ParetoExplorer(config)
    state = explorer.start(candidates)
    for _ in range(3):  # interrupt mid-flight, after a few iterations
        explorer.step(candidates, state, perfect_predictor)
    assert not state.done

    # The job checkpoint path: dataclass -> JSON text -> dataclass, then a
    # *fresh* explorer continues the loop in what could be another process.
    revived = ExplorationState.from_json(json.loads(json.dumps(state.to_json())))
    resumed_explorer = ParetoExplorer(config)
    while not revived.done:
        resumed_explorer.step(candidates, revived, perfect_predictor)
    resumed = resumed_explorer.finalize(candidates, revived)

    assert_results_identical(blocking, resumed)


def test_round_trip_at_every_iteration_boundary():
    candidates = make_candidates(40, seed=2)
    config = DSEConfig(initial_budget=0.1, total_budget=0.5, seed=5)
    reference = ParetoExplorer(config).explore(candidates, perfect_predictor)

    explorer = ParetoExplorer(config)
    state = explorer.start(candidates)
    while not state.done:
        # Round-trip after *every* step: resume must be safe at any boundary.
        state = ExplorationState.from_json(json.loads(json.dumps(state.to_json())))
        explorer.step(candidates, state, perfect_predictor)
    assert_results_identical(reference, explorer.finalize(candidates, state))


def test_restore_rng_continues_exact_stream():
    explorer = ParetoExplorer(DSEConfig(seed=11))
    state = explorer.start(make_candidates(30))
    direct = state.restore_rng().random(8)
    revived = ExplorationState.from_json(json.loads(json.dumps(state.to_json())))
    assert revived.restore_rng().random(8).tolist() == direct.tolist()


def test_step_after_done_raises():
    candidates = make_candidates(30)
    explorer = ParetoExplorer(DSEConfig(initial_budget=0.1, total_budget=0.2))
    state = explorer.start(candidates)
    while not state.done:
        explorer.step(candidates, state, perfect_predictor)
    with pytest.raises(ValueError):
        explorer.step(candidates, state, perfect_predictor)


def test_finalize_scores_abandoned_state():
    candidates = make_candidates(50, seed=8)
    explorer = ParetoExplorer(DSEConfig(initial_budget=0.05, total_budget=0.6, seed=1))
    state = explorer.start(candidates)
    explorer.step(candidates, state, perfect_predictor)
    partial = explorer.finalize(candidates, state)  # cancelled-job scoring path
    assert partial.sampled_indices
    assert partial.adrs >= 0.0
    assert set(partial.approximate_pareto_indices).issubset(set(partial.sampled_indices))
