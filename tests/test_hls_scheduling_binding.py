"""Tests for the scheduler, binder, FSMD and resource estimator."""

from repro.hls.binding import Binder
from repro.hls.frontend import lower_kernel
from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.hls.report import run_hls
from repro.hls.resources import ResourceUsage
from repro.hls.scheduling import Scheduler


def schedule_for(kernel, directives=None):
    design = lower_kernel(kernel, directives)
    return design, Scheduler().schedule(design)


def test_schedule_latency_positive_and_ordered(gemm_kernel):
    _, schedule = schedule_for(gemm_kernel)
    assert schedule.total_latency > 0
    assert schedule.loop_schedules
    for loop in schedule.loop_schedules:
        assert loop.total_latency >= loop.iteration_latency


def test_pipelining_reduces_latency(gemm_kernel):
    _, baseline = schedule_for(gemm_kernel)
    _, pipelined = schedule_for(
        gemm_kernel, DesignDirectives.from_dicts({"k0": LoopPragmas(pipeline=True)})
    )
    assert pipelined.total_latency < baseline.total_latency
    assert any(loop.pipelined for loop in pipelined.loop_schedules)


def test_array_partitioning_improves_initiation_interval(gemm_kernel):
    unrolled = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=3, pipeline=True)}
    )
    partitioned = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=3, pipeline=True)},
        {"A": ArrayPartition(4), "B": ArrayPartition(4)},
    )
    _, without = schedule_for(gemm_kernel, unrolled)
    _, with_partition = schedule_for(gemm_kernel, partitioned)
    ii_without = min(lp.initiation_interval for lp in without.pipelined_loops)
    ii_with = min(lp.initiation_interval for lp in with_partition.pipelined_loops)
    assert ii_with <= ii_without
    assert with_partition.total_latency <= without.total_latency


def test_unrolling_reduces_latency_with_ports(gemm_kernel):
    directives = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=3)},
        {"A": ArrayPartition(4), "B": ArrayPartition(4), "C": ArrayPartition(4)},
    )
    _, baseline = schedule_for(gemm_kernel)
    _, unrolled = schedule_for(gemm_kernel, directives)
    assert unrolled.total_latency < baseline.total_latency


def test_memory_accesses_tracked_per_buffer(gemm_kernel):
    _, schedule = schedule_for(gemm_kernel)
    assert "A" in schedule.memory_accesses
    assert "C" in schedule.memory_accesses
    assert all(count > 0 for count in schedule.memory_accesses.values())


def test_binder_allocates_units_and_assigns_all_shared_ops(gemm_kernel):
    design, schedule = schedule_for(gemm_kernel)
    binding = Binder().bind(design, schedule)
    assert binding.total_units >= 1
    shared_opcodes = {"fadd", "fsub", "fmul", "fdiv", "mul", "sdiv", "add", "sub", "icmp", "fcmp"}
    for instr in design.function.instructions:
        if instr.opcode.value in shared_opcodes:
            assert binding.unit_of(instr) is not None


def test_unrolling_increases_functional_units(gemm_kernel):
    base_design, base_schedule = schedule_for(gemm_kernel)
    unrolled_directives = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=3, pipeline=True)},
        {"A": ArrayPartition(4), "B": ArrayPartition(4)},
    )
    unrolled_design, unrolled_schedule = schedule_for(gemm_kernel, unrolled_directives)
    base_binding = Binder().bind(base_design, base_schedule)
    unrolled_binding = Binder().bind(unrolled_design, unrolled_schedule)
    assert unrolled_binding.total_units >= base_binding.total_units


def test_fsmd_states_and_transitions(gemm_baseline_result):
    fsmd = gemm_baseline_result.fsmd
    assert fsmd.num_states >= 3
    assert fsmd.transitions
    # Loop-back transitions exist for the loop nest.
    assert any(dst <= src for src, dst in fsmd.transitions)
    all_ops = {uid for state in fsmd.states for uid in state.operation_uids}
    assert all_ops


def test_resource_estimator_monotone_in_unrolling(gemm_kernel):
    baseline = run_hls(gemm_kernel)
    unrolled = run_hls(
        gemm_kernel,
        DesignDirectives.from_dicts(
            {"k0": LoopPragmas(unroll_factor=3, pipeline=True)},
            {"A": ArrayPartition(2), "B": ArrayPartition(2)},
        ),
    )
    assert unrolled.report.resources.lut > baseline.report.resources.lut
    assert unrolled.report.resources.dsp >= baseline.report.resources.dsp
    assert unrolled.report.resources.bram >= baseline.report.resources.bram


def test_resource_usage_arithmetic():
    a = ResourceUsage(10, 20, 1, 2)
    b = ResourceUsage(5, 5, 1, 0)
    total = a + b
    assert (total.lut, total.ff, total.dsp, total.bram) == (15, 25, 2, 2)
    assert total.total_cells > 0
    assert a.scaled(2.0).lut == 20
    assert a.as_dict()["bram"] == 2


def test_bram_grows_with_partitioning(gemm_kernel):
    baseline = run_hls(gemm_kernel)
    partitioned = run_hls(
        gemm_kernel,
        DesignDirectives.from_dicts({}, {"A": ArrayPartition(4)}),
    )
    assert partitioned.report.resources.bram >= baseline.report.resources.bram
