"""Tests for the on-disk cost-aware cache tier."""

import os

import pytest

from repro.graph.dataset import GraphSample
from repro.runtime import PersistentCache
from repro.runtime.cache import INDEX_NAME, OWNER_LOCK_NAME, SAMPLES_DIR
from repro.serve.cache import InferenceCache, sample_fingerprint


@pytest.fixture()
def samples(random_graph_factory):
    """Six samples with identical array shapes, so on-disk sizes are ~equal
    and the byte-budget eviction tests are robust."""
    return [
        GraphSample(
            graph=random_graph_factory(num_nodes=10, num_edges=20, seed=100 + index),
            kernel="synthetic",
            directives=f"point{index}",
            total_power=1.0,
            dynamic_power=0.4,
            static_power=0.6,
            latency_cycles=100 + index,
        )
        for index in range(6)
    ]


def keyed(samples):
    return [(f"key{i:02d}", sample) for i, sample in enumerate(samples)]


def test_validates_configuration(tmp_path):
    with pytest.raises(ValueError):
        PersistentCache(tmp_path, max_bytes=0)
    with pytest.raises(ValueError):
        PersistentCache(tmp_path, max_predictions=0)


def test_sample_roundtrip_is_bitwise(tmp_path, samples):
    cache = PersistentCache(tmp_path / "store")
    key, sample = keyed(samples)[0]
    assert cache.get_sample(key) is None
    cache.put_sample(key, sample, cost_seconds=0.5)
    loaded = cache.get_sample(key)
    assert sample_fingerprint(loaded) == sample_fingerprint(sample)
    assert loaded.dynamic_power == sample.dynamic_power
    assert loaded.kernel == sample.kernel and loaded.directives == sample.directives
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["samples"] == 1
    assert stats["sample_bytes"] > 0


def test_store_survives_reopen(tmp_path, samples):
    directory = tmp_path / "store"
    first = PersistentCache(directory)
    for key, sample in keyed(samples):
        first.put_sample(key, sample, cost_seconds=1.0)
    first.put_prediction("pred:fp", 0.125, cost_seconds=0.1)
    first.close()

    second = PersistentCache(directory)
    assert len(second) == len(samples) + 1
    for key, sample in keyed(samples):
        assert sample_fingerprint(second.get_sample(key)) == sample_fingerprint(sample)
    assert second.get_prediction("pred:fp") == 0.125


def test_cost_aware_eviction_prefers_cheap_entries(tmp_path, samples):
    """Entries saving the fewest featurisation seconds are evicted first."""
    probe = PersistentCache(tmp_path / "probe")
    probe.put_sample("probe", samples[0], cost_seconds=1.0)
    per_entry = probe.total_sample_bytes()

    # Room for ~3 entries; costs make entry 1 cheapest, then 3, then 0, 2, 4.
    cache = PersistentCache(tmp_path / "store", max_bytes=int(per_entry * 3.5))
    costs = [5.0, 0.1, 9.0, 0.2, 7.0]
    for (key, sample), cost in zip(keyed(samples), costs):
        cache.put_sample(key, sample, cost_seconds=cost)
    assert cache.evictions == 2
    assert cache.get_sample("key01") is None  # cost 0.1: first out
    assert cache.get_sample("key03") is None  # cost 0.2: second out
    for survivor in ("key00", "key02", "key04"):
        assert cache.get_sample(survivor) is not None
    # An LRU policy would have kept key03 (recent) over key00 (old): the
    # cost-aware policy keeps the expensive old entry instead.


def test_eviction_breaks_cost_ties_by_recency(tmp_path, samples):
    probe = PersistentCache(tmp_path / "probe")
    probe.put_sample("probe", samples[0], cost_seconds=1.0)
    per_entry = probe.total_sample_bytes()

    cache = PersistentCache(tmp_path / "store", max_bytes=int(per_entry * 2.5))
    for (key, sample) in keyed(samples)[:3]:
        cache.put_sample(key, sample, cost_seconds=1.0)
    # Equal costs: the least recently touched entry (key00) goes first.
    assert cache.evictions == 1
    assert cache.get_sample("key00") is None
    assert cache.get_sample("key01") is not None


def test_prediction_store_caps_entries(tmp_path):
    cache = PersistentCache(tmp_path / "store", max_predictions=3)
    for index in range(5):
        cache.put_prediction(f"p{index}", float(index), cost_seconds=float(index))
    assert cache.evictions == 2
    assert cache.get_prediction("p0") is None  # lowest cost went first
    assert cache.get_prediction("p4") == 4.0


def test_corrupt_sample_file_is_dropped_not_served(tmp_path, samples):
    cache = PersistentCache(tmp_path / "store")
    key, sample = keyed(samples)[0]
    cache.put_sample(key, sample, cost_seconds=1.0)
    (tmp_path / "store" / SAMPLES_DIR / f"{key}.npz").write_bytes(b"not an npz")
    assert cache.get_sample(key) is None
    assert cache.stats()["samples"] == 0
    # And the store still works afterwards.
    cache.put_sample(key, sample, cost_seconds=1.0)
    assert cache.get_sample(key) is not None


def test_corrupt_index_starts_empty(tmp_path, samples):
    directory = tmp_path / "store"
    cache = PersistentCache(directory)
    key, sample = keyed(samples)[0]
    cache.put_sample(key, sample)
    (directory / INDEX_NAME).write_text("{broken json", encoding="utf-8")
    reopened = PersistentCache(directory)
    assert reopened.get_sample(key) is None


def test_index_entries_without_files_are_filtered_on_load(tmp_path, samples):
    directory = tmp_path / "store"
    cache = PersistentCache(directory)
    pairs = keyed(samples)[:2]
    for key, sample in pairs:
        cache.put_sample(key, sample)
    cache.close()
    (directory / SAMPLES_DIR / f"{pairs[0][0]}.npz").unlink()
    reopened = PersistentCache(directory)
    assert reopened.get_sample(pairs[0][0]) is None
    assert reopened.get_sample(pairs[1][0]) is not None


def test_index_writes_are_batched_with_a_backstop(tmp_path, samples):
    """The index is rewritten on sync() and every `sync_every` mutations."""
    directory = tmp_path / "store"
    cache = PersistentCache(directory, sync_every=3)
    cache.put_sample("key00", samples[0], cost_seconds=1.0)
    assert not (directory / INDEX_NAME).exists()  # 1 mutation: batched
    cache.put_sample("key01", samples[1], cost_seconds=1.0)
    cache.put_sample("key02", samples[2], cost_seconds=1.0)
    assert (directory / INDEX_NAME).is_file()  # backstop kicked in
    cache.put_prediction("p", 1.0)
    cache.sync()  # explicit sync persists the pending mutation
    reopened = PersistentCache(directory)
    assert reopened.get_prediction("p") == 1.0
    assert len(reopened) == 4


def test_unsynced_sample_files_are_garbage_collected_on_open(tmp_path, samples):
    """Files the index does not know about cannot be served; reclaim them."""
    directory = tmp_path / "store"
    cache = PersistentCache(directory)
    cache.put_sample("key00", samples[0], cost_seconds=1.0)
    cache.sync()
    cache.put_sample("key01", samples[1], cost_seconds=1.0)  # never synced
    # Crash here: key01's npz exists but no index entry records it.  A dead
    # owner's flock releases with its process — simulate by dropping the fd
    # without the graceful close() (which would sync the index away).
    os.close(cache._lock_fd)
    reopened = PersistentCache(directory)
    assert not reopened.read_only  # the crashed owner's lock auto-released
    assert reopened.get_sample("key00") is not None
    assert reopened.get_sample("key01") is None
    assert not (directory / SAMPLES_DIR / "key01.npz").exists()


# ------------------------------------------------------ write-error contract


def test_put_sample_with_json_unsafe_extras_never_raises(tmp_path, samples):
    """Regression: the documented contract is that a cache tier must never
    turn a successful request into an error.  ``extras`` with non-string
    dict keys pass the per-value JSON-safety probe but make the ``.npz``
    metadata dump raise TypeError — which used to propagate out of
    ``put_sample`` and fail the request."""
    cache = PersistentCache(tmp_path / "store")
    poisoned = GraphSample(
        graph=samples[0].graph,
        kernel="synthetic",
        directives="poisoned",
        total_power=1.0,
        dynamic_power=0.4,
        static_power=0.6,
        latency_cycles=100,
        extras={("tuple", "key"): 1.0},
    )
    cache.put_sample("poisoned", poisoned, cost_seconds=1.0)  # must not raise
    assert cache.io_errors == 1
    assert cache.get_sample("poisoned") is None  # not cached, but not fatal
    assert not (tmp_path / "store" / SAMPLES_DIR / "poisoned.tmp.npz").exists()
    # The store still works for well-behaved samples afterwards.
    cache.put_sample("fine", samples[1], cost_seconds=1.0)
    assert cache.get_sample("fine") is not None


def test_put_sample_json_unsafe_extras_through_inference_cache(tmp_path, samples):
    """The service path (InferenceCache write-through) keeps the memory tier
    even when the disk tier cannot serialise the sample."""
    persistent = PersistentCache(tmp_path / "store")
    cache = InferenceCache(persistent=persistent)
    poisoned = GraphSample(
        graph=samples[0].graph,
        kernel="synthetic",
        directives="poisoned",
        total_power=1.0,
        dynamic_power=0.4,
        static_power=0.6,
        latency_cycles=100,
        extras={("tuple", "key"): 1.0},
    )
    cache.put_sample(poisoned, cost_seconds=0.5)  # must not raise
    assert cache.get_sample("synthetic", "poisoned") is not None  # memory hit
    assert persistent.io_errors == 1


# ------------------------------------------------------------- owner locking


def test_second_opener_degrades_to_read_only(tmp_path, samples):
    """Two caches on one directory: the second must not clobber the first."""
    directory = tmp_path / "store"
    owner = PersistentCache(directory)
    owner.put_sample("key00", samples[0], cost_seconds=1.0)
    owner.sync()
    owner.put_sample("key01", samples[1], cost_seconds=1.0)  # not yet synced

    with pytest.warns(RuntimeWarning, match="read-only"):
        reader = PersistentCache(directory)
    assert reader.read_only
    assert reader.stats()["read_only"]
    # Reads are served; the owner's unsynced sample file was NOT GC'd.
    assert reader.get_sample("key00") is not None
    assert (directory / SAMPLES_DIR / "key01.npz").is_file()
    # Writes are silent no-ops: no sample file, no index rewrite.
    reader.put_sample("key02", samples[2], cost_seconds=1.0)
    reader.put_prediction("p", 1.0)
    reader.sync()
    assert not (directory / SAMPLES_DIR / "key02.npz").exists()

    # The owner's view (including the unsynced entry) survives intact.
    owner.sync()
    owner.close()
    fresh = PersistentCache(directory)
    assert not fresh.read_only
    assert fresh.get_sample("key01") is not None
    assert fresh.get_prediction("p") is None


def test_close_releases_ownership(tmp_path, samples):
    directory = tmp_path / "store"
    first = PersistentCache(directory)
    first.put_sample("key00", samples[0], cost_seconds=1.0)
    first.close()
    first.close()  # idempotent
    assert first.read_only  # a closed cache never writes again
    # The lock file persists (unlink would race fresh claims); the flock is
    # released, so the next opener becomes the owner.
    second = PersistentCache(directory)
    assert not second.read_only
    assert second.get_sample("key00") is not None
    assert (directory / OWNER_LOCK_NAME).read_text() == str(os.getpid())


def test_crashed_owner_lock_is_taken_over(tmp_path, samples):
    """flock dies with its holder: a leftover lock file from a crashed owner
    never blocks the next opener (no staleness heuristics needed)."""
    directory = tmp_path / "store"
    directory.mkdir(parents=True)
    (directory / OWNER_LOCK_NAME).write_text("999999999", encoding="utf-8")
    cache = PersistentCache(directory)  # no warning expected: nobody holds it
    assert not cache.read_only
    cache.put_sample("key00", samples[0], cost_seconds=1.0)
    assert cache.get_sample("key00") is not None


def test_inference_cache_promotes_disk_hits_to_memory(tmp_path, samples):
    persistent = PersistentCache(tmp_path / "store")
    warm = InferenceCache(persistent=persistent)
    for sample in samples:
        warm.put_sample(sample, cost_seconds=0.5)
    warm.put_prediction("skey", "fp", 0.75, cost_seconds=0.01)
    persistent.close()

    # A fresh memory tier over the same disk store: every lookup misses memory
    # once, falls through to disk, and is promoted.
    cold = InferenceCache(persistent=PersistentCache(tmp_path / "store"))
    sample = samples[0]
    from_disk = cold.get_sample(sample.kernel, sample.directives)
    assert sample_fingerprint(from_disk) == sample_fingerprint(sample)
    assert cold.get_prediction("skey", "fp") == 0.75
    # Promotion: the second lookup is a pure memory hit (disk hit count stays).
    disk_hits = cold.persistent.hits
    assert cold.get_sample(sample.kernel, sample.directives) is not None
    assert cold.get_prediction("skey", "fp") == 0.75
    assert cold.persistent.hits == disk_hits
    assert "persistent" in cold.stats()
