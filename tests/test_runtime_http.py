"""HTTP front-end tests: JSON round-trips and structured failure paths.

Each test runs a real :class:`~repro.runtime.http.GatewayHTTPServer` on an
ephemeral port inside its own event loop and speaks to it through the
module's stdlib client, so the bytes on the wire are the bytes a curl user
would see.  Failure paths assert the structured ``{"error": {type, message}}``
shape and the status code, never just "it raised".
"""

from __future__ import annotations

import asyncio

import pytest

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.hls.pragmas import DesignDirectives
from repro.kernels.polybench import polybench_kernel
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import (
    GatewayHTTPServer,
    directives_from_json,
    directives_to_json,
    request_json,
)
from repro.serve import EstimateRequest, ModelRegistry, PowerEstimationService
from repro.serve.service import EstimateResponse
from test_runtime_gateway import StubService

#: Matches the small_dataset fixture, so directives-based HTTP requests
#: featurise to the exact graphs the fixture samples carry.
SERVICE_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=10)


@pytest.fixture(scope="module")
def served_model(small_dataset):
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    return model


@pytest.fixture(scope="module")
def atax_points():
    """The atax design space, keyed by its human-readable description."""
    generator = DatasetGenerator(SERVICE_CONFIG)
    kernel = polybench_kernel("atax", SERVICE_CONFIG.kernel_size)
    return {d.describe(): d for d in generator.design_space_for(kernel)}


def direct_service(model) -> PowerEstimationService:
    return PowerEstimationService(model, generator=DatasetGenerator(SERVICE_CONFIG))


def serve(model, *, registry=None):
    """Async context: a started server over a fresh gateway; yields helpers."""

    class _Context:
        async def __aenter__(self):
            self.service = direct_service(model)
            self.gateway = AsyncPowerGateway(self.service)
            self.server = GatewayHTTPServer(self.gateway, registry=registry)
            host, port = await self.server.start()

            async def call(method, path, body=None):
                return await request_json(host, port, method, path, body)

            self.call = call
            return self

        async def __aexit__(self, *exc_info):
            await self.server.aclose()
            await self.gateway.aclose()

    return _Context()


class ResponseStub(StubService):
    """Stub whose estimate returns a serialisable response object."""

    def estimate(self, request):
        return self._serve(
            "estimate",
            EstimateResponse(
                kernel="stub",
                directives="baseline",
                power=1.0,
                target="dynamic",
                cached_features=False,
                cached_prediction=False,
                latency_ms=0.0,
                model_fingerprint="stub",
            ),
        )


# ------------------------------------------------------------------ round trips


def test_directives_json_round_trip(atax_points):
    """The wire codec inverts itself for every design point in the space."""
    for directives in atax_points.values():
        assert directives_from_json(directives_to_json(directives)) == directives
    assert directives_from_json(None) == DesignDirectives()
    assert directives_from_json({}) == DesignDirectives()


def test_http_estimate_round_trip(served_model, small_dataset, atax_points):
    sample = next(s for s in small_dataset.samples if s.kernel == "atax")
    direct = direct_service(served_model).estimate(EstimateRequest.from_sample(sample))

    async def run():
        async with serve(served_model) as ctx:
            return await ctx.call(
                "POST",
                "/v1/estimate",
                {
                    "kernel": "atax",
                    "directives": directives_to_json(atax_points[sample.directives]),
                },
            )

    status, payload = asyncio.run(run())
    assert status == 200
    assert payload["kernel"] == "atax"
    assert payload["directives"] == sample.directives
    assert payload["target"] == "dynamic"
    assert payload["model_fingerprint"] == direct.model_fingerprint
    # JSON floats round-trip exactly in Python, so bitwise equality holds
    # across the wire too.
    assert payload["power"] == direct.power


def test_http_estimate_many_matches_direct_bitwise(
    served_model, small_dataset, atax_points
):
    """The batch endpoint returns the direct path's exact floats."""
    atax = [s for s in small_dataset.samples if s.kernel == "atax"]
    direct = direct_service(served_model).estimate_many(
        [EstimateRequest.from_sample(s) for s in atax]
    )

    async def run():
        async with serve(served_model) as ctx:
            body = {
                "requests": [
                    {
                        "kernel": "atax",
                        "directives": directives_to_json(atax_points[s.directives]),
                    }
                    for s in atax
                ]
            }
            return await ctx.call("POST", "/v1/estimate_many", body)

    status, payload = asyncio.run(run())
    assert status == 200
    responses = payload["responses"]
    assert [r["power"] for r in responses] == [r.power for r in direct]
    assert [r["directives"] for r in responses] == [r.directives for r in direct]


def test_explore_json_spells_nan_predictions_as_null():
    """Unsampled exact-frontier designs (NaN prediction) must stay strict JSON."""
    import json
    import math

    from repro.runtime.http import explore_report_to_json
    from repro.serve.service import FrontierDesign

    class _Result:
        num_sampled = 1

    class _Report:
        kernel = "atax"
        budget = 0.4
        adrs = 0.1
        num_candidates = 2
        elapsed_seconds = 0.0
        result = _Result()
        frontier = [
            FrontierDesign(
                kernel="atax",
                directives="baseline",
                latency_cycles=10,
                predicted_power=float("nan"),
                measured_power=0.1,
            )
        ]

    payload = explore_report_to_json(_Report())
    assert payload["frontier"][0]["predicted_power"] is None
    json.dumps(payload, allow_nan=False)  # must not raise
    assert not math.isnan(payload["adrs"])


def test_http_explore(served_model):
    async def run():
        async with serve(served_model) as ctx:
            return await ctx.call(
                "POST", "/v1/explore", {"kernel": "atax", "budget": 0.4}
            )

    status, payload = asyncio.run(run())
    assert status == 200
    assert payload["kernel"] == "atax"
    assert payload["budget"] == 0.4
    assert payload["num_candidates"] > 0
    assert payload["frontier"], "explore returned an empty frontier"
    assert set(payload["frontier"][0]) == {
        "kernel",
        "directives",
        "latency_cycles",
        "predicted_power",
        "measured_power",
    }


def test_http_models_lists_registry_index(served_model, tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(served_model, "powergear-dynamic")
    registry.save(served_model, "powergear-dynamic")

    async def run():
        async with serve(served_model, registry=registry) as ctx:
            with_registry = await ctx.call("GET", "/v1/models")
        async with serve(served_model) as ctx:
            without_registry = await ctx.call("GET", "/v1/models")
        return with_registry, without_registry

    (status, payload), (bare_status, bare_payload) = asyncio.run(run())
    assert status == 200
    assert payload["models"] == [
        {"name": "powergear-dynamic", "versions": [1, 2], "latest": 2}
    ]
    assert bare_status == 200
    assert bare_payload == {"models": []}


def test_http_healthz_and_metrics(served_model):
    async def run():
        async with serve(served_model) as ctx:
            health = await ctx.call("GET", "/healthz")
            await ctx.call("POST", "/v1/estimate", {"kernel": "atax"})
            metrics = await ctx.call("GET", "/metrics")
            ctx.service.close()
            closed_health = await ctx.call("GET", "/healthz")
        return health, metrics, closed_health

    (health_status, health), (metrics_status, metrics), (closed_status, closed) = (
        asyncio.run(run())
    )
    assert health_status == 200
    assert health["status"] == "ok"
    assert health["pools"] == {}
    # The supervisor event timeline rides the health payload.
    assert isinstance(health["events"], list)
    assert metrics_status == 200
    assert metrics["service"]["requests"] >= 1
    assert metrics["service"]["designs"] >= 1
    assert metrics["runtime"]["cache"] is not None
    assert metrics["model"]["target"] == "dynamic"
    assert metrics["gateway"]["completed"] >= 1
    # Compute-backend exposure: the active backend name and the per-backend
    # forward counters ride the same endpoint.
    assert metrics["service"]["backend"] in ("numpy", "optimized")
    backend = metrics["runtime"]["backend"]
    assert backend["active"] == metrics["service"]["backend"]
    assert backend["counters"][backend["active"]]["forwards"] >= 1
    assert (closed_status, closed) == (503, {"status": "closed"})


def test_http_healthz_reports_degraded_pools(served_model):
    """A pool in post-crash backoff (or retired) turns /healthz degraded —
    still 200, the serial path answers identically — with the supervisor
    snapshot attached; only a closed service is 503."""

    async def run():
        async with serve(served_model) as ctx:
            ctx.service.health = lambda: {
                "status": "degraded",
                "pools": {
                    "featurisation": {
                        "state": "backoff",
                        "restarts": 1,
                        "last_fault": "WorkerCrashError: worker died mid-batch",
                    }
                },
            }
            degraded = await ctx.call("GET", "/healthz")
            # Degraded never blocks traffic: requests still succeed.
            response = await ctx.call("POST", "/v1/estimate", {"kernel": "atax"})
            return degraded, response

    (status, payload), (estimate_status, _) = asyncio.run(run())
    assert status == 200
    assert payload["status"] == "degraded"
    assert payload["pools"]["featurisation"]["state"] == "backoff"
    assert payload["pools"]["featurisation"]["restarts"] == 1
    assert estimate_status == 200


# ---------------------------------------------------------------- failure paths


def test_http_malformed_requests_return_structured_400(served_model):
    async def run():
        async with serve(served_model) as ctx:
            return {
                "bad_json": await ctx.call("POST", "/v1/estimate", None),
                "missing_kernel": await ctx.call("POST", "/v1/estimate", {}),
                "bad_kernel_type": await ctx.call(
                    "POST", "/v1/estimate", {"kernel": 42}
                ),
                "unknown_key": await ctx.call(
                    "POST", "/v1/estimate", {"kernel": "atax", "nope": 1}
                ),
                "loops_not_object": await ctx.call(
                    "POST",
                    "/v1/estimate",
                    {"kernel": "atax", "directives": {"loops": [1, 2]}},
                ),
                "arrays_not_object": await ctx.call(
                    "POST",
                    "/v1/estimate",
                    {"kernel": "atax", "directives": {"arrays": "foo"}},
                ),
                "float_unroll": await ctx.call(
                    "POST",
                    "/v1/estimate",
                    {"kernel": "atax", "directives": {"loops": {"i": {"unroll": 2.5}}}},
                ),
                "bool_budget": await ctx.call(
                    "POST", "/v1/explore", {"kernel": "atax", "budget": True}
                ),
                "oversized_line": await ctx.call(
                    "GET", "/healthz?" + "x" * 70000
                ),
                "bad_unroll": await ctx.call(
                    "POST",
                    "/v1/estimate",
                    {"kernel": "atax", "directives": {"loops": {"i": {"unroll": 0}}}},
                ),
                "typoed_pragma_key": await ctx.call(
                    "POST",
                    "/v1/estimate",
                    {
                        "kernel": "atax",
                        "directives": {"loops": {"i": {"unroll_factor": 2}}},
                    },
                ),
                "typoed_partition_key": await ctx.call(
                    "POST",
                    "/v1/estimate",
                    {"kernel": "atax", "directives": {"arrays": {"A": {"factors": 2}}}},
                ),
                "bad_partition": await ctx.call(
                    "POST",
                    "/v1/estimate",
                    {
                        "kernel": "atax",
                        "directives": {"arrays": {"A": {"kind": "diagonal"}}},
                    },
                ),
                "unknown_kernel": await ctx.call(
                    "POST", "/v1/estimate", {"kernel": "no-such-kernel"}
                ),
                "bad_batch": await ctx.call(
                    "POST", "/v1/estimate_many", {"requests": "not-a-list"}
                ),
                "bad_budget": await ctx.call(
                    "POST", "/v1/explore", {"kernel": "atax", "budget": "lots"}
                ),
            }

    outcomes = asyncio.run(run())
    for name, (status, payload) in outcomes.items():
        assert status == 400, f"{name}: expected 400, got {status} {payload}"
        assert set(payload) == {"error"}, name
        assert payload["error"]["type"] in {"bad_request", "invalid_request"}, name
        assert payload["error"]["message"], name
    assert "unroll" in outcomes["bad_unroll"][1]["error"]["message"]
    assert "unroll_factor" in outcomes["typoed_pragma_key"][1]["error"]["message"]
    assert "no-such-kernel" in outcomes["unknown_kernel"][1]["error"]["message"]


def test_http_routing_errors(served_model):
    async def run():
        async with serve(served_model) as ctx:
            return (
                await ctx.call("GET", "/v1/nope"),
                await ctx.call("GET", "/v1/estimate"),
                await ctx.call("POST", "/healthz"),
            )

    (nf_status, nf), (mna_status, mna), (mna2_status, mna2) = asyncio.run(run())
    assert (nf_status, nf["error"]["type"]) == (404, "not_found")
    assert (mna_status, mna["error"]["type"]) == (405, "method_not_allowed")
    assert (mna2_status, mna2["error"]["type"]) == (405, "method_not_allowed")


def test_http_backpressure_returns_429():
    """A saturated gateway sheds over HTTP as a 429 while the slot-holder wins."""

    async def run():
        stub = ResponseStub()
        gateway = AsyncPowerGateway(stub, max_in_flight=1, threads=1)
        server = GatewayHTTPServer(gateway)
        host, port = await server.start()
        blocked = asyncio.ensure_future(
            request_json(host, port, "POST", "/v1/estimate", {"kernel": "stub"})
        )
        while not stub.calls:  # wait until the first request holds the slot
            await asyncio.sleep(0.01)
        shed_status, shed = await request_json(
            host, port, "POST", "/v1/estimate", {"kernel": "stub"}
        )
        stub.release.set()
        blocked_status, blocked_payload = await blocked
        await server.aclose()
        await gateway.aclose()
        return shed_status, shed, blocked_status, blocked_payload

    shed_status, shed, blocked_status, blocked_payload = asyncio.run(
        asyncio.wait_for(run(), timeout=60)
    )
    assert shed_status == 429
    assert shed["error"]["type"] == "backpressure"
    assert "max_in_flight=1" in shed["error"]["message"]
    assert blocked_status == 200
    assert blocked_payload["power"] == 1.0


def test_http_closed_service_returns_503():
    async def run():
        stub = ResponseStub()
        stub.release.set()
        gateway = AsyncPowerGateway(stub, threads=1)
        server = GatewayHTTPServer(gateway)
        host, port = await server.start()
        stub.close()
        status, payload = await request_json(
            host, port, "POST", "/v1/estimate", {"kernel": "stub"}
        )
        health = await request_json(host, port, "GET", "/healthz")
        await server.aclose()
        await gateway.aclose()
        return status, payload, health

    status, payload, health = asyncio.run(asyncio.wait_for(run(), timeout=60))
    assert status == 503
    assert payload["error"]["type"] == "closed"
    assert health == (503, {"status": "closed"})


def test_gateway_over_already_closed_service_reports_closed():
    """A health check must not advertise a gateway whose service is dead."""

    async def run():
        stub = ResponseStub()
        stub.close()  # closed BEFORE the gateway is constructed
        gateway = AsyncPowerGateway(stub, threads=1)
        assert gateway.closed
        server = GatewayHTTPServer(gateway)
        host, port = await server.start()
        health = await request_json(host, port, "GET", "/healthz")
        await server.aclose()
        await gateway.aclose()
        return health

    health = asyncio.run(asyncio.wait_for(run(), timeout=60))
    assert health == (503, {"status": "closed"})


def test_http_oversized_body_returns_413(served_model):
    async def run():
        async with serve(served_model) as ctx:
            ctx.server.max_body_bytes = 64
            return await ctx.call(
                "POST",
                "/v1/estimate",
                {"kernel": "atax", "directives": {"loops": {"i": {"unroll": 2}}}},
            )

    status, payload = asyncio.run(run())
    assert status == 413
    assert payload["error"]["type"] == "payload_too_large"


def test_http_slow_client_gets_408_and_releases_the_connection():
    async def run():
        stub = ResponseStub()
        stub.release.set()
        gateway = AsyncPowerGateway(stub, threads=1)
        server = GatewayHTTPServer(gateway, read_timeout=0.1)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"POST /v1/estimate HTTP/1.1\r\n")  # never completed
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout=10)
        body = await reader.read()
        writer.close()
        # The server is still healthy for well-behaved clients afterwards.
        health, _ = await request_json(host, port, "GET", "/healthz")
        await server.aclose()
        await gateway.aclose()
        return status_line.decode(), body.decode(), health

    status_line, body, health = asyncio.run(asyncio.wait_for(run(), timeout=60))
    assert "408" in status_line
    assert '"timeout"' in body
    assert health == 200


def test_http_oversized_batch_is_unretryable_400():
    """A batch that can never fit is a client error, not backpressure."""

    async def run():
        stub = ResponseStub()
        stub.release.set()
        gateway = AsyncPowerGateway(stub, max_in_flight=2, threads=1)
        server = GatewayHTTPServer(gateway)
        host, port = await server.start()
        status, payload = await request_json(
            host,
            port,
            "POST",
            "/v1/estimate_many",
            {"requests": [{"kernel": "stub"}] * 3},
        )
        await server.aclose()
        await gateway.aclose()
        return status, payload

    status, payload = asyncio.run(asyncio.wait_for(run(), timeout=60))
    assert status == 400
    assert payload["error"]["type"] == "invalid_request"
    assert "split the batch" in payload["error"]["message"]


def test_http_internal_fault_returns_structured_500():
    async def run():
        # The plain stub answers estimate() with an EstimateRequest, which the
        # response serialiser rejects — an internal fault, not a client error.
        stub = StubService()
        stub.release.set()
        gateway = AsyncPowerGateway(stub, threads=1)
        server = GatewayHTTPServer(gateway)
        host, port = await server.start()
        status, payload = await request_json(
            host, port, "POST", "/v1/estimate", {"kernel": "stub"}
        )
        await server.aclose()
        await gateway.aclose()
        return status, payload

    status, payload = asyncio.run(asyncio.wait_for(run(), timeout=60))
    assert status == 500
    assert payload["error"]["type"] == "internal"
    assert payload["error"]["message"]
