"""Gateway tests: async determinism, admission control, shutdown propagation.

The acceptance invariants of the async front end:

* ``AsyncPowerGateway.estimate_many`` results are bitwise-identical to direct
  :class:`~repro.serve.service.PowerEstimationService` calls;
* a 1000-concurrent-request sweep completes without deadlock, with coalescing
  observable in ``runtime_stats``;
* over-limit submissions fast-fail with the typed backpressure error and
  never deadlock the batcher;
* a service closed mid-request drains in-flight calls and fails new ones
  with the typed closed error.

The failure-path tests run against :class:`StubService` — a hand-rolled
service double whose calls block on an event — so saturation and mid-request
shutdown are driven deterministically instead of by racing the real model.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.flow.dataset_gen import DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime import RuntimeConfig
from repro.runtime.gateway import (
    AsyncPowerGateway,
    GatewayBackpressureError,
    GatewayClosedError,
)
from repro.serve import EstimateRequest, PowerEstimationService

SWEEP_REQUESTS = 1000


@pytest.fixture(scope="module")
def served_model(small_dataset):
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    return model


@pytest.fixture(scope="module")
def sample_requests(small_dataset):
    """Pre-featurised requests: gateway tests exercise serving, not HLS."""
    return [EstimateRequest.from_sample(s) for s in small_dataset.samples]


def build_service(model, **runtime_kwargs) -> PowerEstimationService:
    runtime = RuntimeConfig(**runtime_kwargs) if runtime_kwargs else None
    return PowerEstimationService(model, generator=DatasetGenerator(), runtime=runtime)


class StubService:
    """Deterministic service double: every call blocks until released."""

    def __init__(self) -> None:
        self.runtime = RuntimeConfig(gateway_max_in_flight=4, gateway_threads=2)
        self.closed = False
        self.release = threading.Event()
        self.calls: list = []
        self._hooks: list = []

    def add_close_hook(self, hook) -> None:
        self._hooks.append(hook)

    def remove_close_hook(self, hook) -> None:
        if hook in self._hooks:
            self._hooks.remove(hook)

    def close(self) -> None:
        self.closed = True
        hooks, self._hooks = self._hooks, []
        for hook in hooks:
            hook()

    def _serve(self, tag, payload):
        self.calls.append(tag)
        if not self.release.wait(timeout=30):
            raise TimeoutError("StubService was never released")
        return payload

    def estimate(self, request):
        return self._serve("estimate", request)

    def estimate_many(self, requests):
        return self._serve("estimate_many", list(requests))

    def explore(self, kernel, budget=None, **kwargs):
        return self._serve("explore", (kernel, budget))


def test_runtime_config_gateway_knobs():
    with pytest.raises(ValueError):
        RuntimeConfig(gateway_max_in_flight=0)
    with pytest.raises(ValueError):
        RuntimeConfig(gateway_threads=0)
    defaults = RuntimeConfig()
    assert defaults.gateway_max_in_flight >= 1
    assert defaults.gateway_threads >= 1


def test_gateway_estimate_many_is_bitwise_identical(served_model, sample_requests):
    """Acceptance: gateway batches return the direct path's exact floats."""
    direct = build_service(served_model).estimate_many(sample_requests)

    async def run():
        async with AsyncPowerGateway(build_service(served_model)) as gateway:
            return await gateway.estimate_many(sample_requests)

    via_gateway = asyncio.run(run())
    assert [r.power for r in via_gateway] == [r.power for r in direct]
    assert [r.directives for r in via_gateway] == [r.directives for r in direct]
    assert [r.model_fingerprint for r in via_gateway] == [
        r.model_fingerprint for r in direct
    ]


@pytest.mark.slow
def test_gateway_thousand_concurrent_estimates(served_model, sample_requests):
    """Acceptance: 1000 concurrent singles complete, coalesced, undeadlocked."""
    direct = build_service(served_model).estimate_many(sample_requests)
    # Keyed by (kernel, directives): every kernel has e.g. a "baseline" point.
    expected = {
        (request.kernel, request.directives_key): response.power
        for request, response in zip(sample_requests, direct)
    }
    requests = [sample_requests[i % len(sample_requests)] for i in range(SWEEP_REQUESTS)]

    async def run():
        service = build_service(
            served_model, coalesce_window_ms=25.0, coalesce_max_batch=16
        )
        async with AsyncPowerGateway(
            service, max_in_flight=2 * SWEEP_REQUESTS, threads=32
        ) as gateway:
            responses = await asyncio.wait_for(
                asyncio.gather(*(gateway.estimate(r) for r in requests)),
                timeout=300,
            )
            stats = gateway.runtime_stats()
        service.close()
        return responses, stats

    responses, stats = asyncio.run(run())
    assert len(responses) == SWEEP_REQUESTS
    assert np.allclose(
        [r.power for r in responses],
        [expected[(r.kernel, r.directives)] for r in responses],
        atol=1e-8,
    )
    coalescer = stats["coalescer"]
    assert coalescer["items"] == SWEEP_REQUESTS
    # Coalescing is observable: far fewer flushes than items, real batches.
    assert coalescer["batches"] < SWEEP_REQUESTS
    assert coalescer["largest_batch"] > 1
    gateway_stats = stats["gateway"]
    assert gateway_stats["submitted"] == SWEEP_REQUESTS
    assert gateway_stats["completed"] == SWEEP_REQUESTS
    assert gateway_stats["in_flight"] == 0
    assert gateway_stats["peak_in_flight"] > 1


def test_gateway_explore_matches_direct(served_model):
    direct_report = build_service(served_model).explore("atax", budget=0.4)

    async def run():
        async with AsyncPowerGateway(build_service(served_model)) as gateway:
            return await gateway.explore("atax", budget=0.4)

    report = asyncio.run(run())
    assert report.adrs == direct_report.adrs
    assert report.num_candidates == direct_report.num_candidates
    assert [d.directives for d in report.frontier] == [
        d.directives for d in direct_report.frontier
    ]


def test_backpressure_fast_fails_without_deadlock():
    async def run():
        service = StubService()
        gateway = AsyncPowerGateway(service, max_in_flight=2, threads=2)
        first = asyncio.ensure_future(gateway.estimate("a"))
        second = asyncio.ensure_future(gateway.estimate("b"))
        await asyncio.sleep(0)  # let both submissions claim their slots

        with pytest.raises(GatewayBackpressureError) as excinfo:
            await gateway.estimate("c")
        assert excinfo.value.in_flight == 2
        assert excinfo.value.max_in_flight == 2
        assert excinfo.value.cost == 1
        assert gateway.stats.rejected == 1

        # An over-limit batch is shed by its full cost, not per item.
        with pytest.raises(GatewayBackpressureError):
            await gateway.estimate_many(["d", "e"])
        # A batch bigger than the gateway's whole capacity could never be
        # admitted; that is a plain ValueError, not retryable backpressure.
        with pytest.raises(ValueError, match="split the batch"):
            await gateway.estimate_many(["d", "e", "f"])

        service.release.set()
        assert await first == "a"
        assert await second == "b"
        # The rejection left no residue: capacity is free again.
        assert await gateway.estimate("g") == "g"
        assert gateway.stats.in_flight == 0
        assert gateway.stats.completed == 3
        await gateway.aclose()

    asyncio.run(asyncio.wait_for(run(), timeout=60))


def test_service_closed_mid_request_drains_and_rejects():
    """In-flight calls survive a service close; new submissions fast-fail."""

    async def run():
        service = StubService()
        gateway = AsyncPowerGateway(service, threads=2)
        inflight = asyncio.ensure_future(gateway.estimate("inflight"))
        await asyncio.sleep(0)

        await asyncio.get_running_loop().run_in_executor(None, service.close)
        assert gateway.closed

        with pytest.raises(GatewayClosedError):
            await gateway.estimate("late")
        with pytest.raises(GatewayClosedError):
            await gateway.estimate_many(["late"])

        service.release.set()
        assert await inflight == "inflight"
        await gateway.aclose()

    asyncio.run(asyncio.wait_for(run(), timeout=60))


def test_real_service_close_propagates_to_gateway(served_model, sample_requests):
    async def run():
        service = build_service(served_model)
        gateway = AsyncPowerGateway(service)
        assert (await gateway.estimate(sample_requests[0])).kernel == "atax"
        service.close()
        with pytest.raises(GatewayClosedError):
            await gateway.estimate(sample_requests[0])
        await gateway.aclose()

    asyncio.run(run())


def test_aclose_is_idempotent_and_closes_service():
    async def run():
        service = StubService()
        service.release.set()
        gateway = AsyncPowerGateway(service)
        assert await gateway.estimate("x") == "x"
        await gateway.aclose(close_service=True)
        await gateway.aclose()
        assert service.closed
        # The gateway deregistered itself: a long-lived service must not keep
        # dead front ends reachable through its hook list.
        assert service._hooks == []
        with pytest.raises(GatewayClosedError):
            await gateway.estimate("y")

    asyncio.run(asyncio.wait_for(run(), timeout=60))


def test_cancelled_caller_does_not_corrupt_accounting():
    """A caller timing out must not leak its admission slot."""

    async def run():
        service = StubService()
        gateway = AsyncPowerGateway(service, max_in_flight=2, threads=1)
        blocked = asyncio.ensure_future(gateway.estimate("slow"))
        await asyncio.sleep(0)
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(asyncio.shield(blocked), timeout=0.05)
        # The service call is still running on its thread; the slot is held
        # until it completes, then released exactly once.
        service.release.set()
        assert await blocked == "slow"
        assert gateway.stats.in_flight == 0
        assert gateway.stats.completed == 1
        assert await gateway.estimate("after") == "after"
        await gateway.aclose()

    asyncio.run(asyncio.wait_for(run(), timeout=60))
