"""Tests for the trainer and the k-fold x seeds ensemble."""

import numpy as np
import pytest

from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig, EnsembleRegressor
from repro.gnn.hecgnn import HECGNN
from repro.gnn.trainer import Trainer, TrainingConfig


def test_training_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(epochs=0)
    with pytest.raises(ValueError):
        TrainingConfig(target="area")
    paper = TrainingConfig.paper("dynamic")
    assert paper.epochs == 2400
    assert TrainingConfig.paper("total").epochs == 1200


def test_trainer_reduces_loss_and_tracks_history(random_sample_factory):
    samples = random_sample_factory(30, seed=1)
    model = HECGNN(6, 4, 5, GNNConfig(hidden_dim=16, num_layers=2, seed=0))
    trainer = Trainer(
        TrainingConfig(epochs=60, batch_size=8, learning_rate=3e-3, target="dynamic", seed=0)
    )
    history = trainer.fit(model, samples)
    assert len(history.train_loss) <= 60
    assert history.train_loss[-1] < history.train_loss[0]
    assert history.best_epoch >= 0
    error = trainer.evaluate(model, samples)
    assert error < 60.0


def test_trainer_uses_explicit_validation_set(random_sample_factory):
    samples = random_sample_factory(20, seed=2)
    validation = random_sample_factory(6, seed=3)
    model = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1))
    trainer = Trainer(TrainingConfig(epochs=5, batch_size=8, target="dynamic"))
    history = trainer.fit(model, samples, validation_samples=validation)
    assert len(history.validation_error) == 5


def test_trainer_early_stopping(random_sample_factory):
    samples = random_sample_factory(20, seed=4)
    model = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1))
    trainer = Trainer(
        TrainingConfig(epochs=100, batch_size=8, target="dynamic", patience=3, seed=0)
    )
    history = trainer.fit(model, samples)
    assert len(history.train_loss) < 100


def test_trainer_rejects_empty_input(random_sample_factory):
    trainer = Trainer(TrainingConfig(epochs=1))
    model = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1))
    with pytest.raises(ValueError):
        trainer.fit(model, [])
    with pytest.raises(ValueError):
        trainer.evaluate(model, [])


def test_ensemble_config_validation():
    with pytest.raises(ValueError):
        EnsembleConfig(folds=1)
    with pytest.raises(ValueError):
        EnsembleConfig(seeds=())
    assert EnsembleConfig.paper().num_members == 30
    assert EnsembleConfig(folds=3, seeds=(0, 1)).num_members == 6


def test_ensemble_trains_members_and_averages(random_sample_factory):
    samples = random_sample_factory(24, seed=5)
    ensemble = EnsembleRegressor(
        model_factory=lambda config: HECGNN(6, 4, 5, config),
        model_config=GNNConfig(hidden_dim=8, num_layers=1, dropout=0.0),
        training_config=TrainingConfig(epochs=15, batch_size=8, learning_rate=3e-3, target="dynamic"),
        ensemble_config=EnsembleConfig(folds=2, seeds=(0,)),
    )
    ensemble.fit(samples)
    assert len(ensemble.members) == 2
    assert len(ensemble.validation_errors()) == 2
    predictions = ensemble.predict(samples[:5])
    assert predictions.shape == (5,)
    member_predictions = np.stack(
        [member.model.predict([s.graph for s in samples[:5]]) for member in ensemble.members]
    )
    assert np.allclose(predictions, member_predictions.mean(axis=0))


def test_ensemble_requires_fit_before_predict(random_sample_factory):
    ensemble = EnsembleRegressor(
        model_factory=lambda config: HECGNN(6, 4, 5, config),
        model_config=GNNConfig(hidden_dim=8, num_layers=1),
        training_config=TrainingConfig(epochs=1),
        ensemble_config=EnsembleConfig(folds=2, seeds=(0,)),
    )
    with pytest.raises(RuntimeError):
        ensemble.predict(random_sample_factory(2))
    with pytest.raises(ValueError):
        ensemble.fit(random_sample_factory(1))
