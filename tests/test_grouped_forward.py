"""PR-9 acceptance suite: grouped one-GEMM forward + graph-axis sharding.

Three contracts under test, all bitwise unless explicitly relaxed:

* **Grouped kernels** — ``grouped_matmul`` / ``scatter_add_grouped`` equal
  the historical per-relation loop bit for bit, at the kernel level and
  through the full ``predict_batch`` path (``REPRO_GROUPED_FORWARD`` toggles
  the model-side path; both backends must agree with the loop exactly).
* **Tolerance tier** — only the explicit ``f32`` accelerator opt-in may
  advertise a non-``None`` ``tolerance``; its predictions stay within the
  advertised ``(rtol, atol)`` of the bitwise reference, and its casts are
  confined to inference forward scopes (training math stays exact f64).
* **Forward segments / graph axis** — the deterministic graph-aligned
  segment decomposition is Markovian (boundary-aligned sub-ranges re-segment
  identically), ``slice_graphs`` reproduces an independent pack of the same
  graphs (including the non-contiguous edge layout of the ``w/o dir.``
  ablation), and the graph-axis-sharded pooled forward — including across a
  real SIGKILL of a forward worker mid-service — is bitwise-identical to
  serial.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.backend import NumpyBackend, OptimizedBackend, get_backend, use_backend
from repro.backend.optimized import F32_TOLERANCE
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.base import (
    GROUPED_ENV_VAR,
    SEGMENT_ENV_VAR,
    GraphBatch,
    segment_boundaries,
)
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig
from repro.graph.hetero_graph import HeteroGraph
from repro.runtime import ForwardPool, RuntimeConfig
from repro.runtime.shm import SharedArrayBundle, attach_array_bundle
from repro.serve import EstimateRequest, PowerEstimationService

from test_serve_service import build_synthetic_samples


@pytest.fixture(scope="module")
def ensemble_model():
    samples = build_synthetic_samples(40, seed=33)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=10, num_layers=2),
            training=TrainingConfig(epochs=3, batch_size=16),
            ensemble=EnsembleConfig(folds=2, seeds=(0, 1)),  # 4 members
        )
    ).fit(samples[:28])
    return model, samples


def _assert_spread(predictions: np.ndarray) -> None:
    """Guard against vacuous comparisons: everything clamped to the 1e-9
    floor would make any two prediction vectors trivially equal."""
    assert np.ptp(predictions) > 1e-6


# ------------------------------------------------------------ grouped kernels


@pytest.mark.parametrize("backend_cls", [NumpyBackend, OptimizedBackend])
def test_grouped_kernels_match_per_relation_loop_bitwise(backend_cls):
    """Kernel-level contract: grouped ops == the per-relation loop, tobytes.

    The layout mirrors what ``GraphBatch.relation_groups`` produces —
    relation-major row blocks delimited by a cumulative offsets vector —
    with one relation deliberately empty (the loop's ``continue`` case).
    """
    rng = np.random.default_rng(7)
    relations, d_in, d_out, edges, nodes = 7, 19, 13, 211, 37
    rel = rng.integers(0, relations, size=edges)
    rel[rel == 3] = 4  # force relation 3 empty
    order = np.argsort(rel, kind="stable")
    counts = np.bincount(rel[order], minlength=relations)
    offsets = np.zeros(relations + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    values = rng.standard_normal((edges, d_in))
    weights = rng.standard_normal((relations, d_in, d_out))
    destinations = np.sort(rng.integers(0, nodes, size=edges))

    backend = backend_cls()
    grouped = backend.grouped_matmul(values, weights, offsets)
    expected = np.empty((edges, d_out))
    for relation in range(relations):
        lo, hi = int(offsets[relation]), int(offsets[relation + 1])
        if lo == hi:
            continue
        expected[lo:hi] = values[lo:hi] @ weights[relation]
    assert grouped.tobytes() == expected.tobytes()

    scattered = backend.scatter_add_grouped(grouped, destinations, offsets, nodes)
    aggregated = None
    for relation in range(relations):
        lo, hi = int(offsets[relation]), int(offsets[relation + 1])
        if lo == hi:
            continue
        summed = backend.scatter_add(grouped[lo:hi], destinations[lo:hi], nodes)
        aggregated = summed if aggregated is None else aggregated + summed
    assert scattered.tobytes() == aggregated.tobytes()

    # Degenerate all-empty layout: zeros, same dtype/shape as the loop's.
    empty = backend.scatter_add_grouped(
        grouped[:0], destinations[:0], np.zeros(relations + 1, dtype=np.int64), nodes
    )
    assert empty.shape == (nodes, d_out)
    assert not empty.any()


@pytest.mark.parametrize("backend_name", ["numpy", "optimized"])
def test_grouped_forward_matches_relation_loop_bitwise(
    backend_name, ensemble_model, monkeypatch
):
    """End-to-end: ``REPRO_GROUPED_FORWARD`` on/off is invisible, tobytes.

    Runs each mode twice (fresh pack + warm second batch) so the memoised
    relation bookkeeping and the optimized backend's identity-keyed operator
    caches are both exercised, and checks the backend's grouped-op counters
    to prove the grouped path genuinely ran rather than silently falling
    back to the loop.
    """
    model, samples = ensemble_model
    queries = samples[28:]
    backend = get_backend(backend_name)

    monkeypatch.setenv(GROUPED_ENV_VAR, "off")
    with use_backend(backend):
        loop = model.predict_batch(queries, batch_size=6)
        loop_again = model.predict_batch(queries, batch_size=6)
    _assert_spread(loop)
    assert loop_again.tobytes() == loop.tobytes()

    before = backend.stats.as_dict()
    monkeypatch.setenv(GROUPED_ENV_VAR, "on")
    with use_backend(backend):
        grouped = model.predict_batch(queries, batch_size=6)
        grouped_again = model.predict_batch(queries, batch_size=6)
    after = backend.stats.as_dict()

    assert grouped.tobytes() == loop.tobytes()
    assert grouped_again.tobytes() == loop.tobytes()
    assert after["grouped_matmuls"] > before["grouped_matmuls"]
    assert after["grouped_scatter_adds"] > before["grouped_scatter_adds"]


# ------------------------------------------------------------- tolerance tier


def test_only_the_f32_opt_in_advertises_a_tolerance():
    assert NumpyBackend().tolerance is None
    assert OptimizedBackend().tolerance is None
    f32 = OptimizedBackend(accel="f32")
    assert f32.accelerator == "f32"
    assert f32.tolerance == F32_TOLERANCE


def test_f32_casts_are_confined_to_forward_scopes():
    """Outside a forward scope (i.e. on the training path) the f32 tier is
    inert: kernels stay exact float64, bitwise equal to the reference."""
    rng = np.random.default_rng(11)
    a = rng.standard_normal((23, 17))
    b = rng.standard_normal((17, 9))
    f32 = OptimizedBackend(accel="f32")
    outside = f32.matmul(a, b)
    assert outside.dtype == np.float64
    assert outside.tobytes() == (a @ b).tobytes()
    with f32.forward_scope():
        inside = np.asarray(f32.matmul(a, b), dtype=np.float64)
    assert inside.dtype == np.float64
    assert inside.tobytes() != outside.tobytes()  # the cast really engaged
    rtol, atol = F32_TOLERANCE
    assert np.allclose(inside, outside, rtol=rtol, atol=atol)


def test_f32_predictions_stay_within_the_advertised_tolerance(ensemble_model):
    model, samples = ensemble_model
    queries = samples[28:]
    with use_backend("numpy"):
        reference = model.predict_batch(queries, batch_size=6)
    _assert_spread(reference)
    with use_backend(OptimizedBackend(accel="f32")):
        accel = model.predict_batch(queries, batch_size=6)
    rtol, atol = F32_TOLERANCE
    assert np.allclose(accel, reference, rtol=rtol, atol=atol)
    # The tier is a genuine relaxation: with spread this far above the clamp
    # floor, single-precision round-off is visible — NOT bitwise.
    assert accel.tobytes() != reference.tobytes()


# ------------------------------------------------------- shared array bundles


def test_shared_array_bundle_roundtrip_and_alignment():
    rng = np.random.default_rng(3)
    arrays = {
        "node_features": rng.standard_normal((21, 5)),
        "edge_index": rng.integers(0, 21, size=(2, 33)).astype(np.int64),
        "edge_types": rng.integers(0, 4, size=33).astype(np.int64),
        "odd_bytes": rng.standard_normal(7),  # 56 bytes: exercises padding
        "flags": rng.integers(0, 2, size=9).astype(np.bool_),
    }
    bundle = SharedArrayBundle.create(arrays)
    try:
        spec = pickle.loads(pickle.dumps(bundle.spec))  # rides in task pickles
        assert spec.fields == bundle.spec.fields
        shm, views = attach_array_bundle(spec)
        try:
            for name, array in arrays.items():
                view = views[name]
                assert view.shape == array.shape
                assert view.dtype == array.dtype
                assert view.tobytes() == array.tobytes()
                assert not view.flags.writeable
                # 16-byte field alignment: BLAS-friendly views, no copies.
                assert view.__array_interface__["data"][0] % 16 == 0
        finally:
            views.clear()
            del view
            shm.close()
    finally:
        bundle.unlink()
        bundle.unlink()  # idempotent owner-side teardown


# ------------------------------------------------------------ forward segments


def test_segment_boundaries_markov_suffix_property():
    """Re-segmenting any boundary-aligned sub-range reproduces exactly the
    interior boundaries of the full batch — the property that lets pooled
    workers hand whole-segment unions through ``slice_graphs`` and still
    replay the serial path's per-segment GEMM shapes bit for bit."""
    rng = np.random.default_rng(17)
    counts = rng.integers(1, 50, size=200)
    target = 120
    bounds = segment_boundaries(counts, target)
    assert bounds[0] == 0 and bounds[-1] == len(counts)
    assert (np.diff(bounds) > 0).all()
    sums = [int(counts[lo:hi].sum()) for lo, hi in zip(bounds[:-1], bounds[1:])]
    assert all(s >= target for s in sums[:-1])  # every closed segment is full
    for i in range(len(bounds) - 1):
        for j in range(i + 1, len(bounds)):
            sub = segment_boundaries(counts[bounds[i] : bounds[j]], target)
            assert (sub + bounds[i] == bounds[i : j + 1]).all()
    # Degenerate targets: 1 node per segment -> one segment per graph;
    # a huge target -> the trivial single segment.
    assert (segment_boundaries(counts, 1) == np.arange(len(counts) + 1)).all()
    assert (segment_boundaries(counts, 10**9) == [0, len(counts)]).all()


@pytest.mark.parametrize("directed", [True, False])
def test_slice_graphs_matches_an_independent_pack(directed):
    """A graph-range slice of the packed batch equals packing just those
    graphs.  ``directed=False`` packs first and symmetrises after — reverse
    edges all land at the tail, so the slice's edge ids are NOT contiguous
    and the fancy-index path (order-preserving) is what's under test."""
    samples = build_synthetic_samples(9, seed=4)
    graphs = [s.graph for s in samples]
    packed = HeteroGraph.pack(graphs)
    if not directed:
        packed = packed.undirected()
    full = GraphBatch.from_graph(packed)
    assert full.slice_graphs(0, full.num_graphs) is full
    for start, stop in ((0, 3), (3, 7), (7, 9), (2, 9)):
        piece = full.slice_graphs(start, stop)
        sub_packed = HeteroGraph.pack(graphs[start:stop])
        if not directed:
            sub_packed = sub_packed.undirected()
        expected = GraphBatch.from_graph(sub_packed)
        assert piece.num_nodes == expected.num_nodes
        assert piece.num_graphs == expected.num_graphs
        assert piece.node_features.data.tobytes() == expected.node_features.data.tobytes()
        assert piece.edge_features.data.tobytes() == expected.edge_features.data.tobytes()
        assert (piece.edge_index == expected.edge_index).all()
        assert (piece.edge_types == expected.edge_types).all()
        assert (piece.batch == expected.batch).all()
        assert piece.metadata.data.tobytes() == expected.metadata.data.tobytes()


def test_small_batches_keep_the_single_segment_forward(monkeypatch):
    """Below the segment size the decomposition is trivial — one segment,
    the batch itself — so existing small packs keep the historical
    whole-pack forward with zero slicing overhead."""
    monkeypatch.delenv(SEGMENT_ENV_VAR, raising=False)
    samples = build_synthetic_samples(6, seed=8)
    batch = GraphBatch.from_graph(HeteroGraph.pack([s.graph for s in samples]))
    assert batch.segment_batches() == (batch,)
    assert list(batch.graph_segments()) == [0, batch.num_graphs]

    monkeypatch.setenv(SEGMENT_ENV_VAR, "20")
    small = GraphBatch.from_graph(HeteroGraph.pack([s.graph for s in samples]))
    segments = small.segment_batches()
    assert len(segments) >= 2
    assert sum(segment.num_graphs for segment in segments) == small.num_graphs
    assert sum(segment.num_nodes for segment in segments) == small.num_nodes


# ------------------------------------------------------ graph-axis pooled path


def test_graph_axis_pooled_ensemble_matches_serial_bitwise(
    ensemble_model, monkeypatch
):
    """The tentpole's second axis: an *ensemble* sharded over the graph axis
    — every worker forwards all members over a union of whole forward
    segments — is bitwise-identical to serial, and the packed batch rides
    through shared memory (no per-task array pickling)."""
    monkeypatch.setenv(SEGMENT_ENV_VAR, "24")
    model, samples = ensemble_model
    queries = samples[28:]
    with use_backend("numpy"):
        reference = model.predict_batch(queries)
    _assert_spread(reference)
    with ForwardPool(model, num_workers=2, shard_axis="graphs") as pool:
        pooled = pool.predict_batch(queries)
        again = pool.predict_batch(queries)
    assert pooled.tobytes() == reference.tobytes()
    assert again.tobytes() == reference.tobytes()
    assert pool.stats.shard_axis == "graphs"
    assert pool.stats.shards == 2 * 2  # two batches, two graph shards each
    assert pool.stats.shared_batch_bytes > 0


def test_service_recovers_sigkilled_forward_worker_bitwise(
    ensemble_model, monkeypatch
):
    """Acceptance: a real SIGKILL of a graph-axis forward worker is a blip —
    the supervisor restarts the pool, the batch retries pooled, and the
    recovered predictions are bitwise-identical to serial."""
    monkeypatch.setenv(SEGMENT_ENV_VAR, "24")
    model, samples = ensemble_model
    queries = samples[28:]
    requests = [EstimateRequest.from_sample(s) for s in queries]
    with use_backend("numpy"):
        reference = list(model.predict_batch(queries, batch_size=len(queries)))

    runtime = RuntimeConfig(
        forward_workers=2,
        forward_min_members=2,
        forward_min_graphs=2,
        forward_shard_axis="graphs",
        pool_restart_backoff_s=0.01,
    )
    with PowerEstimationService(
        model, batch_size=len(queries), runtime=runtime
    ) as service:
        first = service.estimate_many(requests)
        assert [r.power for r in first] == reference

        supervisor = service._forward_supervisor
        assert supervisor is not None
        executor = supervisor._pools[supervisor._generation]._pool
        os.kill(next(iter(executor._processes)), signal.SIGKILL)
        # Deterministic: the executor's manager thread watches worker
        # sentinels; wait for it to observe the death so the next batch
        # reliably hits the broken pool instead of racing the detection.
        deadline = time.time() + 30
        while not executor._broken and time.time() < deadline:
            time.sleep(0.01)
        assert executor._broken

        service.cache.clear()
        second = service.estimate_many(requests)
        assert [r.power for r in second] == reference

        snapshot = service.metrics.snapshot()
        assert snapshot["pool_restarts"] == 1
        assert snapshot["pooled_errors"] == 1  # the kill, visible
        stats = service.runtime_stats()["forward_pool"]
        assert stats["shard_axis"] == "graphs"
        assert stats["shared_batch_bytes"] > 0
        assert stats["supervisor"]["restarts"] == 1
        assert stats["supervisor"]["state"] == "ok"
        assert stats["supervisor"]["retried_batches"] == 1
        assert service.health()["status"] == "ok"
