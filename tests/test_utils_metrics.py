"""Tests for repro.utils.metrics."""

import numpy as np
import pytest

from repro.utils.metrics import (
    absolute_percentage_errors,
    mape,
    mean_absolute_error,
    relative_gain,
    root_mean_squared_error,
)


def test_mape_exact_prediction_is_zero():
    assert mape([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0


def test_mape_known_value():
    # 10 % error on each of two samples.
    assert mape([1.0, 2.0], [1.1, 1.8]) == pytest.approx(10.0)


def test_absolute_percentage_errors_per_sample():
    errors = absolute_percentage_errors([2.0, 4.0], [2.2, 3.0])
    assert errors == pytest.approx([10.0, 25.0])


def test_mape_rejects_zero_targets():
    with pytest.raises(ValueError):
        mape([0.0, 1.0], [1.0, 1.0])


def test_mape_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        mape([1.0, 2.0], [1.0])


def test_mape_rejects_empty():
    with pytest.raises(ValueError):
        mape([], [])


def test_mae_and_rmse():
    y_true = np.array([1.0, 2.0, 3.0])
    y_pred = np.array([2.0, 2.0, 5.0])
    assert mean_absolute_error(y_true, y_pred) == pytest.approx(1.0)
    assert root_mean_squared_error(y_true, y_pred) == pytest.approx(np.sqrt(5.0 / 3.0))


def test_relative_gain_matches_paper_usage():
    # Table III style: ADRS 0.1050 -> 0.0981 is a ~6.6 % gain.
    assert relative_gain(0.1050, 0.0981) == pytest.approx(6.571, abs=1e-3)


def test_relative_gain_rejects_zero_baseline():
    with pytest.raises(ValueError):
        relative_gain(0.0, 1.0)
