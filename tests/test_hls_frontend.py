"""Tests for the HLS front end (kernel lowering, unrolling)."""


from repro.hls.frontend import HLSFrontend, _largest_divisor_at_most, lower_kernel
from repro.hls.pragmas import DesignDirectives, LoopPragmas
from repro.ir.instructions import Opcode
from repro.ir.validation import validate_function
from repro.kernels.polybench import polybench_kernel


def count_opcode(function, opcode):
    return sum(1 for instr in function.instructions if instr.opcode == opcode)


def test_lowering_produces_valid_ir(gemm_kernel):
    design = lower_kernel(gemm_kernel)
    validate_function(design.function)
    assert design.kernel.name == "gemm"
    assert {arg.name for arg in design.function.args} == {"A", "B", "C"}


def test_lowering_respects_loop_structure(gemm_kernel):
    design = lower_kernel(gemm_kernel)
    loops = design.function.loops
    assert [loop.name for loop in loops] == ["i0", "j0", "k0"]
    assert all(loop.trip_count == 6 for loop in loops)


def test_unrolling_replicates_body_and_shrinks_trip(gemm_kernel):
    baseline = lower_kernel(gemm_kernel)
    unrolled = lower_kernel(
        gemm_kernel,
        DesignDirectives.from_dicts({"k0": LoopPragmas(unroll_factor=2)}),
    )
    k_baseline = next(lp for lp in baseline.function.loops if lp.name == "k0")
    k_unrolled = next(lp for lp in unrolled.function.loops if lp.name == "k0")
    assert k_unrolled.trip_count == k_baseline.trip_count // 2
    assert count_opcode(unrolled.function, Opcode.FMUL) > count_opcode(
        baseline.function, Opcode.FMUL
    )


def test_full_unroll_removes_loop(atax_kernel):
    directives = DesignDirectives.from_dicts({"j1": LoopPragmas(unroll_factor=6)})
    design = lower_kernel(atax_kernel, directives)
    assert "j1" not in [loop.name for loop in design.function.loops]


def test_nondividing_unroll_factor_is_clamped(gemm_kernel):
    directives = DesignDirectives.from_dicts({"k0": LoopPragmas(unroll_factor=4)})
    design = lower_kernel(gemm_kernel, directives)  # trip 6, factor 4 -> clamp to 3
    k_loop = next(lp for lp in design.function.loops if lp.name == "k0")
    assert k_loop.trip_count == 2  # 6 / 3


def test_largest_divisor_helper():
    assert _largest_divisor_at_most(8, 4) == 4
    assert _largest_divisor_at_most(6, 4) == 3
    assert _largest_divisor_at_most(7, 4) == 1


def test_pipeline_pragma_attached_to_loop(gemm_kernel):
    directives = DesignDirectives.from_dicts({"k0": LoopPragmas(pipeline=True)})
    design = lower_kernel(gemm_kernel, directives)
    k_loop = next(lp for lp in design.function.loops if lp.name == "k0")
    assert k_loop.pragmas.pipeline


def test_lowered_design_records_partitions(gemm_kernel):
    from repro.hls.pragmas import ArrayPartition

    directives = DesignDirectives.from_dicts({}, {"A": ArrayPartition(4)})
    design = lower_kernel(gemm_kernel, directives)
    assert design.array_partitions["A"].factor == 4
    assert design.array_partitions["B"].factor == 1


def test_lowering_all_polybench_kernels_is_valid():
    for name in ("atax", "bicg", "gemm", "gesummv", "2mm", "3mm", "mvt", "syrk", "syr2k"):
        design = HLSFrontend().lower(polybench_kernel(name, 4))
        validate_function(design.function)
        assert design.function.instructions, name
