"""Tests for bit packing and Hamming distances."""

import pytest

from repro.ir.bitpack import hamming_between, hamming_distance, to_bits
from repro.ir.types import FloatType, IntType, PointerType


def test_int_packing_masks_to_width():
    assert to_bits(5, IntType(8)) == 5
    assert to_bits(-1, IntType(8)) == 0xFF
    assert to_bits(256, IntType(8)) == 0


def test_float_packing_is_ieee754():
    assert to_bits(0.0, FloatType(32)) == 0
    assert to_bits(1.0, FloatType(32)) == 0x3F800000
    assert to_bits(1.0, FloatType(64)) == 0x3FF0000000000000


def test_pointer_packing_uses_address_width():
    assert to_bits(3, PointerType(FloatType(32), address_width=16)) == 3


def test_hamming_distance_counts_differing_bits():
    assert hamming_distance(0b1010, 0b1010) == 0
    assert hamming_distance(0b1010, 0b0101) == 4
    assert hamming_distance(0, 0xFF) == 8


def test_hamming_between_values():
    assert hamming_between(0, 255, IntType(8)) == 8
    assert hamming_between(1.0, 1.0, FloatType(32)) == 0
    assert hamming_between(1.0, -1.0, FloatType(32)) == 1  # only the sign bit differs


def test_to_bits_rejects_unsupported_types():
    class FakeType:
        bit_width = 4

    with pytest.raises(TypeError):
        to_bits(1, FakeType())
