"""Tests for :mod:`repro.deploy`: plans, the store, resolution, and the
satellite machinery that rides with the deployment layer (sharded registry
layout, flock'd job claims).

The determinism pins here are the PR's acceptance criteria: the canary split
is a pure function of the design point (identical across processes bitwise),
plan snapshots are immutable (a promote mid-load can never mix artifacts
within one batch), and the claim files make shared-jobs-dir resume exclusive.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.deploy import (
    DEPLOYMENTS_DIRNAME,
    ChallengerSpec,
    DeploymentPlan,
    DeploymentRule,
    DeploymentStore,
    ModelResolver,
    UnknownArtifactError,
    assign_challenger,
)
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.jobs import Job, JobManager, JobStore, new_job_id
from repro.serve.registry import SHARDS_DIRNAME, ModelRegistry


# ------------------------------------------------------------ challenger split


def test_assign_challenger_is_deterministic_and_monotone():
    points = [("atax", f"point{i}") for i in range(64)]
    first = [assign_challenger(k, d, 0.3) for k, d in points]
    second = [assign_challenger(k, d, 0.3) for k, d in points]
    assert first == second
    # Monotone in fraction: raising it only moves designs ONTO the challenger.
    for lo, hi in [(0.1, 0.3), (0.3, 0.7), (0.7, 1.0)]:
        for kernel, directives in points:
            if assign_challenger(kernel, directives, lo):
                assert assign_challenger(kernel, directives, hi)
    # Degenerate fractions short-circuit.
    assert all(assign_challenger(k, d, 1.0) for k, d in points)
    assert not any(assign_challenger(k, d, 0.0) for k, d in points)
    # A 30% slice of 64 hashed points lands somewhere sane (not all/none).
    assert 0 < sum(first) < len(first)


def test_assign_challenger_is_bitwise_identical_across_processes():
    points = [["gemm", f"p{i}", 0.2 + 0.01 * i] for i in range(40)]
    local = [assign_challenger(k, d, f) for k, d, f in points]
    code = (
        "import json, sys\n"
        "from repro.deploy import assign_challenger\n"
        "points = json.loads(sys.argv[1])\n"
        "print(json.dumps([assign_challenger(k, d, f) for k, d, f in points]))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", code, json.dumps(points)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    assert json.loads(output) == local


# -------------------------------------------------------------- plan documents


def plan_doc(**challenger) -> dict:
    rule: dict = {"pattern": "atax*", "model": "pg", "model_version": 1}
    if challenger:
        rule["challenger"] = challenger
    return {"version": 1, "rules": [rule]}


def test_plan_round_trip_and_first_match_wins():
    plan = DeploymentPlan.from_json(
        {
            "version": 1,
            "rules": [
                {"pattern": "atax", "model": "a", "model_version": 2},
                {"pattern": "*", "model": "b", "model_version": 1},
            ],
        },
        seq=7,
    )
    assert plan.seq == 7
    assert plan.match("atax").name == "a"
    assert plan.match("gemm").name == "b"
    assert plan.artifact_refs() == [("a", 2), ("b", 1)]
    restored = DeploymentPlan.from_json(plan.to_json())
    assert restored == plan


def test_plan_validation_rejects_malformed_documents():
    with pytest.raises(ValueError, match="must be a JSON object"):
        DeploymentPlan.from_json([])
    with pytest.raises(ValueError, match="version"):
        DeploymentPlan.from_json({"version": 99, "rules": []})
    with pytest.raises(ValueError, match="pattern"):
        DeploymentPlan.from_json({"rules": [{"model": "pg", "model_version": 1}]})
    with pytest.raises(ValueError, match="model_version must be a positive integer"):
        DeploymentPlan.from_json(
            {"rules": [{"pattern": "*", "model": "pg", "model_version": "latest"}]}
        )
    # Pinned integer versions are the contract: floats and 0 are refused too.
    with pytest.raises(ValueError, match="model_version"):
        DeploymentPlan.from_json(
            {"rules": [{"pattern": "*", "model": "pg", "model_version": 0}]}
        )
    # A canary must say how much traffic it takes.
    with pytest.raises(ValueError, match="fraction is required"):
        DeploymentPlan.from_json(plan_doc(model="pg2", model_version=1))
    with pytest.raises(ValueError, match=r"in \(0, 1\]"):
        DeploymentPlan.from_json(
            plan_doc(model="pg2", model_version=1, fraction=1.5)
        )
    # Shadow mode defaults to the full slice (fraction 1.0).
    plan = DeploymentPlan.from_json(
        plan_doc(model="pg2", model_version=1, shadow=True)
    )
    assert plan.rules[0].challenger == ChallengerSpec(
        name="pg2", version=1, fraction=1.0, shadow=True
    )


def test_promote_and_rollback():
    plan = DeploymentPlan(
        seq=3,
        rules=(
            DeploymentRule(
                pattern="atax",
                name="pg",
                version=1,
                challenger=ChallengerSpec(name="pg", version=2, fraction=0.2),
            ),
            DeploymentRule(pattern="*", name="pg", version=1),
        ),
    )
    promoted = plan.promote()
    assert promoted.rules[0] == DeploymentRule(pattern="atax", name="pg", version=2)
    assert promoted.rules[1] == plan.rules[1]

    rolled = plan.rollback("atax")
    assert rolled.rules[0] == DeploymentRule(pattern="atax", name="pg", version=1)

    with pytest.raises(ValueError, match="no canary to promote"):
        promoted.promote()
    with pytest.raises(ValueError, match="no canary to roll back"):
        plan.rollback("gemm")


# ------------------------------------------------------------------- the store


def test_store_publishes_immutable_seqs_and_revalidates(tmp_path):
    store = DeploymentStore(tmp_path)
    assert store.current() is None

    plan = DeploymentPlan.from_json(plan_doc())
    first = store.put(plan)
    second = store.put(plan)
    assert (first.seq, second.seq) == (1, 2)
    assert store.sequences() == [1, 2]
    # Every published seq stays loadable forever (job pinning depends on it).
    assert store.load(1).seq == 1
    assert store.current().seq == 2
    with pytest.raises(KeyError):
        store.load(9)

    # A second store over the same directory (another replica) sees the same
    # plan, and a publish through it is picked up by the first store's
    # stat-revalidated read path with no push channel.
    sibling = DeploymentStore(tmp_path)
    assert sibling.current().seq == 2
    third = sibling.put(plan)
    assert store.current().seq == third.seq == 3
    assert (tmp_path / DEPLOYMENTS_DIRNAME / "plan-1.json").exists()


# ------------------------------------------------------------------ resolution


def build_model(samples, seed_epochs: int) -> PowerGear:
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=seed_epochs, batch_size=16),
            ensemble=None,
        )
    ).fit(samples)


@pytest.fixture(scope="module")
def two_artifacts(tmp_path_factory):
    """A registry holding pg v1 and pg v2 (distinct weights), plus the models."""
    from test_serve_service import build_synthetic_samples

    samples = build_synthetic_samples(40, seed=11)
    model_v1 = build_model(samples[:28], seed_epochs=4)
    model_v2 = build_model(samples[:28], seed_epochs=8)
    root = tmp_path_factory.mktemp("registry")
    registry = ModelRegistry(root)
    registry.save(model_v1, "pg")
    registry.save(model_v2, "pg")
    return registry, model_v1, model_v2, samples[28:]


def make_resolver(registry, model_v1, cache_entries: int = 4) -> ModelResolver:
    return ModelResolver(
        registry,
        default_model=model_v1,
        default_name="pg",
        default_version=1,
        cache_entries=cache_entries,
    )


def test_resolver_routes_canary_and_shadow(two_artifacts):
    registry, model_v1, model_v2, _ = two_artifacts
    resolver = make_resolver(registry, model_v1)

    # No plan / no matching rule: the ambient default serves, nothing recorded.
    serve, record, rule = resolver.resolve(None, "atax", "p0")
    assert (serve, record, rule) == (resolver.default, None, None)
    plan = DeploymentPlan.from_json(
        {"rules": [{"pattern": "gemm", "model": "pg", "model_version": 1}]}, seq=1
    )
    assert resolver.resolve(plan, "atax", "p0") == (resolver.default, None, None)

    # Canary: selected designs are SERVED by the challenger, champion recorded.
    canary = DeploymentPlan.from_json(
        plan_doc(model="pg", model_version=2, fraction=0.5), seq=2
    )
    picked = [d for d in range(64) if assign_challenger("atax", f"p{d}", 0.5)]
    serve, record, rule = resolver.resolve(canary, "atax", f"p{picked[0]}")
    assert (serve.version, serve.role) == (2, "challenger")
    assert (record.version, record.role) == (1, "champion")
    assert rule == "atax*"
    skipped = next(d for d in range(64) if d not in picked)
    serve, record, _ = resolver.resolve(canary, "atax", f"p{skipped}")
    assert (serve.version, serve.role, record) == (1, "champion", None)

    # Shadow: champion serves, challenger is the recorded arm.
    shadow = DeploymentPlan.from_json(
        plan_doc(model="pg", model_version=2, shadow=True), seq=3
    )
    serve, record, _ = resolver.resolve(shadow, "atax", "p0")
    assert (serve.version, serve.role) == (1, "champion")
    assert (record.version, record.role) == (2, "challenger")

    # The default ref resolves without touching the registry cache; the other
    # version loads once through the bounded cache and round-trips bitwise.
    assert serve.model is model_v1
    loaded = record.model
    assert record.fingerprint == model_v2.fingerprint()
    assert resolver.model_for("pg", 2, "challenger").model is loaded
    described = resolver.describe()
    assert described["plan"] is None  # this resolver's store has no live plan
    assert described["default"] == {
        "model": "pg",
        "version": 1,
        "fingerprint": model_v1.fingerprint(),
    }
    assert described["artifact_cache"]["entries"] == 1


def test_resolver_rejects_unknown_artifacts(two_artifacts):
    registry, model_v1, _, _ = two_artifacts
    resolver = make_resolver(registry, model_v1)
    ghost = DeploymentPlan.from_json(
        {"rules": [{"pattern": "*", "model": "ghost", "model_version": 1}]}, seq=1
    )
    with pytest.raises(UnknownArtifactError, match="ghost v1"):
        resolver.validate(ghost)
    with pytest.raises(UnknownArtifactError, match="pg v9"):
        resolver.model_for("pg", 9, "champion")
    # str() is the bare message (KeyError would wrap it in quotes).
    error = UnknownArtifactError("registry has no artifact ghost v1")
    assert str(error) == "registry has no artifact ghost v1"


def test_resolver_publish_promote_rollback(two_artifacts):
    registry, model_v1, _, _ = two_artifacts
    resolver = ModelResolver(
        registry,
        default_model=model_v1,
        default_name="pg",
        default_version=1,
        store=DeploymentStore(registry.root),
    )
    with pytest.raises(ValueError, match="no deployment plan is installed"):
        resolver.promote()
    published = resolver.publish(
        DeploymentPlan.from_json(plan_doc(model="pg", model_version=2, fraction=0.25))
    )
    assert published.seq == 1
    promoted = resolver.promote()
    assert promoted.seq == 2
    assert promoted.rules[0].version == 2
    assert promoted.rules[0].challenger is None
    # plan_at: 0 pins "no plan" (resumed jobs that started before any plan).
    assert resolver.plan_at(0) is None
    assert resolver.plan_at(None) is None
    assert resolver.plan_at(1).seq == 1
    assert resolver.current_seq() == 2


# -------------------------------------------------------------- sharded layout


def test_sharded_registry_save_load_and_migration(tmp_path, random_sample_factory):
    samples = random_sample_factory(30, seed=5)
    model = build_model(samples, seed_epochs=4)

    # Seed a flat-layout registry, then turn sharding on for the same root.
    flat = ModelRegistry(tmp_path)
    flat.save(model, "legacy")
    assert not flat.sharded

    sharded = ModelRegistry(tmp_path, sharded=True)
    assert sharded.sharded
    # The flat model keeps loading through the migration read path...
    assert sharded.load("legacy", 1).fingerprint() == model.fingerprint()
    # ...its new versions keep landing in its flat directory...
    sharded.save(model, "legacy")
    assert (tmp_path / "legacy" / "v2").is_dir()
    # ...and a NEW model fans out under the two-level sharded layout.
    sharded.save(model, "fresh")
    shard_roots = list((tmp_path / SHARDS_DIRNAME).iterdir())
    assert shard_roots and all(len(p.name) == 2 for p in shard_roots)
    assert sharded.load("fresh", 1).fingerprint() == model.fingerprint()
    assert sorted(sharded.list_models()) == ["fresh", "legacy"]

    # Auto-detection: a plain constructor over a root with _shards/ keeps
    # writing sharded — replicas need no explicit flag to agree on layout.
    detected = ModelRegistry(tmp_path)
    assert detected.sharded
    detected.save(model, "another")
    assert not (tmp_path / "another").exists()
    assert detected.load("another", 1) is not None
    assert sorted(detected.list_models()) == ["another", "fresh", "legacy"]

    # rebuild_index covers both layouts.
    detected.rebuild_index()
    assert sorted(detected.list_models()) == ["another", "fresh", "legacy"]


# ------------------------------------------------------------------ job claims


def test_job_store_claims_are_exclusive_and_survive_release(tmp_path):
    fcntl = pytest.importorskip("fcntl")
    del fcntl
    directory = tmp_path / "jobs"
    mine, theirs = JobStore(directory), JobStore(directory)
    job_id = new_job_id("atax")

    assert mine.claim(job_id)
    assert mine.claim(job_id)  # idempotent per holder
    assert not theirs.claim(job_id)
    mine.release(job_id)
    # The claim FILE stays (unlinking would race a concurrent claimer onto an
    # orphaned inode), but the lock is free for the next holder.
    assert (directory / f"{job_id}.claim").exists()
    assert theirs.claim(job_id)
    theirs.release_all()

    # delete() is the one path that removes the claim file with the job.
    assert mine.claim(job_id)
    mine.delete(job_id)
    assert not (directory / f"{job_id}.claim").exists()
    # Claim files never shadow checkpoints in load_all.
    mine.claim(new_job_id("gemm"))
    assert mine.load_all() == {}


def test_resume_skips_jobs_claimed_by_a_sibling_manager(tmp_path):
    pytest.importorskip("fcntl")
    from test_jobs_manager import StubService

    directory = tmp_path / "jobs"
    seed = JobStore(directory)
    interrupted = Job(
        job_id=new_job_id("atax"), kernel="atax", client="c", params={"budget": 0.3}
    )
    interrupted.state = "running"
    finished = Job(
        job_id=new_job_id("gemm"), kernel="gemm", client="c", params={"budget": 0.3}
    )
    finished.state = "succeeded"
    seed.save(interrupted.job_id, interrupted.to_store())
    seed.save(finished.job_id, finished.to_store())

    # A sibling holds the interrupted job: resume must not even table it.
    owner = JobStore(directory)
    assert owner.claim(interrupted.job_id)
    manager = JobManager(StubService(), store=JobStore(directory), runners=1)
    try:
        assert interrupted.job_id not in {j["job_id"] for j in manager.list()}
        # Terminal checkpoints load unclaimed (read-only history).
        assert finished.job_id in {j["job_id"] for j in manager.list()}
    finally:
        manager.close()

    # Once the owner dies (releases), the next manager resumes it.
    owner.release_all()
    second = JobManager(StubService(), store=JobStore(directory), runners=1)
    try:
        snapshot = second.wait(interrupted.job_id, timeout=20.0)
        assert snapshot["state"] == "succeeded"
        assert snapshot["resumes"] == 1
    finally:
        second.close()


def test_job_checkpoint_round_trips_plan_seq(tmp_path):
    store = JobStore(tmp_path / "jobs")
    job = Job(
        job_id=new_job_id("atax"), kernel="atax", client="c", params={}, plan_seq=4
    )
    store.save(job.job_id, job.to_store())
    revived = Job.from_store(store.load(job.job_id))
    assert revived.plan_seq == 4
    assert revived.snapshot()["plan_seq"] == 4
    # Pre-deployment checkpoints (no key) surface as None, not 0.
    payload = job.to_store()
    del payload["record"]["plan_seq"]
    assert Job.from_store(payload).plan_seq is None
