"""Shared fixtures for the test suite.

Expensive artefacts (HLS results, activity profiles, small generated datasets)
are session-scoped so the suite stays fast while still exercising the real
end-to-end pipeline rather than mocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity.simulator import simulate_activity
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.graph.construction import GraphConstructor
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.dataset import GraphSample
from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.hls.report import run_hls
from repro.kernels.polybench import polybench_kernel


@pytest.fixture(scope="session")
def atax_kernel():
    return polybench_kernel("atax", 6)


@pytest.fixture(scope="session")
def gemm_kernel():
    return polybench_kernel("gemm", 6)


@pytest.fixture(scope="session")
def gemm_baseline_result(gemm_kernel):
    return run_hls(gemm_kernel)


@pytest.fixture(scope="session")
def gemm_unrolled_result(gemm_kernel):
    directives = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=2, pipeline=True)},
        {"A": ArrayPartition(2), "B": ArrayPartition(2)},
    )
    return run_hls(gemm_kernel, directives)


@pytest.fixture(scope="session")
def gemm_activity(gemm_baseline_result):
    return simulate_activity(gemm_baseline_result.design, seed=3)


@pytest.fixture(scope="session")
def gemm_graph(gemm_baseline_result, gemm_activity):
    return GraphConstructor().build(gemm_baseline_result, gemm_activity)


@pytest.fixture(scope="session")
def small_dataset():
    """A small two-kernel dataset generated through the real pipeline."""
    config = DatasetConfig(kernel_size=6, designs_per_kernel=10)
    generator = DatasetGenerator(config)
    return generator.generate(["atax", "gemm"])


@pytest.fixture()
def random_graph_factory():
    """Factory for synthetic HeteroGraphs used by model unit tests."""

    def build(
        num_nodes: int = 8,
        num_edges: int = 16,
        node_dim: int = 6,
        edge_dim: int = 4,
        meta_dim: int = 5,
        seed: int = 0,
    ) -> HeteroGraph:
        rng = np.random.default_rng(seed)
        return HeteroGraph(
            node_features=rng.random((num_nodes, node_dim)),
            edge_index=np.stack(
                [rng.integers(0, num_nodes, num_edges), rng.integers(0, num_nodes, num_edges)]
            ),
            edge_features=rng.random((num_edges, edge_dim)),
            edge_types=rng.integers(0, 4, num_edges),
            metadata=rng.random(meta_dim),
            node_is_arithmetic=rng.random(num_nodes) > 0.5,
        )

    return build


def pytest_sessionstart(session):
    """Capture structured JSON logs for the CI failure artifact.

    When ``$REPRO_OBS_LOG_DIR`` is set, every ``repro.*`` log record the
    suite provokes (http requests, pool crashes, restarts) is appended to
    ``repro-obs.jsonl`` in that directory — CI uploads it on failure.
    """
    import os

    if not os.environ.get("REPRO_OBS_LOG_DIR"):
        return
    try:
        from repro.obs.logs import configure_json_logging

        configure_json_logging()
    except Exception:  # pragma: no cover - best-effort debugging aid
        pass


def pytest_sessionfinish(session, exitstatus):
    """Dump every live supervisor event timeline on a failed run.

    Only when ``$REPRO_OBS_LOG_DIR`` is set (CI sets it and uploads the
    directory as a failure artifact alongside the structured JSON log): a
    red run then ships the crash/restart/scale sequences of every service
    the failing tests touched, not just their assertion messages.
    """
    import os

    directory = os.environ.get("REPRO_OBS_LOG_DIR")
    if not directory or exitstatus == 0:
        return
    try:
        from pathlib import Path

        from repro.obs.events import dump_event_logs

        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        dump_event_logs(target / "event-timelines.json")
    except Exception:  # pragma: no cover - best-effort debugging aid
        pass


@pytest.fixture()
def random_sample_factory(random_graph_factory):
    """Factory for synthetic GraphSamples whose target depends on the features."""

    def build(count: int = 24, seed: int = 0) -> list[GraphSample]:
        rng = np.random.default_rng(seed)
        samples = []
        for index in range(count):
            power = 0.1 + float(rng.random()) * 0.5
            graph = random_graph_factory(
                num_nodes=int(rng.integers(6, 14)), seed=seed * 1000 + index
            )
            graph = HeteroGraph(
                node_features=graph.node_features,
                edge_index=graph.edge_index,
                edge_features=graph.edge_features * power,
                edge_types=graph.edge_types,
                metadata=graph.metadata * power,
                node_is_arithmetic=graph.node_is_arithmetic,
            )
            samples.append(
                GraphSample(
                    graph=graph,
                    kernel="synthetic",
                    directives=f"point{index}",
                    total_power=power + 0.6,
                    dynamic_power=power,
                    static_power=0.6,
                    latency_cycles=100 + index,
                )
            )
        return samples

    return build
