"""Tests for the versioned model registry (save → load → predict equality)."""

import json

import numpy as np
import pytest

from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig
from repro.serve.registry import (
    MANIFEST_NAME,
    REGISTRY_FORMAT_VERSION,
    ModelRegistry,
    config_from_dict,
    config_to_dict,
    load_artifact_dir,
)


def fitted_model(samples, ensemble: bool = True) -> PowerGear:
    config = PowerGearConfig(
        target="dynamic",
        gnn=GNNConfig(hidden_dim=12, num_layers=2),
        training=TrainingConfig(epochs=6, batch_size=16),
        ensemble=EnsembleConfig(folds=2, seeds=(0, 1)) if ensemble else None,
    )
    return PowerGear(config).fit(samples)


def test_config_round_trip():
    config = PowerGearConfig(
        target="total",
        gnn=GNNConfig(hidden_dim=20, num_layers=2, directed=False),
        training=TrainingConfig(epochs=9, batch_size=8, target="total"),
        ensemble=EnsembleConfig(folds=3, seeds=(0, 2)),
    )
    restored = config_from_dict(json.loads(json.dumps(config_to_dict(config))))
    assert restored == config
    single = config.single_model()
    assert config_from_dict(config_to_dict(single)).ensemble is None


def test_registry_save_load_predict_equality(tmp_path, random_sample_factory):
    samples = random_sample_factory(32, seed=5)
    model = fitted_model(samples[:24])
    registry = ModelRegistry(tmp_path / "registry")
    artifact = registry.save(model, "hecgnn", metadata={"kernels": ["synthetic"]})
    assert artifact.version == 1
    assert artifact.manifest["metadata"]["kernels"] == ["synthetic"]

    # Fresh-process semantics: reconstruct from the artifact path alone.
    loaded = load_artifact_dir(artifact.path)
    test = samples[24:]
    assert np.array_equal(model.predict(test), loaded.predict(test))
    assert np.array_equal(model.predict_batch(test), loaded.predict_batch(test))
    assert loaded.fingerprint() == model.fingerprint()
    assert len(loaded.ensemble.members) == len(model.ensemble.members)
    assert [m.fold for m in loaded.ensemble.members] == [
        m.fold for m in model.ensemble.members
    ]


def test_registry_single_model_round_trip(tmp_path, random_sample_factory):
    samples = random_sample_factory(28, seed=6)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    registry.save(model, "single")
    loaded = registry.load("single")
    assert loaded.ensemble is None
    assert np.array_equal(model.predict(samples[20:]), loaded.predict(samples[20:]))


def test_registry_versioning(tmp_path, random_sample_factory):
    samples = random_sample_factory(28, seed=7)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    first = registry.save(model, "pg")
    second = registry.save(model, "pg")
    assert (first.version, second.version) == (1, 2)
    assert registry.versions("pg") == [1, 2]
    assert registry.latest_version("pg") == 2
    assert registry.list_models() == ["pg"]
    assert np.array_equal(
        registry.load("pg", version=1).predict(samples[20:]),
        registry.load("pg", version=2).predict(samples[20:]),
    )
    with pytest.raises(KeyError):
        registry.load("pg", version=9)
    with pytest.raises(KeyError):
        registry.latest_version("unknown")


def test_registry_rejects_invalid_inputs(tmp_path, random_sample_factory):
    registry = ModelRegistry(tmp_path)
    with pytest.raises(ValueError):
        registry.save(PowerGear(), "unfitted")
    samples = random_sample_factory(28, seed=8)
    model = fitted_model(samples[:20], ensemble=False)
    for bad in ("bad/name", "..", ".", ".hidden", "", "a\\b", "manifest.json"):
        with pytest.raises(ValueError):
            registry.save(model, bad)


def test_registry_recovers_from_crashed_save(tmp_path, random_sample_factory):
    """An orphaned (manifest-less) version dir must not block future saves."""
    samples = random_sample_factory(28, seed=10)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    # Simulate a save that died before writing the manifest.
    orphan = tmp_path / "pg" / "v1"
    orphan.mkdir(parents=True)
    (orphan / "weights.npz").write_bytes(b"partial")

    artifact = registry.save(model, "pg")
    assert artifact.version == 2  # the orphaned v1 slot is never reused
    assert registry.versions("pg") == [2]  # ...and not listed as loadable
    assert np.array_equal(
        model.predict(samples[20:]), registry.load("pg").predict(samples[20:])
    )


def test_registry_index_is_written_and_answers_listing(tmp_path, random_sample_factory):
    """Saves maintain the root manifest index; listings answer from it."""
    samples = random_sample_factory(28, seed=12)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    registry.save(model, "pg")
    registry.save(model, "pg")
    registry.save(model, "other")

    index_path = tmp_path / MANIFEST_NAME
    assert index_path.is_file()
    payload = json.loads(index_path.read_text())
    assert payload["models"]["pg"]["versions"] == [1, 2]
    assert payload["models"]["other"]["versions"] == [1]

    # The index, not a scan, answers version queries while the model dir is
    # unchanged: doctor the recorded versions (keeping the recorded mtime) and
    # the doctored view is what comes back.
    payload["models"]["pg"]["versions"] = [1]
    index_path.write_text(json.dumps(payload))
    assert registry.versions("pg") == [1]

    # Any out-of-band change bumps the dir mtime: detected, rescanned, healed.
    import shutil

    shutil.copytree(tmp_path / "pg" / "v2", tmp_path / "pg" / "v7")
    assert registry.versions("pg") == [1, 2, 7]
    healed = json.loads(index_path.read_text())
    assert healed["models"]["pg"]["versions"] == [1, 2, 7]


def test_registry_index_rebuilds_on_miss(tmp_path, random_sample_factory):
    """A deleted or corrupt index falls back to the scan and is rebuilt."""
    samples = random_sample_factory(28, seed=13)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    registry.save(model, "pg")
    index_path = tmp_path / MANIFEST_NAME

    index_path.unlink()
    assert registry.versions("pg") == [1]  # scan fallback
    assert index_path.is_file()  # ...and the index came back

    index_path.write_text("{not json")
    assert registry.list_models() == ["pg"]
    assert json.loads(index_path.read_text())["models"]["pg"]["versions"] == [1]

    # A fresh registry object over the same root sees the same index.
    assert ModelRegistry(tmp_path).latest_version("pg") == 1


def test_registry_index_detects_stale_entries(tmp_path, random_sample_factory):
    """Indexed versions whose artifacts vanished are re-scanned, not served."""
    import shutil

    samples = random_sample_factory(28, seed=14)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    registry.save(model, "pg")
    registry.save(model, "pg")
    shutil.rmtree(tmp_path / "pg" / "v2")

    assert registry.versions("pg") == [1]
    healed = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert healed["models"]["pg"]["versions"] == [1]
    assert registry.latest_version("pg") == 1


def test_list_models_survives_an_index_missing_a_model(tmp_path, random_sample_factory):
    """A lost index update (concurrent saves) must not hide a saved model."""
    samples = random_sample_factory(28, seed=15)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    registry.save(model, "a")
    registry.save(model, "b")
    (tmp_path / MANIFEST_NAME).write_text(
        json.dumps(
            {
                "format_version": REGISTRY_FORMAT_VERSION,
                "models": {
                    "b": {
                        "versions": [1],
                        "mtime_ns": (tmp_path / "b").stat().st_mtime_ns,
                    }
                },
            }
        )
    )
    assert registry.list_models() == ["a", "b"]
    # ...and discovering the missing name healed the index.
    healed = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert healed["models"]["a"]["versions"] == [1]
    assert healed["models"]["b"]["versions"] == [1]


def test_registry_index_detects_lost_version_update(tmp_path, random_sample_factory):
    """An index recording a version subset must not hide newer versions.

    Simulates the concurrent-save lost update: v2 exists on disk but the last
    index write only knew about v1.  The model dir's mtime no longer matches
    the recorded one, so the entry is distrusted and rescanned.
    """
    samples = random_sample_factory(28, seed=16)
    model = fitted_model(samples[:20], ensemble=False)
    registry = ModelRegistry(tmp_path)
    registry.save(model, "pg")
    index_after_v1 = (tmp_path / MANIFEST_NAME).read_text()
    registry.save(model, "pg")
    (tmp_path / MANIFEST_NAME).write_text(index_after_v1)  # the lost update

    assert registry.versions("pg") == [1, 2]
    assert registry.latest_version("pg") == 2


def test_registry_index_ignores_unknown_names(tmp_path):
    registry = ModelRegistry(tmp_path)
    assert registry.versions("ghost") == []
    assert not (tmp_path / MANIFEST_NAME).exists()  # no write for a pure miss
    assert registry.list_models() == []


def test_registry_integrity_check(tmp_path, random_sample_factory):
    samples = random_sample_factory(28, seed=9)
    model = fitted_model(samples[:20], ensemble=False)
    artifact = ModelRegistry(tmp_path).save(model, "pg")
    manifest_path = artifact.path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["fingerprint"] = "0" * 64
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="integrity"):
        load_artifact_dir(artifact.path)


def test_registry_integrity_covers_config(tmp_path, random_sample_factory):
    """Flipping an ablation switch in the manifest must fail the fingerprint.

    Ablation flags (e.g. ``directed``) change predictions without changing any
    weight shape, so the fingerprint has to cover the configuration too.
    """
    samples = random_sample_factory(28, seed=11)
    model = fitted_model(samples[:20], ensemble=False)
    artifact = ModelRegistry(tmp_path).save(model, "pg")
    manifest_path = artifact.path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["config"]["gnn"]["directed"] = not manifest["config"]["gnn"]["directed"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="integrity"):
        load_artifact_dir(artifact.path)
