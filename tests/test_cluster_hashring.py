"""Consistent-hash ring unit tests.

The ring is the router's routing table, so the properties under test are the
ones routing correctness rests on: determinism across processes (that's what
lets a test predict which replica owns a kernel), minimal remapping under
membership churn (the point of consistent hashing), and the preference order
being a permutation that starts at the owner (the failover contract).
"""

from __future__ import annotations

import pytest

from repro.cluster.hashring import ConsistentHashRing, stable_hash

KERNELS = [
    "atax", "gemm", "bicg", "mvt", "gesummv", "syrk", "syr2k",
    "k2mm", "k3mm", "doitgen", "jacobi-1d", "seidel-2d",
]


def ring_of(*nodes: str, virtual_nodes: int = 64) -> ConsistentHashRing:
    ring = ConsistentHashRing(virtual_nodes=virtual_nodes)
    for node in nodes:
        ring.add(node)
    return ring


# ------------------------------------------------------------------ stability


def test_stable_hash_is_process_independent():
    """Known-answer test: the exact values matter because every router and
    every test computes the same ring from node names alone (builtin hash()
    would differ per process and give each replica a different ring)."""
    assert stable_hash("atax") == int.from_bytes(
        __import__("hashlib").blake2b(b"atax", digest_size=8).digest(), "big"
    )
    assert stable_hash("atax") != stable_hash("gemm")


def test_lookup_is_deterministic_across_instances():
    first = ring_of("replica-0", "replica-1", "replica-2")
    second = ring_of("replica-2", "replica-0", "replica-1")  # insertion order differs
    for kernel in KERNELS:
        assert first.lookup(kernel) == second.lookup(kernel)
        assert first.preference(kernel) == second.preference(kernel)


# ----------------------------------------------------------------- membership


def test_empty_ring_owns_nothing():
    ring = ConsistentHashRing()
    assert ring.lookup("atax") is None
    assert ring.preference("atax") == []
    assert ring.ownership() == {}
    assert len(ring) == 0


def test_add_remove_idempotent():
    ring = ring_of("a", "b")
    before = [ring.lookup(k) for k in KERNELS]
    ring.add("a")  # no-op
    assert [ring.lookup(k) for k in KERNELS] == before
    ring.remove("missing")  # no-op
    assert [ring.lookup(k) for k in KERNELS] == before
    ring.remove("b")
    ring.remove("b")  # still a no-op
    assert ring.nodes == ["a"]
    assert all(ring.lookup(k) == "a" for k in KERNELS)


def test_single_node_owns_everything():
    ring = ring_of("only")
    assert all(ring.lookup(k) == "only" for k in KERNELS)
    assert ring.preference("atax") == ["only"]
    assert ring.ownership() == {"only": pytest.approx(1.0)}


def test_removal_only_remaps_the_removed_nodes_keys():
    """The consistent-hashing property: ejecting one replica must not move
    any key owned by a surviving replica (their caches stay hot)."""
    ring = ring_of("replica-0", "replica-1", "replica-2")
    keys = [f"kernel-{i}" for i in range(500)]
    before = {key: ring.lookup(key) for key in keys}
    ring.remove("replica-1")
    for key in keys:
        if before[key] != "replica-1":
            assert ring.lookup(key) == before[key]
        else:
            assert ring.lookup(key) != "replica-1"


def test_readding_restores_the_original_assignment():
    """Eject + respawn under the same replica id lands every key back on its
    original owner — affinity survives the failure round-trip."""
    ring = ring_of("replica-0", "replica-1", "replica-2")
    keys = [f"kernel-{i}" for i in range(500)]
    before = {key: ring.lookup(key) for key in keys}
    ring.remove("replica-1")
    ring.add("replica-1")
    assert {key: ring.lookup(key) for key in keys} == before


# ----------------------------------------------------------------- preference


def test_preference_starts_at_owner_and_is_a_permutation():
    ring = ring_of("replica-0", "replica-1", "replica-2", "replica-3")
    for kernel in KERNELS:
        order = ring.preference(kernel)
        assert order[0] == ring.lookup(kernel)
        assert sorted(order) == ring.nodes  # every node exactly once


def test_preference_spreads_backups_across_nodes():
    """Different keys must fail over to different backups — a single
    designated backup would concentrate the whole failover load."""
    ring = ring_of("replica-0", "replica-1", "replica-2", "replica-3")
    backups = {ring.preference(f"kernel-{i}")[1] for i in range(200)}
    assert len(backups) >= 3


# ------------------------------------------------------------------ ownership


def test_ownership_sums_to_one_and_is_roughly_balanced():
    ring = ring_of("replica-0", "replica-1", "replica-2", virtual_nodes=128)
    shares = ring.ownership()
    assert sum(shares.values()) == pytest.approx(1.0)
    for node, share in shares.items():
        assert 0.05 < share < 0.75, (node, share)


def test_key_distribution_tracks_ownership():
    ring = ring_of("replica-0", "replica-1", "replica-2", virtual_nodes=128)
    counts = {node: 0 for node in ring.nodes}
    total = 3000
    for i in range(total):
        counts[ring.lookup(f"kernel-{i}")] += 1
    for node, share in ring.ownership().items():
        assert counts[node] / total == pytest.approx(share, abs=0.08)


def test_snapshot_shape():
    ring = ring_of("a", "b", virtual_nodes=16)
    snapshot = ring.snapshot()
    assert snapshot["nodes"] == ["a", "b"]
    assert snapshot["virtual_nodes"] == 16
    assert snapshot["points"] == 32
    assert set(snapshot["ownership"]) == {"a", "b"}


# ----------------------------------------------------------------- validation


def test_virtual_nodes_validated():
    with pytest.raises(ValueError, match="virtual_nodes"):
        ConsistentHashRing(virtual_nodes=0)


def test_contains_and_len():
    ring = ring_of("a", "b")
    assert "a" in ring and "b" in ring and "c" not in ring
    assert len(ring) == 2
