"""Tests for the numpy autograd engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad, stack_rows


def numerical_gradient(fn, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn()
        flat[index] = original - eps
        lower = fn()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def check_gradients(build_loss, parameters, rtol=1e-4):
    loss = build_loss()
    loss.backward()
    # Snapshot analytic gradients before the numerical probe re-runs build_loss
    # (which zeroes gradients as a real training step would).
    analytic_grads = [
        parameter.grad.copy() if parameter.grad is not None else np.zeros_like(parameter.data)
        for parameter in parameters
    ]
    for parameter, analytic in zip(parameters, analytic_grads):
        numeric = numerical_gradient(lambda: build_loss().item(), parameter)
        assert np.allclose(analytic, numeric, rtol=rtol, atol=1e-6), (
            f"gradient mismatch: {analytic} vs {numeric}"
        )


def test_add_mul_matmul_forward():
    a = Tensor([[1.0, 2.0], [3.0, 4.0]])
    b = Tensor([[1.0, 0.0], [0.0, 1.0]])
    assert np.allclose((a + b).data, [[2.0, 2.0], [3.0, 5.0]])
    assert np.allclose((a * 2.0).data, [[2.0, 4.0], [6.0, 8.0]])
    assert np.allclose((a @ b).data, a.data)


def test_gradients_of_elementwise_ops():
    rng = np.random.default_rng(0)
    x = Tensor(rng.random((3, 2)), requires_grad=True)
    y = Tensor(rng.random((3, 2)), requires_grad=True)

    def loss():
        x.zero_grad()
        y.zero_grad()
        return ((x * y + x - y / 2.0) ** 2).sum()

    check_gradients(loss, [x, y])


def test_gradients_of_matmul_and_relu():
    rng = np.random.default_rng(1)
    w = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    x = Tensor(rng.normal(size=(5, 4)))

    def loss():
        w.zero_grad()
        return (x @ w).relu().sum()

    check_gradients(loss, [w])


def test_gradients_of_mean_abs_and_broadcast_bias():
    rng = np.random.default_rng(2)
    w = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
    b = Tensor(rng.normal(size=(2,)), requires_grad=True)
    x = Tensor(rng.normal(size=(6, 3)))

    def loss():
        w.zero_grad()
        b.zero_grad()
        return ((x @ w) + b).abs().mean()

    check_gradients(loss, [w, b])


def test_gradients_of_gather_and_segment_sum():
    rng = np.random.default_rng(3)
    x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
    index = np.array([0, 2, 2, 4, 1, 0])
    segments = np.array([0, 0, 1, 1, 2, 2])

    def loss():
        x.zero_grad()
        gathered = x.gather_rows(index)
        return gathered.segment_sum(segments, 3).sum()

    check_gradients(loss, [x])


def test_gradients_of_concat_and_reshape():
    rng = np.random.default_rng(4)
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)

    def loss():
        a.zero_grad()
        b.zero_grad()
        return (a.concat(b, axis=1).reshape(-1) ** 2).sum()

    check_gradients(loss, [a, b])


def test_segment_sum_forward_matches_numpy():
    x = Tensor(np.arange(12.0).reshape(6, 2))
    segments = np.array([0, 1, 0, 1, 2, 2])
    out = x.segment_sum(segments, 3)
    expected = np.zeros((3, 2))
    np.add.at(expected, segments, x.data)
    assert np.allclose(out.data, expected)
    with pytest.raises(ValueError):
        x.segment_sum(np.array([0, 1]), 3)


def test_backward_requires_scalar():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(ValueError):
        (x * 2).backward()


def test_no_grad_disables_taping():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = (x * 2).sum()
    assert not y.requires_grad


def test_dropout_training_and_eval_modes():
    rng = np.random.default_rng(0)
    x = Tensor(np.ones((100, 10)), requires_grad=True)
    dropped = x.dropout(0.5, rng, training=True)
    kept_fraction = (dropped.data != 0).mean()
    assert 0.3 < kept_fraction < 0.7
    # Inverted dropout preserves the expectation.
    assert abs(dropped.data.mean() - 1.0) < 0.15
    identity = x.dropout(0.5, rng, training=False)
    assert identity is x
    with pytest.raises(ValueError):
        x.dropout(1.5, rng, training=True)


def test_stack_rows_gradients():
    rows = [Tensor(np.array([1.0, 2.0]), requires_grad=True) for _ in range(3)]
    stacked = stack_rows(rows)
    assert stacked.shape == (3, 2)
    stacked.sum().backward()
    assert all(np.allclose(row.grad, [1.0, 1.0]) for row in rows)
    with pytest.raises(ValueError):
        stack_rows([])


def test_gradient_accumulation_over_shared_nodes():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = x * 3.0
    loss = (y + y).sum()  # y used twice
    loss.backward()
    assert np.allclose(x.grad, [6.0])
