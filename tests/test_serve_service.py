"""Tests for the PowerEstimationService façade."""

import numpy as np
import pytest

from repro.dse.explorer import DesignCandidate, DSEConfig, ParetoExplorer
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.graph.dataset import GraphSample
from repro.graph.hetero_graph import HeteroGraph
from repro.kernels.design_space import baseline_directives
from repro.kernels.polybench import polybench_kernel
from repro.serve import (
    EstimateRequest,
    InferenceCache,
    ModelRegistry,
    PowerEstimationService,
)


def build_synthetic_samples(count: int, seed: int) -> list[GraphSample]:
    """Synthetic samples whose target depends on the features (module-scope safe)."""
    rng = np.random.default_rng(seed)
    samples = []
    for index in range(count):
        power = 0.1 + float(rng.random()) * 0.5
        num_nodes = int(rng.integers(6, 14))
        num_edges = 16
        graph = HeteroGraph(
            node_features=rng.random((num_nodes, 6)),
            edge_index=np.stack(
                [rng.integers(0, num_nodes, num_edges), rng.integers(0, num_nodes, num_edges)]
            ),
            edge_features=rng.random((num_edges, 4)) * power,
            edge_types=rng.integers(0, 4, num_edges),
            metadata=rng.random(5) * power,
            node_is_arithmetic=rng.random(num_nodes) > 0.5,
        )
        samples.append(
            GraphSample(
                graph=graph,
                kernel="synthetic",
                directives=f"point{index}",
                total_power=power + 0.6,
                dynamic_power=power,
                static_power=0.6,
                latency_cycles=100 + index,
            )
        )
    return samples


@pytest.fixture(scope="module")
def synthetic_model():
    samples = build_synthetic_samples(40, seed=11)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=6, batch_size=16),
            ensemble=None,
        )
    ).fit(samples[:28])
    return model, samples


def test_request_validation(random_sample_factory):
    sample = random_sample_factory(1)[0]
    with pytest.raises(ValueError):
        EstimateRequest(kernel="atax")
    request = EstimateRequest.from_sample(sample)
    assert request.kernel == sample.kernel
    assert request.directives_key == sample.directives


def test_estimate_many_matches_predict_and_caches(synthetic_model):
    model, samples = synthetic_model
    test = samples[28:]
    service = PowerEstimationService(model, batch_size=8)
    requests = [EstimateRequest.from_sample(s) for s in test]

    first = service.estimate_many(requests)
    expected = model.predict(test)
    assert np.allclose([r.power for r in first], expected, atol=1e-8)
    assert not any(r.cached_prediction for r in first)

    second = service.estimate_many(requests)
    assert all(r.cached_prediction for r in second)
    assert [r.power for r in second] == [r.power for r in first]
    # Client-supplied samples are never written into the featurisation cache:
    # its addresses belong to the service's own featurisation pipeline.
    assert all(
        service.cache.get_sample(s.kernel, s.directives) is None for s in test
    )
    assert not any(r.cached_features for r in first)
    assert service.metrics.predicted == len(test)
    snapshot = service.metrics.snapshot()
    assert snapshot["designs"] == 2 * len(test)
    assert snapshot["designs_per_second"] > 0
    assert service.estimate_many([]) == []


def test_single_estimate_response_fields(synthetic_model):
    model, samples = synthetic_model
    service = PowerEstimationService(model)
    response = service.estimate(EstimateRequest.from_sample(samples[-1]))
    assert response.target == "dynamic"
    assert response.power > 0
    assert response.latency_ms >= 0
    assert response.model_fingerprint == model.fingerprint()


def test_service_loads_model_from_registry(tmp_path, synthetic_model):
    model, samples = synthetic_model
    registry = ModelRegistry(tmp_path)
    registry.save(model, "pg")
    service = PowerEstimationService(registry=registry, model_name="pg")
    test = samples[28:]
    responses = service.estimate_many([EstimateRequest.from_sample(s) for s in test])
    # The service predicts through the packed batch; equality with the
    # per-sample loop holds to floating-point round-off.
    assert np.allclose([r.power for r in responses], model.predict(test), atol=1e-8)
    with pytest.raises(ValueError):
        PowerEstimationService()


def test_explore_matches_manual_explorer(synthetic_model):
    """Service-side exploration reproduces dse.explorer's trajectory and ADRS."""
    model, samples = synthetic_model
    service = PowerEstimationService(model, batch_size=16)
    candidates = [
        DesignCandidate(
            index=i,
            latency=float(s.latency_cycles),
            true_power=s.dynamic_power,
            config_vector=np.array([float(i)]),
            payload=s,
        )
        for i, s in enumerate(samples)
    ]
    manual = ParetoExplorer(DSEConfig(total_budget=0.4, seed=0)).explore(
        candidates, lambda batch: model.predict([c.payload for c in batch])
    )
    report = service.explore("synthetic", budget=0.4, samples=samples)
    # The service predicts through the packed batch, the manual run through the
    # per-sample loop; the trajectories agree because the sampler only compares
    # prediction *values*, which match to round-off.  Assert the outcome (same
    # number of samples, same ADRS) rather than exact index lists, which could
    # flip on a sub-epsilon tie under a different BLAS.
    assert report.result.num_sampled == manual.num_sampled
    assert np.isclose(report.adrs, manual.adrs, rtol=1e-9, atol=1e-9)
    assert report.num_candidates == len(samples)
    assert len(report.frontier) == len(manual.approximate_pareto_indices)
    for design in report.frontier:
        assert design.predicted_power > 0
        assert design.measured_power > 0
    # Re-exploring is answered from the prediction cache.
    before = service.metrics.predicted
    service.explore("synthetic", budget=0.4, samples=samples)
    assert service.metrics.predicted == before
    # budget and dse_config are mutually exclusive (a config carries its own).
    with pytest.raises(ValueError):
        service.explore(
            "synthetic", budget=0.3, dse_config=DSEConfig(total_budget=0.4), samples=samples
        )
    with_config = service.explore(
        "synthetic", dse_config=DSEConfig(total_budget=0.2), samples=samples
    )
    assert with_config.budget == 0.2


def test_explore_matches_manual_explorer_on_atax(small_dataset):
    """Acceptance: service explore == dse.explorer ADRS on the atax space."""
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    atax = small_dataset.by_kernel("atax").samples
    candidates = [
        DesignCandidate(
            index=i,
            latency=float(s.latency_cycles),
            true_power=s.dynamic_power,
            config_vector=np.asarray(s.extras["config_vector"], dtype=float),
            payload=s,
        )
        for i, s in enumerate(atax)
    ]
    manual = ParetoExplorer(DSEConfig(total_budget=0.4, seed=0)).explore(
        candidates, lambda batch: model.predict([c.payload for c in batch])
    )
    service = PowerEstimationService(model, batch_size=16)
    report = service.explore("atax", budget=0.4, samples=atax)
    assert report.result.num_sampled == manual.num_sampled
    assert np.isclose(report.adrs, manual.adrs, rtol=1e-9, atol=1e-9)


def test_estimate_with_real_featurisation(small_dataset):
    """End to end: kernel + directives in, featurised and predicted power out."""
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    generator = DatasetGenerator(DatasetConfig(kernel_size=6, designs_per_kernel=10))
    service = PowerEstimationService(
        model, generator=generator, cache=InferenceCache(), batch_size=8
    )
    directives = baseline_directives(polybench_kernel("atax", 6))
    request = EstimateRequest(kernel="atax", directives=directives)

    first = service.estimate(request)
    assert not first.cached_features and not first.cached_prediction
    second = service.estimate(request)
    assert second.cached_features and second.cached_prediction
    assert second.power == first.power

    # The featurised design matches the dataset generator's baseline sample,
    # so the service prediction equals predicting that sample directly.
    baseline = next(
        s for s in small_dataset.by_kernel("atax") if s.directives == first.directives
    )
    assert np.isclose(first.power, float(model.predict([baseline])[0]), atol=1e-8)
    assert service.metrics.featurised == 1
