"""Tests for HLS reports, metadata vectors and DFG extraction."""

import numpy as np

from repro.hls.dfg import extract_dfg
from repro.ir.instructions import Opcode


def test_report_fields(gemm_baseline_result):
    report = gemm_baseline_result.report
    assert report.kernel_name == "gemm"
    assert report.latency_cycles > 0
    assert 0 < report.achieved_clock_ns <= report.target_clock_ns * 1.15
    assert report.fsm_states > 0
    assert report.latency_seconds > 0


def test_metadata_vector_shape_and_baseline_ratios(gemm_baseline_result, gemm_unrolled_result):
    baseline = gemm_baseline_result.report
    metadata = baseline.metadata_vector(baseline)
    assert metadata.shape == (10,)
    # Against itself every ratio is exactly 1.
    assert np.allclose(metadata[5:], 1.0)

    unrolled = gemm_unrolled_result.report.metadata_vector(baseline)
    assert unrolled.shape == (10,)
    # The unrolled design uses more LUTs and fewer cycles than the baseline.
    assert unrolled[5] > 1.0
    assert unrolled[8] < 1.0


def test_dfg_nodes_match_instructions(gemm_baseline_result):
    dfg = extract_dfg(gemm_baseline_result.design)
    non_ret = [
        instr
        for instr in gemm_baseline_result.design.function.instructions
        if instr.opcode != Opcode.RET
    ]
    assert dfg.num_nodes == len(non_ret)
    assert dfg.num_edges > 0


def test_dfg_buffers_and_load_annotation(gemm_baseline_result):
    dfg = extract_dfg(gemm_baseline_result.design)
    assert set(dfg.buffers) == {"A", "B", "C"}
    assert all(info.kind == "io" for info in dfg.buffers.values())
    for uid in dfg.nodes_with_opcode(Opcode.LOAD):
        assert dfg.graph.nodes[uid]["buffer"] in dfg.buffers


def test_dfg_edges_follow_def_use(gemm_baseline_result):
    dfg = extract_dfg(gemm_baseline_result.design)
    for src, dst in dfg.graph.edges():
        src_instr = dfg.node_instruction(src)
        dst_instr = dfg.node_instruction(dst)
        assert src_instr in dst_instr.operands


def test_unrolled_dfg_is_larger(gemm_baseline_result, gemm_unrolled_result):
    baseline = extract_dfg(gemm_baseline_result.design)
    unrolled = extract_dfg(gemm_unrolled_result.design)
    assert unrolled.num_nodes > baseline.num_nodes
    assert unrolled.num_edges > baseline.num_edges
