"""Tests for the end-to-end flow: dataset generation, PowerGear API, evaluation."""

import numpy as np
import pytest

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.evaluation import (
    ABLATION_VARIANTS,
    EvaluationConfig,
    LeaveOneOutEvaluator,
    MODEL_BUILDERS,
    VivadoEstimatorAdapter,
)
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig


FAST_TRAINING = TrainingConfig(epochs=25, batch_size=16, learning_rate=3e-3, target="dynamic")
FAST_GNN = GNNConfig(hidden_dim=12, num_layers=2, dropout=0.0)


# --------------------------------------------------------------------------- dataset generation


def test_dataset_generator_labels_and_bookkeeping(small_dataset):
    assert len(small_dataset) == 20  # 10 designs x 2 kernels
    for sample in small_dataset:
        assert sample.total_power == pytest.approx(
            sample.dynamic_power + sample.static_power, rel=1e-6
        )
        assert sample.graph.num_nodes > 0
        assert sample.latency_cycles > 0
        assert sample.vivado_total_power > 0
        assert sample.vivado_flow_seconds > sample.powergear_flow_seconds
        assert "config_vector" in sample.extras


def test_dataset_generator_includes_baseline_point(small_dataset):
    for kernel in small_dataset.kernels():
        subset = small_dataset.by_kernel(kernel)
        assert any(s.is_baseline for s in subset)


def test_dataset_generator_is_reproducible():
    config = DatasetConfig(kernel_size=6, designs_per_kernel=4)
    a = DatasetGenerator(config).generate_kernel("atax")
    b = DatasetGenerator(config).generate_kernel("atax")
    assert [s.directives for s in a] == [s.directives for s in b]
    assert np.allclose(a.targets("dynamic"), b.targets("dynamic"))


def test_dataset_generator_design_points_vary_power(small_dataset):
    for kernel in small_dataset.kernels():
        dynamic = small_dataset.by_kernel(kernel).targets("dynamic")
        assert dynamic.max() / dynamic.min() > 1.3  # pragmas actually change power


# --------------------------------------------------------------------------- PowerGear API


def test_powergear_config_target_propagation():
    config = PowerGearConfig(target="total")
    assert config.training.target == "total"
    assert PowerGearConfig.paper("dynamic").training.epochs == 2400
    single = config.single_model()
    assert single.ensemble is None
    with pytest.raises(ValueError):
        PowerGearConfig(target="area")


def test_powergear_fit_predict_evaluate(small_dataset):
    train, test = small_dataset.leave_one_out("gemm")
    model = PowerGear(
        PowerGearConfig(target="dynamic", gnn=FAST_GNN, training=FAST_TRAINING, ensemble=None)
    )
    model.fit(train.samples)
    predictions = model.predict(test.samples)
    assert predictions.shape == (len(test),)
    assert np.all(predictions > 0)
    error = model.evaluate(test.samples)
    assert np.isfinite(error)


def test_powergear_with_small_ensemble(small_dataset):
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=FAST_GNN,
            training=TrainingConfig(epochs=10, batch_size=16, target="dynamic"),
            ensemble=EnsembleConfig(folds=2, seeds=(0,)),
        )
    )
    model.fit(small_dataset.samples)
    assert model.ensemble is not None
    assert len(model.ensemble.members) == 2
    assert model.predict(small_dataset.samples[:3]).shape == (3,)


def test_powergear_requires_fit(small_dataset):
    model = PowerGear()
    with pytest.raises(RuntimeError):
        model.predict(small_dataset.samples[:1])
    with pytest.raises(ValueError):
        model.fit(small_dataset.samples[:2])


# --------------------------------------------------------------------------- evaluation harness


def test_model_registries_cover_paper_tables():
    assert set(MODEL_BUILDERS) == {
        "powergear",
        "vivado",
        "hlpow",
        "gcn",
        "graphsage",
        "graphconv",
        "gine",
    }
    assert set(ABLATION_VARIANTS) == {
        "w/o opt.",
        "w/o e.f.",
        "w/o dir.",
        "w/o hetr.",
        "w/o md.",
        "sgl.",
        "prop.",
    }


def test_leave_one_out_evaluator_vivado_and_properties(small_dataset):
    config = EvaluationConfig(target="total", gnn=FAST_GNN, training=FAST_TRAINING, ensemble=None)
    evaluator = LeaveOneOutEvaluator(small_dataset, config)
    result = evaluator.evaluate_model("vivado")
    assert set(result.per_kernel_error) == {"atax", "gemm"}
    assert result.average_error > 0
    properties = evaluator.dataset_properties()
    assert properties["atax"]["num_samples"] == 10
    speedups = evaluator.runtime_speedups()
    assert all(value > 1.0 for value in speedups.values())


def test_leave_one_out_evaluator_gnn_variant(small_dataset):
    config = EvaluationConfig(
        target="dynamic", gnn=FAST_GNN, training=FAST_TRAINING, ensemble=None
    )
    evaluator = LeaveOneOutEvaluator(small_dataset, config)
    result = evaluator.evaluate_model("w/o md.", kernels=["gemm"])
    assert "gemm" in result.per_kernel_error
    assert np.isfinite(result.per_kernel_error["gemm"])


def test_leave_one_out_evaluator_unknown_model(small_dataset):
    evaluator = LeaveOneOutEvaluator(small_dataset)
    with pytest.raises(KeyError):
        evaluator.evaluate_model("transformer")
    with pytest.raises(ValueError):
        LeaveOneOutEvaluator(type(small_dataset)())


def test_vivado_adapter_rejects_static_target():
    with pytest.raises(ValueError):
        VivadoEstimatorAdapter("static")
