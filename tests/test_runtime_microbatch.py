"""Tests for the request-coalescing micro-batcher (size/deadline policy)."""

import threading
import time

import pytest

from repro.runtime import MicroBatcher


class RecordingFlush:
    """Flush function that records every batch it serves."""

    def __init__(self, transform=lambda item: item * 2):
        self.batches = []
        self.transform = transform
        self.lock = threading.Lock()

    def __call__(self, items):
        with self.lock:
            self.batches.append(list(items))
        return [self.transform(item) for item in items]


def submit_concurrently(batcher, items):
    """Submit every item from its own thread; return results in item order."""
    results = [None] * len(items)
    errors = []

    def worker(slot, item):
        try:
            results[slot] = batcher.submit(item)
        except BaseException as error:  # noqa: BLE001 - propagated to the test
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(slot, item))
        for slot, item in enumerate(items)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    return results, errors


def test_validates_configuration():
    with pytest.raises(ValueError):
        MicroBatcher(lambda items: items, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(lambda items: items, max_delay=-1.0)


def test_size_triggered_flush_is_deterministic_under_fake_clock():
    """Filling a batch flushes it regardless of the clock (frozen here)."""
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=4, max_delay=1e9, clock=lambda: 100.0)
    results, errors = submit_concurrently(batcher, list(range(8)))
    assert not errors
    assert results == [item * 2 for item in range(8)]
    assert batcher.stats.batches == 2
    assert batcher.stats.size_flushes == 2
    assert batcher.stats.largest_batch == 4
    assert sorted(item for batch in flush.batches for item in batch) == list(range(8))
    assert all(len(batch) == 4 for batch in flush.batches)


def test_single_item_batch_with_max_batch_one():
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=1, max_delay=1e9, clock=lambda: 0.0)
    assert batcher.submit(5) == 10
    assert flush.batches == [[5]]
    assert batcher.stats.size_flushes == 1


def test_deadline_triggered_flush():
    """A lone request flushes once its window expires (real clock, tiny window)."""
    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=64, max_delay=0.01)
    start = time.perf_counter()
    assert batcher.submit(3) == 6
    assert time.perf_counter() - start < 10.0
    assert batcher.stats.deadline_flushes == 1
    assert flush.batches == [[3]]


def test_deadline_honours_injected_clock():
    """The deadline policy is driven by the injected clock, deterministically.

    The clock reads 0.0 when the leader opens its batch (deadline = 5.0) and
    10.0 on every later read, so the very first expiry check observes the
    deadline passed and seals the batch — single-threaded, no real waiting.
    """
    reads = []

    def clock() -> float:
        reads.append(1)
        return 0.0 if len(reads) == 1 else 10.0

    flush = RecordingFlush()
    batcher = MicroBatcher(flush, max_batch=64, max_delay=5.0, clock=clock)
    batcher.poke()  # no waiters: a pure no-op
    assert batcher.submit(7) == 14
    assert batcher.stats.deadline_flushes == 1
    assert batcher.stats.size_flushes == 0
    assert flush.batches == [[7]]


def test_flush_error_propagates_to_every_member():
    def explode(items):
        raise RuntimeError("backend down")

    batcher = MicroBatcher(explode, max_batch=2, max_delay=1e9, clock=lambda: 0.0)
    results, errors = submit_concurrently(batcher, [1, 2])
    assert results == [None, None]
    assert len(errors) == 2
    assert all("backend down" in str(error) for error in errors)


def test_flush_length_mismatch_is_an_error():
    batcher = MicroBatcher(lambda items: [], max_batch=1, max_delay=1e9)
    with pytest.raises(RuntimeError, match="0 results for 1 items"):
        batcher.submit(1)


def test_closed_batcher_rejects_submissions():
    batcher = MicroBatcher(lambda items: items, max_batch=2, max_delay=1e9)
    batcher.close()
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(1)


def test_context_manager_closes():
    with MicroBatcher(lambda items: items, max_batch=2, max_delay=1e9) as batcher:
        pass
    with pytest.raises(RuntimeError):
        batcher.submit(1)


def test_item_error_fails_only_its_own_member():
    """A flush may fail one slot via ItemError without shared fate."""
    from repro.runtime import ItemError

    def flush(items):
        return [
            ItemError(ValueError(f"bad {item}")) if item % 2 else item * 2
            for item in items
        ]

    batcher = MicroBatcher(flush, max_batch=4, max_delay=1e9, clock=lambda: 0.0)
    results, errors = submit_concurrently(batcher, [0, 1, 2, 3])
    assert results == [0, None, 4, None]
    assert sorted(str(error) for error in errors) == ["bad 1", "bad 3"]


def test_close_waits_for_inflight_flushes():
    """After close() returns, no flush is still running."""
    entered = threading.Event()
    release = threading.Event()
    finished = []

    def flush(items):
        entered.set()
        release.wait(timeout=30)
        finished.append(list(items))
        return list(items)

    batcher = MicroBatcher(flush, max_batch=1, max_delay=1e9)
    thread = threading.Thread(target=lambda: batcher.submit(1))
    thread.start()
    assert entered.wait(timeout=30)  # the flush is now in flight

    closer_done = threading.Event()

    def close():
        batcher.close()
        closer_done.set()

    closer = threading.Thread(target=close)
    closer.start()
    time.sleep(0.05)
    assert not closer_done.is_set()  # close() is blocked on the flush
    release.set()
    closer.join(timeout=30)
    thread.join(timeout=30)
    assert closer_done.is_set()
    assert finished == [[1]]


def test_flushes_are_serialised():
    """Two batches flushing around the same time never interleave flush calls."""
    active = []
    overlaps = []
    lock = threading.Lock()

    def flush(items):
        with lock:
            if active:
                overlaps.append(list(items))
            active.append(1)
        time.sleep(0.005)
        with lock:
            active.pop()
        return list(items)

    batcher = MicroBatcher(flush, max_batch=2, max_delay=1e9, clock=lambda: 0.0)
    results, errors = submit_concurrently(batcher, list(range(8)))
    assert not errors
    assert sorted(results) == list(range(8))
    assert not overlaps
