"""Tests for :mod:`repro.jobs`: admission, fairness, lifecycle, resume.

The manager needs only ``open_exploration`` from the service, so these tests
drive it with a stub built on the *real* incremental explorer — which keeps
the bitwise-resume property honest (the stub cannot fake determinism the
explorer doesn't have) while staying fast and fully controllable: the stub
can block its sessions mid-step, which is how the tests freeze jobs
in-flight to exercise quotas, cancellation and shutdown deterministically.
"""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.dse.explorer import DesignCandidate, DSEConfig, ParetoExplorer
from repro.jobs import (
    Job,
    JobManager,
    JobQuotaError,
    JobStore,
    JobTableFullError,
    UnknownJobError,
    kernel_of_job_id,
    new_job_id,
)


def make_candidates(count: int = 30, seed: int = 0) -> list[DesignCandidate]:
    rng = np.random.default_rng(seed)
    candidates = []
    for index in range(count):
        config = rng.random(4)
        candidates.append(
            DesignCandidate(
                index=index,
                latency=100.0 + 900.0 * config[0],
                true_power=float(0.05 + 0.25 * (1.2 - config[0]) + 0.02 * config[1]),
                config_vector=config,
            )
        )
    return candidates


class StubSession:
    def __init__(self, stub, kernel, config, state):
        self.stub = stub
        self.kernel = kernel
        self.config = config
        self.explorer = ParetoExplorer(config)
        self.state = (
            state if state is not None else self.explorer.start(stub.candidates)
        )

    @property
    def done(self):
        return self.state.done

    def step(self):
        self.stub.stepped += 1
        if self.stub.pause_after is not None and self.stub.stepped > self.stub.pause_after:
            self.stub.gate.wait()
        return self.explorer.step(
            self.stub.candidates,
            self.state,
            lambda batch: np.array([c.true_power for c in batch]),
        )

    def report(self):
        result = self.explorer.finalize(self.stub.candidates, self.state)
        frontier = [
            SimpleNamespace(
                kernel=self.kernel,
                directives={"index": index},
                latency_cycles=self.stub.candidates[index].latency,
                predicted_power=result.predictions[index],
                measured_power=None,
            )
            for index in result.approximate_pareto_indices
        ]
        return SimpleNamespace(
            kernel=self.kernel,
            budget=self.config.total_budget,
            adrs=result.adrs,
            num_candidates=len(self.stub.candidates),
            result=result,
            elapsed_seconds=0.0,
            frontier=frontier,
        )


class StubService:
    """The minimal surface the manager uses, with a freezable session."""

    def __init__(self, pause_after=None):
        self.candidates = make_candidates()
        self.opened: list[str] = []
        self.stepped = 0
        #: After this many total steps, sessions block on ``gate``.
        self.pause_after = pause_after
        self.gate = threading.Event()

    def open_exploration(self, kernel, budget=None, *, dse_config=None, state=None):
        self.opened.append(kernel)
        config = dse_config or DSEConfig(total_budget=budget or 0.4, seed=0)
        return StubSession(self, kernel, config, state)


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


# ------------------------------------------------------------------ job basics


def test_job_id_embeds_kernel():
    job_id = new_job_id("atax")
    assert kernel_of_job_id(job_id) == "atax"
    # Kernels with dashes survive the round trip (rpartition on the nonce).
    assert kernel_of_job_id(new_job_id("my-kernel")) == "my-kernel"


def test_job_store_round_trip(tmp_path):
    store = JobStore(tmp_path / "jobs")
    job = Job(job_id=new_job_id("atax"), kernel="atax", client="c", params={})
    job.updates.append({"seq": 1, "event": "iteration"})
    store.save(job.job_id, job.to_store())
    revived = Job.from_store(store.load(job.job_id))
    assert revived.job_id == job.job_id
    assert revived.updates == job.updates
    assert store.load("missing") is None
    store.delete(job.job_id)
    assert store.load_all() == {}


# ------------------------------------------------------------------- lifecycle


def test_submit_runs_to_success_with_streamed_updates():
    manager = JobManager(StubService(), runners=1)
    try:
        snapshot = manager.submit("atax", budget=0.4, client="alice")
        assert snapshot["state"] == "queued"
        assert snapshot["kernel"] == "atax"

        # Updates are observable before the job completes: long-poll for the
        # first iteration and check the job is not yet terminal *in the same
        # payload* (state rides along with the updates).
        first = manager.wait_updates(snapshot["job_id"], since=0, timeout=10.0)
        assert first["updates"], "no update arrived"
        assert first["updates"][0]["seq"] == 1
        assert first["updates"][0]["event"] == "iteration"

        final = manager.wait(snapshot["job_id"], timeout=10.0)
        assert final["state"] == "succeeded"
        assert final["result"]["adrs"] >= 0.0
        assert final["result"]["frontier"]

        # The update log is seq-contiguous and ends with the `done` marker.
        log = manager.updates(snapshot["job_id"])["updates"]
        assert [u["seq"] for u in log] == list(range(1, len(log) + 1))
        assert log[-1]["event"] == "done"
        assert log[-1]["state"] == "succeeded"
        assert all(u["event"] == "iteration" for u in log[:-1])
    finally:
        manager.close()


def test_updates_since_filters_and_next_since_advances():
    manager = JobManager(StubService(), runners=1)
    try:
        job_id = manager.submit("atax", budget=0.4)["job_id"]
        manager.wait(job_id, timeout=10.0)
        everything = manager.updates(job_id)
        tail = manager.updates(job_id, since=everything["next_since"] - 1)
        assert len(tail["updates"]) == 1
        assert tail["updates"][0]["event"] == "done"
        empty = manager.updates(job_id, since=everything["next_since"])
        assert empty["updates"] == []
    finally:
        manager.close()


def test_failed_job_lands_as_failed_with_error():
    class Exploding(StubService):
        def open_exploration(self, *args, **kwargs):
            raise RuntimeError("no such kernel")

    manager = JobManager(Exploding(), runners=1)
    try:
        job_id = manager.submit("nope", budget=0.4)["job_id"]
        final = manager.wait(job_id, timeout=10.0)
        assert final["state"] == "failed"
        assert "no such kernel" in final["error"]
        log = manager.updates(job_id)["updates"]
        assert log[-1]["event"] == "done" and log[-1]["state"] == "failed"
    finally:
        manager.close()


def test_unknown_job_raises_typed_error():
    manager = JobManager(StubService(), runners=1)
    try:
        with pytest.raises(UnknownJobError):
            manager.get("atax-doesnotexist")
        with pytest.raises(UnknownJobError):
            manager.cancel("atax-doesnotexist")
    finally:
        manager.close()


# ------------------------------------------------------------------ admission


def test_per_client_quota_is_enforced_per_client():
    service = StubService(pause_after=0)  # freeze every session immediately
    manager = JobManager(service, runners=4, max_per_client=2)
    try:
        manager.submit("atax", budget=0.4, client="alice")
        manager.submit("atax", budget=0.4, client="alice")
        with pytest.raises(JobQuotaError) as excinfo:
            manager.submit("atax", budget=0.4, client="alice")
        assert excinfo.value.client == "alice"
        assert excinfo.value.limit == 2
        # A different client is unaffected: quotas are per identity.
        manager.submit("atax", budget=0.4, client="bob")
    finally:
        service.gate.set()
        manager.close()


def test_table_full_of_live_jobs_is_typed_backpressure():
    service = StubService(pause_after=0)
    manager = JobManager(service, runners=1, max_jobs=2, max_per_client=2)
    try:
        manager.submit("atax", budget=0.4, client="alice")
        manager.submit("atax", budget=0.4, client="bob")
        with pytest.raises(JobTableFullError):
            manager.submit("atax", budget=0.4, client="carol")
    finally:
        service.gate.set()
        manager.close()


def test_finished_jobs_are_evicted_to_make_room():
    manager = JobManager(StubService(), runners=1, max_jobs=2)
    try:
        first = manager.submit("atax", budget=0.4)["job_id"]
        manager.wait(first, timeout=10.0)
        second = manager.submit("atax", budget=0.4)["job_id"]
        manager.wait(second, timeout=10.0)
        third = manager.submit("atax", budget=0.4)["job_id"]
        manager.wait(third, timeout=10.0)
        # The oldest finished job was evicted; the newer two remain.
        with pytest.raises(UnknownJobError):
            manager.get(first)
        assert manager.get(third)["state"] == "succeeded"
        assert len(manager.list()) == 2
    finally:
        manager.close()


# ------------------------------------------------------------------- fairness


def test_round_robin_across_clients_prevents_starvation():
    service = StubService(pause_after=0)
    manager = JobManager(service, runners=1, max_per_client=4)
    try:
        manager.submit("a1", budget=0.4, client="alice")
        wait_for(lambda: service.opened == ["a1"])  # alice's first is running
        manager.submit("a2", budget=0.4, client="alice")
        manager.submit("a3", budget=0.4, client="alice")
        manager.submit("b1", budget=0.4, client="bob")
        service.gate.set()  # unfreeze: the single runner drains the queues
        wait_for(lambda: len(service.opened) == 4)
        # Bob's first job does not sit behind alice's whole backlog: the
        # round-robin cursor interleaves the clients (a2 was already at the
        # head when bob submitted; b1 overtakes a3).
        assert service.opened == ["a1", "a2", "b1", "a3"]
    finally:
        service.gate.set()
        manager.close()


# ----------------------------------------------------------------- cancellation


def test_cancel_queued_job_is_immediate():
    service = StubService(pause_after=0)
    manager = JobManager(service, runners=1, max_per_client=4)
    try:
        manager.submit("atax", budget=0.4)
        wait_for(lambda: service.opened == ["atax"])
        queued = manager.submit("atax", budget=0.4)["job_id"]
        cancelled = manager.cancel(queued)
        assert cancelled["state"] == "cancelled"
        log = manager.updates(queued)["updates"]
        assert log == [{"seq": 1, "event": "done", "state": "cancelled"}]
    finally:
        service.gate.set()
        manager.close()


def test_cancel_running_job_stops_at_iteration_boundary():
    service = StubService(pause_after=1)  # one iteration, then freeze
    manager = JobManager(service, runners=1)
    try:
        job_id = manager.submit("atax", budget=0.4)["job_id"]
        first = manager.wait_updates(job_id, since=0, timeout=10.0)
        assert first["state"] == "running"
        snapshot = manager.cancel(job_id)
        assert snapshot["state"] == "running"  # cooperative, not yet terminal
        service.gate.set()
        final = manager.wait(job_id, timeout=10.0)
        assert final["state"] == "cancelled"
        assert final["result"] is None
        assert manager.updates(job_id)["updates"][-1]["state"] == "cancelled"
    finally:
        service.gate.set()
        manager.close()


def test_cancel_terminal_job_is_noop():
    manager = JobManager(StubService(), runners=1)
    try:
        job_id = manager.submit("atax", budget=0.4)["job_id"]
        manager.wait(job_id, timeout=10.0)
        assert manager.cancel(job_id)["state"] == "succeeded"
    finally:
        manager.close()


# -------------------------------------------------------------- resume / close


def test_close_then_new_manager_resumes_bitwise_identical(tmp_path):
    # Reference: the same exploration, uninterrupted (memory-only manager).
    reference_manager = JobManager(StubService(), runners=1)
    try:
        ref_id = reference_manager.submit("atax", budget=0.9)["job_id"]
        reference = reference_manager.wait(ref_id, timeout=10.0)
        assert reference["state"] == "succeeded"
    finally:
        reference_manager.close()

    # Interrupted run: slow the job down (~8 iterations at 0.1s each), then
    # close the manager after the second update — mid-flight, with most of
    # the exploration still ahead of it.
    store_dir = tmp_path / "jobs"
    manager = JobManager(
        StubService(), store=str(store_dir), runners=1, step_delay_s=0.1
    )
    job_id = manager.submit("atax", budget=0.9)["job_id"]
    wait_for(lambda: manager.updates(job_id)["next_since"] >= 2)
    manager.close()  # graceful: checkpoints and leaves the job `running`
    interrupted = manager.get(job_id)
    assert interrupted["state"] == "running"
    assert interrupted["seq"] < reference["seq"]  # genuinely mid-flight

    # A fresh manager over the same store resumes and finishes the job.
    resumed_manager = JobManager(StubService(), store=str(store_dir), runners=1)
    try:
        snapshot = resumed_manager.get(job_id)  # the job survived the restart
        assert snapshot["resumes"] == 1
        final = resumed_manager.wait(job_id, timeout=10.0)
        assert final["state"] == "succeeded"
        # Bitwise: same ADRS float, same frontier, same sampling trajectory.
        assert final["result"] == reference["result"]
        log = resumed_manager.updates(job_id)["updates"]
        assert [u["seq"] for u in log] == list(range(1, len(log) + 1))
        assert log[-1]["event"] == "done"
    finally:
        resumed_manager.close()


def test_resume_skips_corrupt_checkpoints(tmp_path):
    store_dir = tmp_path / "jobs"
    store_dir.mkdir()
    (store_dir / "bad.json").write_text("{not json")
    (store_dir / "empty.json").write_text("{}")
    manager = JobManager(StubService(), store=str(store_dir), runners=1)
    try:
        assert manager.list() == []
        job_id = manager.submit("atax", budget=0.4)["job_id"]
        assert manager.wait(job_id, timeout=10.0)["state"] == "succeeded"
    finally:
        manager.close()


def test_submit_after_close_raises():
    manager = JobManager(StubService(), runners=1)
    manager.close()
    with pytest.raises(RuntimeError):
        manager.submit("atax", budget=0.4)


def test_stats_shape():
    manager = JobManager(StubService(), runners=1, max_jobs=8, max_per_client=3)
    try:
        job_id = manager.submit("atax", budget=0.4)["job_id"]
        manager.wait(job_id, timeout=10.0)
        stats = manager.stats()
        assert stats["jobs"] == 1
        assert stats["by_state"] == {"succeeded": 1}
        assert stats["max_jobs"] == 8
        assert stats["max_per_client"] == 3
        assert stats["durable"] is False
    finally:
        manager.close()
