"""Tests for the graph construction flow (buffer insertion, merging, trimming, features)."""

import numpy as np

from repro.activity.simulator import simulate_activity
from repro.graph.construction import GraphConstructionConfig, GraphConstructor, build_power_graph
from repro.graph.features import (
    EDGE_FEATURE_NAMES,
    FeatureEncoder,
    NODE_NUMERIC_FEATURES,
    NODE_TYPE_CATEGORIES,
    OPCODE_VOCABULARY,
)
from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.hls.report import run_hls


def test_buffer_insertion_creates_buffer_nodes(gemm_baseline_result, gemm_activity):
    graph = build_power_graph(gemm_baseline_result, gemm_activity)
    buffers = [n for n in graph.nodes.values() if n.kind == "buffer"]
    assert {n.buffer_name for n in buffers} == {"A", "B", "C"}
    assert all(n.buffer_bits > 0 for n in buffers)
    # Address-generation nodes are gone after buffer insertion.
    assert not any(n.opcode in ("getelementptr", "alloca") for n in graph.nodes.values())


def test_buffers_connect_loads_and_stores(gemm_baseline_result, gemm_activity):
    graph = build_power_graph(gemm_baseline_result, gemm_activity)
    buffer_ids = {n.buffer_name: nid for nid, n in graph.nodes.items() if n.kind == "buffer"}
    load_ids = [nid for nid, n in graph.nodes.items() if n.opcode == "load"]
    store_ids = [nid for nid, n in graph.nodes.items() if n.opcode == "store"]
    assert load_ids and store_ids
    # Every load is fed by some buffer; every store feeds some buffer.
    for load_id in load_ids:
        assert any(src in buffer_ids.values() for src in graph.predecessors(load_id))
    for store_id in store_ids:
        assert any(dst in buffer_ids.values() for dst in graph.successors(store_id))


def test_datapath_merging_shrinks_graph(gemm_baseline_result, gemm_activity):
    merged = GraphConstructor(GraphConstructionConfig()).build_power_graph(
        gemm_baseline_result, gemm_activity
    )
    unmerged = GraphConstructor(
        GraphConstructionConfig(datapath_merging=False)
    ).build_power_graph(gemm_baseline_result, gemm_activity)
    assert merged.num_nodes <= unmerged.num_nodes
    assert any(n.merged_count > 1 for n in merged.nodes.values())


def test_raw_configuration_keeps_address_nodes(gemm_baseline_result, gemm_activity):
    raw = GraphConstructor(GraphConstructionConfig.raw()).build_power_graph(
        gemm_baseline_result, gemm_activity
    )
    assert any(n.opcode == "getelementptr" for n in raw.nodes.values())
    assert not any(n.kind == "buffer" for n in raw.nodes.values())


def test_encoded_graph_shapes_and_relations(gemm_graph):
    encoder = FeatureEncoder()
    assert gemm_graph.node_feature_dim == encoder.node_feature_dim
    assert gemm_graph.edge_feature_dim == len(EDGE_FEATURE_NAMES)
    assert gemm_graph.metadata_dim == 10
    assert gemm_graph.num_nodes > 0 and gemm_graph.num_edges > 0
    assert set(np.unique(gemm_graph.edge_types)).issubset({0, 1, 2, 3})
    # One-hot blocks sum to one per node (type and opcode).
    type_block = gemm_graph.node_features[:, : len(NODE_TYPE_CATEGORIES)]
    opcode_block = gemm_graph.node_features[
        :, len(NODE_TYPE_CATEGORIES) : len(NODE_TYPE_CATEGORIES) + len(OPCODE_VOCABULARY)
    ]
    assert np.allclose(type_block.sum(axis=1), 1.0)
    assert np.allclose(opcode_block.sum(axis=1), 1.0)


def test_edge_features_nonzero_and_nonnegative(gemm_graph):
    assert gemm_graph.edge_features.min() >= 0.0
    assert gemm_graph.edge_features.max() > 0.0


def test_edge_feature_switch_disables_activity(gemm_baseline_result, gemm_activity):
    constructor = GraphConstructor(GraphConstructionConfig(edge_features=False))
    graph = constructor.build(gemm_baseline_result, gemm_activity)
    assert np.allclose(graph.edge_features, 0.0)


def test_unrolled_designs_have_larger_graphs(gemm_kernel, gemm_graph):
    directives = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=3, pipeline=True)},
        {"A": ArrayPartition(2), "B": ArrayPartition(2)},
    )
    result = run_hls(gemm_kernel, directives)
    profile = simulate_activity(result.design, seed=3)
    unrolled_graph = GraphConstructor().build(result, profile)
    assert unrolled_graph.num_nodes > gemm_graph.num_nodes


def test_trimming_removes_cast_nodes(gemm_baseline_result, gemm_activity):
    trimmed = GraphConstructor(GraphConstructionConfig()).build_power_graph(
        gemm_baseline_result, gemm_activity
    )
    cast_names = {"sext", "zext", "trunc", "bitcast", "sitofp", "fptosi"}
    assert not any(n.opcode in cast_names for n in trimmed.nodes.values())


def test_shared_constructor_is_safe_under_concurrent_builds(
    gemm_kernel, gemm_baseline_result, gemm_activity
):
    """One GraphConstructor serving interleaved builds of different designs
    must produce the same graphs as sequential builds — the serving tier runs
    concurrent featurisation batches through a single shared constructor."""
    from concurrent.futures import ThreadPoolExecutor

    directives = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=3, pipeline=True)},
        {"A": ArrayPartition(2), "B": ArrayPartition(2)},
    )
    unrolled_result = run_hls(gemm_kernel, directives)
    unrolled_activity = simulate_activity(unrolled_result.design, seed=3)
    jobs = [(gemm_baseline_result, gemm_activity), (unrolled_result, unrolled_activity)]

    constructor = GraphConstructor()
    expected = [constructor.build(result, profile) for result, profile in jobs]
    with ThreadPoolExecutor(max_workers=4) as pool:
        for _ in range(20):
            futures = [
                pool.submit(constructor.build, result, profile)
                for result, profile in jobs * 2
            ]
            built = [future.result() for future in futures]
            for graph, reference in zip(built, expected * 2):
                assert graph.num_nodes == reference.num_nodes
                assert np.array_equal(graph.node_features, reference.node_features)
                assert np.array_equal(graph.edge_index, reference.edge_index)
                assert np.array_equal(graph.edge_features, reference.edge_features)


def test_node_numeric_feature_names_align_with_encoder():
    encoder = FeatureEncoder()
    expected = len(NODE_TYPE_CATEGORIES) + len(OPCODE_VOCABULARY) + len(NODE_NUMERIC_FEATURES)
    assert encoder.node_feature_dim == expected
    assert encoder.edge_feature_dim == 4
