"""End-to-end observability through the HTTP front end.

The acceptance surface of the obs subsystem, exercised over real sockets:

* one ``POST /v1/estimate`` leaves one complete span tree — gateway
  admission, coalesce, batch flush, featurisation (with the worker pid),
  cache lookups, forward — retrievable from ``GET /v1/traces``;
* ``X-Request-ID`` is honoured and echoed (and minted when absent), and the
  id stamps the trace;
* ``GET /metrics`` stays strict JSON (no NaN/Infinity, even on a fresh
  service) and serves the Prometheus text exposition under
  ``Accept: text/plain``;
* a SIGKILLed pool worker leaves a ``crash`` → ``restart`` sequence in
  ``GET /v1/events`` and fresh worker heartbeats in ``/healthz``.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import time

import pytest

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime import RuntimeConfig
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import GatewayHTTPServer, request_json, request_raw
from repro.serve import EstimateRequest, PowerEstimationService

SERVICE_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=10)


@pytest.fixture(scope="module")
def served_model(small_dataset):
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    return model


def serve(model, **runtime_kwargs):
    """Async context: server over a fresh service; yields (service, call, raw)."""

    class _Context:
        async def __aenter__(self):
            self.service = PowerEstimationService(
                model,
                generator=DatasetGenerator(SERVICE_CONFIG),
                runtime=RuntimeConfig(**runtime_kwargs),
            )
            self.gateway = AsyncPowerGateway(self.service)
            self.server = GatewayHTTPServer(self.gateway)
            host, port = await self.server.start()

            async def call(method, path, body=None, headers=None):
                return await request_json(host, port, method, path, body, headers)

            async def raw(method, path, body=None, headers=None):
                return await request_raw(host, port, method, path, body, headers)

            self.call = call
            self.raw = raw
            return self

        async def __aexit__(self, *exc_info):
            await self.server.aclose()
            await self.gateway.aclose()
            self.service.close()

    return _Context()


def _walk(span: dict):
    yield span
    for child in span.get("children", []):
        yield from _walk(child)


# ------------------------------------------------------------------- tracing


def test_single_estimate_leaves_one_complete_trace(served_model):
    """The tentpole acceptance: one request, one span tree, every stage."""

    async def run():
        async with serve(served_model, coalesce_window_ms=5.0) as ctx:
            status, headers, _body = await ctx.raw(
                "POST",
                "/v1/estimate",
                {"kernel": "atax"},
                headers={"X-Request-ID": "req-accept-1"},
            )
            assert status == 200
            assert headers["x-request-id"] == "req-accept-1"
            return await ctx.call("GET", "/v1/traces")

    status, payload = asyncio.run(run())
    assert status == 200
    (trace,) = payload["traces"]
    assert trace["request_id"] == "req-accept-1"
    spans = {span["name"]: span for span in _walk(trace["root"])}
    # Every stage of the path, in one tree.
    for name in (
        "request",
        "gateway",
        "estimate",
        "coalesce",
        "batch.flush",
        "cache.samples",
        "featurise",
        "cache.predictions",
        "forward",
    ):
        assert name in spans, f"missing span {name!r} (got {sorted(spans)})"
    assert spans["request"]["attributes"]["path"] == "/v1/estimate"
    assert spans["request"]["attributes"]["status"] == 200
    assert spans["coalesce"]["attributes"]["role"] == "leader"
    assert spans["featurise"]["attributes"]["worker_pid"] == spans["featurise"]["pid"]
    assert all(span["duration_ms"] is not None for span in spans.values())
    assert payload["stats"]["finished"] == 1

    # find-by-id round trip
    async def fetch_one():
        async with serve(served_model) as ctx:
            await ctx.call("POST", "/v1/estimate", {"kernel": "atax"})
            _, listing = await ctx.call("GET", "/v1/traces?limit=1")
            trace_id = listing["traces"][0]["trace_id"]
            found = await ctx.call("GET", f"/v1/traces?trace_id={trace_id}")
            missing = await ctx.call("GET", "/v1/traces?trace_id=deadbeefdeadbeef")
            return trace_id, found, missing

    trace_id, (found_status, found), (missing_status, _missing) = asyncio.run(
        fetch_one()
    )
    assert found_status == 200 and found["trace"]["trace_id"] == trace_id
    assert missing_status == 404


def test_request_id_minted_and_scrapes_stay_out_of_the_ring(served_model):
    async def run():
        async with serve(served_model) as ctx:
            status, headers, _ = await ctx.raw(
                "POST", "/v1/estimate", {"kernel": "atax"}
            )
            minted = headers["x-request-id"]
            # GET endpoints never open traces: scrape noise must not wash
            # real requests out of the bounded ring.
            for _ in range(3):
                await ctx.call("GET", "/metrics")
                await ctx.call("GET", "/healthz")
            _, traces = await ctx.call("GET", "/v1/traces")
            return minted, traces

    minted, traces = asyncio.run(run())
    assert re.fullmatch(r"[0-9a-f]{16}", minted)
    assert len(traces["traces"]) == 1
    assert traces["traces"][0]["request_id"] == minted


def test_pooled_estimate_many_trace_carries_worker_pids(served_model):
    async def run():
        async with serve(
            served_model, num_workers=2, min_designs_per_worker=1
        ) as ctx:
            generator = DatasetGenerator(SERVICE_CONFIG)
            from repro.kernels.polybench import polybench_kernel
            from repro.runtime.http import directives_to_json

            kernel = polybench_kernel("atax", SERVICE_CONFIG.kernel_size)
            # Distinct design points so the pool actually shards.
            requests = [
                {"kernel": "atax", "directives": directives_to_json(d)}
                for d in generator.design_space_for(kernel)
            ]
            status, _ = await ctx.call(
                "POST", "/v1/estimate_many", {"requests": requests}
            )
            assert status == 200
            return await ctx.call("GET", "/v1/traces?limit=1")

    _status, payload = asyncio.run(run())
    (trace,) = payload["traces"]
    shards = [s for s in _walk(trace["root"]) if s["name"] == "featurise.shard"]
    assert shards
    assert all(s["pid"] != os.getpid() for s in shards)
    assert all(s["attributes"]["designs"] >= 1 for s in shards)


# ------------------------------------------------------------------- metrics


def test_metrics_json_is_strict_even_on_a_fresh_service(served_model):
    """Regression: a never-used service must serve NaN-free /metrics."""

    def reject_constant(name):
        raise AssertionError(f"non-finite constant {name} leaked into /metrics")

    async def run():
        async with serve(served_model) as ctx:
            fresh_status, _headers, fresh_body = await ctx.raw("GET", "/metrics")
            await ctx.call("POST", "/v1/estimate", {"kernel": "atax"})
            warm_status, _headers, warm_body = await ctx.raw("GET", "/metrics")
            return fresh_status, fresh_body, warm_status, warm_body

    fresh_status, fresh_body, warm_status, warm_body = asyncio.run(run())
    assert fresh_status == 200 and warm_status == 200
    fresh = json.loads(fresh_body.decode(), parse_constant=reject_constant)
    warm = json.loads(warm_body.decode(), parse_constant=reject_constant)
    # The guarded means: 0.0 on the fresh service, real on the warm one.
    assert fresh["service"]["mean_featurise_ms_per_design"] == 0.0
    assert warm["service"]["mean_featurise_ms_per_design"] > 0.0
    # Real quantiles ride the JSON endpoint too.
    latency = warm["latency"]["request"]["estimate"]
    assert latency["count"] == 1 and latency["p50"] is not None
    assert warm["observability"]["traces"]["finished"] >= 1


def test_prometheus_exposition_under_accept_text_plain(served_model):
    async def run():
        async with serve(served_model) as ctx:
            await ctx.call("POST", "/v1/estimate", {"kernel": "atax"})
            return await ctx.raw("GET", "/metrics", headers={"Accept": "text/plain"})

    status, headers, body = asyncio.run(run())
    assert status == 200
    assert headers["content-type"].startswith("text/plain; version=0.0.4")
    text = body.decode()
    lines = text.splitlines()
    # Format validity: every sample line is "name[{labels}] value" with a
    # parseable float value; TYPE lines use known metric kinds.
    sample_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$")
    for line in lines:
        if not line or line.startswith("#"):
            if line.startswith("# TYPE"):
                assert line.split()[-1] in ("counter", "gauge", "histogram")
            continue
        assert sample_re.match(line), f"malformed exposition line: {line!r}"
        value = line.rsplit(" ", 1)[1]
        assert value == "+Inf" or value == "NaN" or float(value) is not None
    assert "NaN" not in text
    # The core instruments and the projected legacy stats both scrape.
    assert 'repro_request_seconds_bucket{endpoint="estimate",le="+Inf"} 1' in lines
    assert "# TYPE repro_http_requests_total counter" in text
    assert "repro_service_requests 1" in lines
    assert any(line.startswith("repro_gateway_completed") for line in lines)


# -------------------------------------------------------- events + heartbeats


def test_sigkilled_worker_leaves_crash_restart_in_events(served_model):
    """Acceptance: the event timeline shows the crash→restart sequence."""
    generator = DatasetGenerator(SERVICE_CONFIG)
    from repro.kernels.polybench import polybench_kernel

    kernel = polybench_kernel("atax", SERVICE_CONFIG.kernel_size)
    requests = [
        EstimateRequest(kernel="atax", directives=d)
        for d in generator.design_space_for(kernel)
    ]

    async def run():
        async with serve(
            served_model,
            num_workers=2,
            min_designs_per_worker=1,
            pool_restart_backoff_s=0.01,
        ) as ctx:
            service = ctx.service
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, service.estimate_many, requests)

            supervisor = service._feat_supervisor
            executor = supervisor._pools[supervisor._generation]._pool
            os.kill(next(iter(executor._processes)), signal.SIGKILL)
            deadline = time.time() + 30
            while not executor._broken and time.time() < deadline:
                await asyncio.sleep(0.01)
            assert executor._broken

            service.cache.clear()
            await loop.run_in_executor(None, service.estimate_many, requests)

            _, events = await ctx.call("GET", "/v1/events")
            _, crashes = await ctx.call("GET", "/v1/events?kind=crash")
            _, health = await ctx.call("GET", "/healthz")
            _, _, prom = await ctx.raw(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
            return events, crashes, health, prom.decode()

    events, crashes, health, prom = asyncio.run(run())
    kinds = [event["kind"] for event in events["events"]]
    assert "crash" in kinds and "restart" in kinds
    assert kinds.index("crash") < kinds.index("restart")  # the sequence, ordered
    (crash,) = crashes["events"]
    assert crash["pool"] == "featurisation"
    assert "worker died mid-batch" in crash["fault"]
    restart = next(e for e in events["events"] if e["kind"] == "restart")
    assert restart["restarts"] == 1 and restart["backoff_s"] > 0
    # Sequence numbers page the timeline without trusting wall clocks.
    seqs = [event["seq"] for event in events["events"]]
    assert seqs == sorted(seqs)

    # The same timeline rides service.health() — and the restarted pool's
    # heartbeat book only knows the *new* generation's workers.
    pool_health = health["pools"]["featurisation"]
    assert pool_health["restarts"] == 1
    beats = pool_health["heartbeats"]
    assert 1 <= len(beats) <= 2
    assert all(entry["age_s"] >= 0.0 for entry in beats.values())

    # And the counters made it to the scrape.
    assert 'repro_pool_events_total{pool="featurisation",kind="crash"} 1' in prom


def test_events_endpoint_empty_on_untroubled_service(served_model):
    async def run():
        async with serve(served_model) as ctx:
            await ctx.call("POST", "/v1/estimate", {"kernel": "atax"})
            return await ctx.call("GET", "/v1/events")

    status, payload = asyncio.run(run())
    assert status == 200
    assert payload["events"] == []
    assert payload["stats"] == {"recorded": 0, "ring": 0}
