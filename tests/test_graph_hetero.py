"""Tests for the heterogeneous graph container."""

import numpy as np
import pytest

from repro.graph.hetero_graph import HeteroGraph, RELATION_TYPES, relation_type_index


def test_relation_type_index_covers_all_pairs():
    assert relation_type_index(True, True) == 0
    assert relation_type_index(True, False) == 1
    assert relation_type_index(False, True) == 2
    assert relation_type_index(False, False) == 3
    assert len(RELATION_TYPES) == 4


def test_graph_shapes_and_degrees(random_graph_factory):
    graph = random_graph_factory(num_nodes=10, num_edges=20)
    assert graph.num_nodes == 10
    assert graph.num_edges == 20
    assert graph.node_feature_dim == 6
    assert graph.edge_feature_dim == 4
    assert graph.in_degrees().sum() == 20
    assert graph.out_degrees().sum() == 20


def test_graph_validation_rejects_inconsistencies():
    with pytest.raises(ValueError):
        HeteroGraph(
            node_features=np.zeros((2, 3)),
            edge_index=np.array([[0], [1]]),
            edge_features=np.zeros((2, 4)),  # two rows but one edge
            edge_types=np.array([0]),
            metadata=np.zeros(3),
            node_is_arithmetic=np.array([True, False]),
        )
    with pytest.raises(ValueError):
        HeteroGraph(
            node_features=np.zeros((2, 3)),
            edge_index=np.array([[0], [5]]),  # node 5 does not exist
            edge_features=np.zeros((1, 4)),
            edge_types=np.array([0]),
            metadata=np.zeros(3),
            node_is_arithmetic=np.array([True, False]),
        )


def test_undirected_doubles_edges_and_fixes_relations(random_graph_factory):
    graph = random_graph_factory(num_nodes=6, num_edges=9)
    symmetric = graph.undirected()
    assert symmetric.num_edges == 18
    # Reverse edges have relation types consistent with swapped endpoints.
    for position in range(9):
        src, dst = graph.edge_index[:, position]
        reverse_type = symmetric.edge_types[9 + position]
        assert reverse_type == relation_type_index(
            bool(graph.node_is_arithmetic[dst]), bool(graph.node_is_arithmetic[src])
        )


def test_without_edge_features_zeroes_only_edges(random_graph_factory):
    graph = random_graph_factory()
    stripped = graph.without_edge_features()
    assert np.allclose(stripped.edge_features, 0.0)
    assert np.allclose(stripped.node_features, graph.node_features)


def test_homogeneous_collapses_relations(random_graph_factory):
    graph = random_graph_factory()
    assert set(np.unique(graph.homogeneous().edge_types)) == {0}


def test_batching_offsets_and_metadata(random_graph_factory):
    graphs = [random_graph_factory(num_nodes=4 + i, seed=i) for i in range(3)]
    batch = HeteroGraph.batch_graphs(graphs)
    assert batch.num_graphs == 3
    assert batch.num_nodes == sum(g.num_nodes for g in graphs)
    assert batch.num_edges == sum(g.num_edges for g in graphs)
    assert batch.metadata.shape == (3, graphs[0].metadata_dim)
    # The batch vector assigns each node to its graph.
    counts = np.bincount(batch.batch)
    assert list(counts) == [g.num_nodes for g in graphs]
    # Edges stay within their graph after offsetting.
    boundaries = np.cumsum([0] + [g.num_nodes for g in graphs])
    for position in range(batch.num_edges):
        src, dst = batch.edge_index[:, position]
        graph_of_src = np.searchsorted(boundaries, src, side="right") - 1
        graph_of_dst = np.searchsorted(boundaries, dst, side="right") - 1
        assert graph_of_src == graph_of_dst


def test_batching_rejects_empty_and_mismatched():
    with pytest.raises(ValueError):
        HeteroGraph.batch_graphs([])


def test_edges_of_type_mask(random_graph_factory):
    graph = random_graph_factory(num_edges=30)
    total = sum(graph.edges_of_type(r).sum() for r in range(4))
    assert total == graph.num_edges
