"""Tests for the GNN models: HEC-GNN, baselines, configs and forward passes."""

import numpy as np
import pytest

from repro.gnn.base import GraphBatch, segment_mean
from repro.gnn.baseline_convs import GCNModel, GINEModel, GraphConvModel, GraphSAGEModel
from repro.gnn.config import GNNConfig
from repro.gnn.hecgnn import HECGNN
from repro.graph.hetero_graph import HeteroGraph
from repro.nn.losses import mape_loss
from repro.nn.tensor import Tensor

MODEL_CLASSES = [HECGNN, GCNModel, GraphSAGEModel, GraphConvModel, GINEModel]


def test_gnn_config_validation_and_variants():
    with pytest.raises(ValueError):
        GNNConfig(hidden_dim=0)
    with pytest.raises(ValueError):
        GNNConfig(dropout=1.5)
    config = GNNConfig()
    assert not config.without_edge_features().use_edge_features
    assert not config.without_directionality().directed
    assert not config.without_heterogeneity().heterogeneous
    assert not config.without_metadata().use_metadata
    unopt = config.unoptimised()
    assert not (unopt.use_edge_features or unopt.directed or unopt.heterogeneous or unopt.use_metadata)
    assert GNNConfig.paper().hidden_dim == 128


@pytest.mark.parametrize("model_class", MODEL_CLASSES)
def test_forward_output_shape(model_class, random_graph_factory):
    config = GNNConfig(hidden_dim=8, num_layers=2, dropout=0.0)
    model = model_class(6, 4, 5, config)
    single = model(random_graph_factory(seed=1))
    assert single.shape == (1,)
    batch = HeteroGraph.batch_graphs([random_graph_factory(seed=i) for i in range(4)])
    assert model(batch).shape == (4,)


@pytest.mark.parametrize("model_class", MODEL_CLASSES)
def test_backward_produces_gradients(model_class, random_graph_factory):
    config = GNNConfig(hidden_dim=8, num_layers=2, dropout=0.0)
    model = model_class(6, 4, 5, config)
    graph = HeteroGraph.batch_graphs([random_graph_factory(seed=i) for i in range(3)])
    loss = mape_loss(model(graph), np.array([0.4, 0.5, 0.6]))
    loss.backward()
    grads = [p.grad for p in model.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


def test_hecgnn_conv_uses_edge_features(random_graph_factory):
    graph = random_graph_factory(seed=0)
    config = GNNConfig(hidden_dim=8, num_layers=1, dropout=0.0)
    model = HECGNN(6, 4, 5, config)
    base = model(graph).numpy()
    # Zeroing the edge features must change an edge-centric model's output.
    altered = model(graph.without_edge_features()).numpy()
    assert not np.allclose(base, altered)


def test_hecgnn_without_edge_features_ignores_them(random_graph_factory):
    graph = random_graph_factory(seed=0)
    config = GNNConfig(hidden_dim=8, num_layers=1, dropout=0.0).without_edge_features()
    model = HECGNN(6, 4, 5, config)
    assert np.allclose(
        model(graph).numpy(), model(graph.without_edge_features()).numpy()
    )


def test_hecgnn_relation_weights_follow_heterogeneity():
    heterogeneous = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1))
    homogeneous = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1, heterogeneous=False))
    assert len(heterogeneous.convs[0].relation_weights) == 4
    assert len(homogeneous.convs[0].relation_weights) == 1
    assert heterogeneous.relation_names == ("A->A", "A->N", "N->A", "N->N")
    assert homogeneous.relation_names == ("all",)


def test_metadata_branch_toggle(random_graph_factory):
    graph = random_graph_factory(seed=2)
    with_metadata = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1, dropout=0.0))
    without_metadata = HECGNN(
        6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1, dropout=0.0, use_metadata=False)
    )
    assert with_metadata.metadata_mlp is not None
    assert without_metadata.metadata_mlp is None
    # Changing the metadata changes the output only for the metadata-aware model.
    altered = HeteroGraph(
        node_features=graph.node_features,
        edge_index=graph.edge_index,
        edge_features=graph.edge_features,
        edge_types=graph.edge_types,
        metadata=graph.metadata * 10.0,
        node_is_arithmetic=graph.node_is_arithmetic,
    )
    assert not np.allclose(
        with_metadata(graph).numpy(), with_metadata(altered).numpy()
    )
    assert np.allclose(
        without_metadata(graph).numpy(), without_metadata(altered).numpy()
    )


def test_undirected_preparation(random_graph_factory):
    graph = random_graph_factory(seed=3)
    model = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1, directed=False))
    prepared = model.prepare_graph(graph)
    assert prepared.num_edges == 2 * graph.num_edges


def test_predict_is_deterministic_in_eval_mode(random_graph_factory):
    graph = random_graph_factory(seed=4)
    model = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=2, dropout=0.3))
    first = model.predict([graph])
    second = model.predict([graph])
    assert np.allclose(first, second)


def test_graph_batch_wrapper(random_graph_factory):
    graph = random_graph_factory(seed=5)
    batch = GraphBatch.from_graph(graph)
    assert batch.num_nodes == graph.num_nodes
    assert batch.metadata.shape == (1, graph.metadata_dim)


def test_segment_mean_helper():
    values = Tensor(np.array([[2.0], [4.0], [6.0]]))
    index = np.array([0, 0, 1])
    means = segment_mean(values, index, 3)
    assert np.allclose(means.data, [[3.0], [6.0], [0.0]])


def test_empty_edge_graph_still_works():
    graph = HeteroGraph(
        node_features=np.random.default_rng(0).random((4, 6)),
        edge_index=np.zeros((2, 0)),
        edge_features=np.zeros((0, 4)),
        edge_types=np.zeros(0),
        metadata=np.ones(5),
        node_is_arithmetic=np.array([True, False, True, False]),
    )
    for model_class in MODEL_CLASSES:
        model = model_class(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=1, dropout=0.0))
        assert model(graph).shape == (1,)
