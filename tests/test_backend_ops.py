"""Unit tests of the compute-backend layer: registry, selection, kernels.

Bitwise equality here means ``tobytes()`` equality — stronger than
``allclose`` and stronger than ``==`` (it distinguishes ``-0.0`` from
``0.0``, which the ReLU mask formulation deliberately preserves).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV_VAR,
    NumpyBackend,
    OptimizedBackend,
    active_backend,
    available_backends,
    get_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.nn.tensor import Tensor, scatter_add_rows


@pytest.fixture()
def backends():
    return get_backend("numpy"), get_backend("optimized")


def _assert_bitwise(reference: np.ndarray, candidate: np.ndarray, label: str) -> None:
    assert reference.shape == candidate.shape, label
    assert reference.dtype == candidate.dtype, label
    assert reference.tobytes() == candidate.tobytes(), f"{label} diverged bitwise"


# ----------------------------------------------------------------- selection


def test_registry_and_singletons():
    assert "numpy" in available_backends()
    assert "optimized" in available_backends()
    assert get_backend("numpy") is get_backend("numpy")
    assert isinstance(get_backend("numpy"), NumpyBackend)
    assert isinstance(get_backend("optimized"), OptimizedBackend)
    with pytest.raises(ValueError):
        get_backend("cuda")


def test_resolve_backend_name(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert resolve_backend_name() == "numpy"
    assert resolve_backend_name("optimized") == "optimized"
    monkeypatch.setenv(BACKEND_ENV_VAR, "optimized")
    assert resolve_backend_name() == "optimized"
    assert resolve_backend_name("numpy") == "numpy"  # explicit beats env
    monkeypatch.setenv(BACKEND_ENV_VAR, "gpu9000")
    with pytest.raises(ValueError):
        resolve_backend_name()


def test_use_backend_overrides_and_nests():
    base = active_backend()
    with use_backend("optimized") as outer:
        assert active_backend() is outer
        with use_backend("numpy") as inner:
            assert active_backend() is inner
        assert active_backend() is outer
    assert active_backend() is base


def test_use_backend_is_thread_local():
    seen = {}

    def probe():
        seen["worker"] = active_backend().name

    with use_backend("optimized"):
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert active_backend().name == "optimized"
    # The spawned thread never saw the caller's override.
    assert seen["worker"] == active_backend().name


def test_set_default_backend_roundtrip():
    original = active_backend()
    try:
        set_default_backend("optimized")
        assert active_backend().name == "optimized"
    finally:
        set_default_backend(original)


def test_optimized_accelerator_falls_back_cleanly():
    backend = get_backend("optimized")
    # In this environment neither torch nor numba is installed, so the
    # backend must bind no accelerator and still serve every kernel.
    assert backend.accelerator in ("none", "numba", "torch")
    out = backend.scatter_add(np.ones((4, 3)), np.array([0, 1, 0, 1]), 2)
    assert out.shape == (2, 3)


# ------------------------------------------------------------------- kernels


def _random_operands(seed: int):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((37, 19))
    b = rng.standard_normal((19, 23))
    bias = rng.standard_normal(23)
    values = rng.standard_normal((37, 23))
    index = rng.integers(0, 11, 37)
    return a, b, bias, values, index


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("scoped", [False, True])
def test_kernel_bitwise_equivalence(backends, seed, scoped):
    reference, optimized = backends
    a, b, bias, values, index = _random_operands(seed)
    import contextlib

    scope = optimized.forward_scope() if scoped else contextlib.nullcontext()
    with scope:
        _assert_bitwise(reference.matmul(a, b), optimized.matmul(a, b), "matmul")
        _assert_bitwise(
            reference.linear(a, b, bias), optimized.linear(a, b, bias), "linear"
        )
        _assert_bitwise(reference.linear(a, b), optimized.linear(a, b), "linear/nobias")
        x = reference.matmul(a, b)
        _assert_bitwise(reference.relu(x), optimized.relu(x), "relu")
        _assert_bitwise(
            reference.add_relu(x, -0.5 * x), optimized.add_relu(x, -0.5 * x), "add_relu"
        )
        _assert_bitwise(reference.add(x, bias), optimized.add(x, bias), "add")
        _assert_bitwise(reference.mul(x, x), optimized.mul(x, x), "mul")
        _assert_bitwise(
            reference.gather_rows(values, index),
            optimized.gather_rows(values, index),
            "gather_rows",
        )
        _assert_bitwise(
            reference.scatter_add(values, index, 11),
            optimized.scatter_add(values, index, 11),
            "scatter_add",
        )
        _assert_bitwise(
            reference.scatter_add(values[:, 0], index, 11),
            optimized.scatter_add(values[:, 0], index, 11),
            "scatter_add/1d",
        )
        _assert_bitwise(
            reference.scatter_add_relu(values, index, 11),
            optimized.scatter_add_relu(values, index, 11),
            "scatter_add_relu",
        )
        _assert_bitwise(
            reference.segment_mean(values, index, 11),
            optimized.segment_mean(values, index, 11),
            "segment_mean",
        )
        _assert_bitwise(
            reference.bincount(index, minlength=11),
            optimized.bincount(index, minlength=11),
            "bincount",
        )


def test_scatter_add_matches_ufunc_at(backends):
    """The reference formulation is the documented np.add.at equivalence."""
    reference, optimized = backends
    rng = np.random.default_rng(7)
    values = rng.standard_normal((64, 5))
    index = rng.integers(0, 9, 64)
    expected = np.zeros((9, 5))
    np.add.at(expected, index, values)
    for backend in (reference, optimized):
        _assert_bitwise(expected, backend.scatter_add(values, index, 9), backend.name)
    # Empty / degenerate shapes.
    for backend in (reference, optimized):
        assert backend.scatter_add(np.zeros((0, 5)), np.zeros(0, dtype=int), 3).shape == (3, 5)
        assert backend.scatter_add(np.zeros((4, 0)), np.zeros(4, dtype=int), 3).shape == (3, 0)


def test_relu_preserves_negative_zero_convention(backends):
    """Both backends keep the historical x * (x > 0) sign-of-zero bits."""
    reference, optimized = backends
    x = np.array([-1.0, 0.0, 2.0, -0.0])
    expected = x * (x > 0)
    _assert_bitwise(expected, reference.relu(x), "numpy relu")
    _assert_bitwise(expected, optimized.relu(x), "optimized relu")


# --------------------------------------------------------- workspaces, stats


def test_forward_scope_counts_and_reuses_workspaces():
    backend = OptimizedBackend()  # private instance: counters start at zero
    x = np.linspace(-1.0, 1.0, 128).reshape(16, 8)
    with backend.forward_scope():
        first = backend.relu(x)
        backend.relu(x)  # same shape: reuses the recycled mask within pool
    with backend.forward_scope():
        second = backend.add_relu(x, x)
    stats = backend.stats.as_dict()
    assert stats["forwards"] == 2
    assert stats["fused_add_relu"] == 1
    # Same mask shape across scopes: the later kernels hit the free list.
    assert stats["workspace_hits"] >= 1
    assert stats["workspace_misses"] >= 1
    assert first.tobytes() == (x * (x > 0)).tobytes()
    assert second.tobytes() == ((x + x) * ((x + x) > 0)).tobytes()


def test_optimized_outputs_do_not_alias_outside_scope():
    backend = get_backend("optimized")
    a = np.ones((8, 4))
    b = np.ones((4, 4))
    first = backend.matmul(a, b)
    second = backend.matmul(a, b)
    assert first is not second
    second[...] = -1.0
    assert float(first[0, 0]) == 4.0


def test_training_path_is_backend_independent():
    """Gradients computed under either backend are bitwise-identical."""
    rng = np.random.default_rng(3)
    inputs = rng.standard_normal((12, 6))
    weight_init = rng.standard_normal((6, 4))
    index = rng.integers(0, 5, 12)

    def run(backend_name: str) -> bytes:
        with use_backend(backend_name):
            weight = Tensor(weight_init.copy(), requires_grad=True)
            out = Tensor(inputs) @ weight
            pooled = out.relu().segment_sum(index, 5)
            pooled.sum().backward()
            return weight.grad.tobytes()

    assert run("numpy") == run("optimized")


def test_scatter_add_rows_delegates_to_active_backend():
    values = np.ones((6, 2))
    index = np.array([0, 1, 0, 1, 2, 2])
    expected = np.zeros((3, 2))
    np.add.at(expected, index, values)
    for name in available_backends():
        with use_backend(name):
            _assert_bitwise(expected, scatter_add_rows(values, index, 3), name)
