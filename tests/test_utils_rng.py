"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import derive_seed, new_rng, spawn_rng


def test_new_rng_is_deterministic():
    a = new_rng(42).random(5)
    b = new_rng(42).random(5)
    assert np.allclose(a, b)


def test_new_rng_passthrough_generator():
    generator = np.random.default_rng(1)
    assert new_rng(generator) is generator


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")
    assert derive_seed(1, "a", "b") != derive_seed(1, "a", "c")
    assert derive_seed(1, "a", "b") != derive_seed(2, "a", "b")


def test_derive_seed_in_range():
    seed = derive_seed(12345, "stimuli", "gemm")
    assert 0 <= seed < 2**63


def test_spawn_rng_streams_are_decorrelated():
    a = spawn_rng(0, "x").random(100)
    b = spawn_rng(0, "y").random(100)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.3
