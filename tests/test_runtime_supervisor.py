"""Self-healing pools: supervised restart-on-crash, autoscaling, health.

Three layers of coverage:

* **unit** — :class:`SupervisedPool` over fake in-process pools: restart
  budget and exponential backoff, retirement, generation-deduplicated
  concurrent crash recovery, queue-depth autoscaling with hysteresis, and
  the resize-only-between-batches contract;
* **real processes** — a minimal executor-backed pool whose worker SIGKILLs
  itself mid-batch via a poisoned task (fork and spawn): the supervisor must
  restart it within budget and the retried batch must equal the serial
  result exactly;
* **service** — a SIGKILLed featurisation/forward worker under
  ``PowerEstimationService``: the next ``estimate_many`` is answered
  bitwise-identically to the serial path, with the fault visible in
  ``runtime_stats()`` / ``health()`` and the pool restarted, plus the
  queued-burst scale-up / idle scale-down acceptance path.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.runtime import (
    PoolClosedError,
    PoolRetiredError,
    RuntimeConfig,
    SupervisedPool,
    WorkerCrashError,
)
from repro.serve import EstimateRequest, PowerEstimationService

SUPERVISOR_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=8)


# -------------------------------------------------------------- fake harness


class FakePool:
    """An in-process stand-in exposing only what the supervisor requires."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self.closed = False

    def close(self) -> None:
        self.closed = True


class Harness:
    def __init__(self) -> None:
        self.created: list[FakePool] = []
        self.sleeps: list[float] = []
        self.faults: list[BaseException] = []
        self.restarts = 0

    def factory(self, num_workers: int) -> FakePool:
        pool = FakePool(num_workers)
        self.created.append(pool)
        return pool

    def supervisor(self, **kwargs) -> SupervisedPool:
        kwargs.setdefault("min_workers", 2)
        kwargs.setdefault("max_workers", 2)
        kwargs.setdefault("on_fault", self.faults.append)
        kwargs.setdefault("on_restart", self._count_restart)
        kwargs.setdefault("sleep", self.sleeps.append)
        return SupervisedPool(self.factory, **kwargs)

    def _count_restart(self) -> None:
        self.restarts += 1


def test_supervisor_validates_configuration():
    harness = Harness()
    with pytest.raises(ValueError):
        harness.supervisor(min_workers=1)
    with pytest.raises(ValueError):
        harness.supervisor(min_workers=4, max_workers=2)
    with pytest.raises(ValueError):
        harness.supervisor(max_restarts=-1)
    with pytest.raises(ValueError):
        harness.supervisor(
            scale_up_queue_per_worker=1.0, scale_down_queue_per_worker=1.0
        )
    with pytest.raises(ValueError):
        harness.supervisor(scale_down_patience=0)


def test_run_passes_through_and_counts_batches():
    harness = Harness()
    with harness.supervisor() as supervisor:
        assert supervisor.run(lambda pool: pool.num_workers, cost=4) == 2
        assert supervisor.run(lambda pool: "ok") == "ok"
        health = supervisor.health()
    assert health["state"] == "ok"
    assert health["batches"] == 2
    assert health["restarts"] == 0
    assert health["queue_depth"] == 0
    assert len(harness.created) == 1  # one generation, reused


def test_restart_on_crash_with_exponential_backoff():
    harness = Harness()
    crashes = {"left": 2}

    def flaky(pool):
        if crashes["left"]:
            crashes["left"] -= 1
            raise WorkerCrashError("injected")
        return pool.num_workers

    with harness.supervisor(max_restarts=3, backoff_base_s=0.1) as supervisor:
        assert supervisor.run(flaky, cost=4) == 2
        health = supervisor.health()
    assert health["state"] == "ok"  # recovered and proved itself
    assert health["restarts"] == 2
    assert health["retried_batches"] == 2
    assert health["last_fault"] == "WorkerCrashError: injected"
    assert harness.sleeps == [0.1, 0.2]  # exponential
    assert harness.restarts == 2
    assert len(harness.faults) == 2
    assert len(harness.created) == 3  # each restart built a fresh pool
    assert all(pool.closed for pool in harness.created[:2])


def test_backoff_is_capped():
    harness = Harness()
    crashes = {"left": 6}

    def flaky(pool):
        if crashes["left"]:
            crashes["left"] -= 1
            raise WorkerCrashError("injected")
        return "ok"

    with harness.supervisor(
        max_restarts=10, backoff_base_s=0.1, backoff_max_s=0.25
    ) as supervisor:
        assert supervisor.run(flaky) == "ok"
    assert harness.sleeps == [0.1, 0.2, 0.25, 0.25, 0.25, 0.25]


def test_retires_after_budget_and_stays_retired():
    harness = Harness()

    def always_crash(pool):
        raise WorkerCrashError("dead on arrival")

    supervisor = harness.supervisor(max_restarts=2, backoff_base_s=0.0)
    with pytest.raises(PoolRetiredError):
        supervisor.run(always_crash, cost=4)
    assert supervisor.retired
    assert supervisor.health()["state"] == "retired"
    assert harness.restarts == 2
    assert len(harness.faults) == 3  # two restarts + the retiring fault
    created = len(harness.created)
    # Later batches fast-fail at admission: no doomed round-trips, no new pools.
    with pytest.raises(PoolRetiredError):
        supervisor.run(lambda pool: "never runs")
    assert len(harness.created) == created
    assert all(pool.closed for pool in harness.created)
    supervisor.close()


def test_restart_budget_decay_refunds_after_sustained_success():
    """Each full decay window of post-restart success refunds one restart,
    so an old crash stops counting against the budget forever."""
    harness = Harness()
    now = [0.0]
    crashes = {"left": 2}

    def flaky(pool):
        if crashes["left"]:
            crashes["left"] -= 1
            raise WorkerCrashError("injected")
        return "ok"

    class Recorder:
        events: list = []

        def pool_event(self, kind, **fields):
            self.events.append((kind, fields))

    with harness.supervisor(
        max_restarts=3,
        restart_budget_decay_s=10.0,
        backoff_base_s=0.0,
        clock=lambda: now[0],
        observer=Recorder(),
    ) as supervisor:
        assert supervisor.run(flaky) == "ok"  # two crashes consumed
        assert supervisor.health()["restarts"] == 2
        assert supervisor.health()["budget_refunds"] == 0

        now[0] = 9.9  # just under one window since the last restart
        supervisor.run(lambda pool: "ok")
        assert supervisor.health()["restarts"] == 2

        now[0] = 10.0  # one full window of sustained success
        supervisor.run(lambda pool: "ok")
        health = supervisor.health()
        assert health["restarts"] == 1
        assert health["budget_refunds"] == 1
        assert health["restart_budget_decay_s"] == 10.0

        now[0] = 20.0  # a second window
        supervisor.run(lambda pool: "ok")
        assert supervisor.health()["restarts"] == 0

        now[0] = 200.0  # the budget floors at zero, refunds stop
        supervisor.run(lambda pool: "ok")
        final = supervisor.health()
    assert final["restarts"] == 0
    assert final["budget_refunds"] == 2
    refunds = [fields for kind, fields in Recorder.events if kind == "budget_refund"]
    assert [r["refunded"] for r in refunds] == [1, 1]
    assert [r["restarts"] for r in refunds] == [1, 0]


def test_restart_budget_decay_refunds_multiple_windows_at_once():
    """Refunds are computed lazily on success, so a long quiet stretch pays
    out every elapsed window in one step (capped at what was consumed)."""
    harness = Harness()
    now = [0.0]
    crashes = {"left": 3}

    def flaky(pool):
        if crashes["left"]:
            crashes["left"] -= 1
            raise WorkerCrashError("injected")
        return "ok"

    with harness.supervisor(
        max_restarts=3,
        restart_budget_decay_s=10.0,
        backoff_base_s=0.0,
        clock=lambda: now[0],
    ) as supervisor:
        supervisor.run(flaky)
        assert supervisor.health()["restarts"] == 3
        now[0] = 25.0  # 2.5 windows → exactly two refunds
        supervisor.run(lambda pool: "ok")
        assert supervisor.health()["restarts"] == 1
        assert supervisor.health()["budget_refunds"] == 2


def test_restart_budget_decay_extends_the_retirement_horizon():
    """The point of the satellite: a pool crashing once per (long) while
    under an active decay schedule never retires, while the same crash rate
    without decay burns the budget down."""
    harness = Harness()
    now = [0.0]

    def crash_once():
        counter = {"left": 1}

        def task(pool):
            if counter["left"]:
                counter["left"] -= 1
                raise WorkerCrashError("periodic")
            return "ok"

        return task

    with harness.supervisor(
        max_restarts=2,
        restart_budget_decay_s=10.0,
        backoff_base_s=0.0,
        clock=lambda: now[0],
    ) as supervisor:
        for round_index in range(6):  # 6 crashes against a budget of 2
            supervisor.run(crash_once())
            now[0] += 15.0  # sustained success refunds before the next crash
            supervisor.run(lambda pool: "ok")
        health = supervisor.health()
    assert health["state"] == "ok"
    assert health["restarts"] == 0
    assert health["budget_refunds"] == 6


def test_restart_budget_decay_anchor_resets_on_each_restart():
    """Time served *before* a crash must not prepay the refund: the decay
    window restarts from the most recent restart."""
    harness = Harness()
    now = [0.0]
    crashes = {"left": 0}

    def maybe_crash(pool):
        if crashes["left"]:
            crashes["left"] -= 1
            raise WorkerCrashError("injected")
        return "ok"

    with harness.supervisor(
        max_restarts=3,
        restart_budget_decay_s=10.0,
        backoff_base_s=0.0,
        clock=lambda: now[0],
    ) as supervisor:
        now[0] = 9.0  # nine quiet seconds before the first crash...
        crashes["left"] = 1
        supervisor.run(maybe_crash)
        now[0] = 10.0  # ...must not count: only 1s has passed since restart
        supervisor.run(lambda pool: "ok")
        assert supervisor.health()["restarts"] == 1
        now[0] = 19.0  # 10s since the restart at t=9
        supervisor.run(lambda pool: "ok")
        assert supervisor.health()["restarts"] == 0


def test_restart_budget_decay_disabled_by_default():
    harness = Harness()
    now = [0.0]
    crashes = {"left": 1}

    def flaky(pool):
        if crashes["left"]:
            crashes["left"] -= 1
            raise WorkerCrashError("injected")
        return "ok"

    with harness.supervisor(
        max_restarts=3, backoff_base_s=0.0, clock=lambda: now[0]
    ) as supervisor:
        supervisor.run(flaky)
        now[0] = 1e9  # an eternity of success
        supervisor.run(lambda pool: "ok")
        health = supervisor.health()
    assert health["restarts"] == 1  # nothing refunded
    assert health["budget_refunds"] == 0
    assert health["restart_budget_decay_s"] == 0.0


def test_restart_budget_decay_validated():
    harness = Harness()
    with pytest.raises(ValueError):
        harness.supervisor(restart_budget_decay_s=-1.0)


def test_task_errors_propagate_without_consuming_budget():
    harness = Harness()
    with harness.supervisor() as supervisor:
        with pytest.raises(ValueError, match="bad kernel"):
            supervisor.run(lambda pool: (_ for _ in ()).throw(ValueError("bad kernel")))
        health = supervisor.health()
    assert health["restarts"] == 0
    assert health["state"] == "ok"
    assert not harness.faults
    assert health["queue_depth"] == 0  # the failed batch released its slot


def test_closed_supervisor_refuses_work():
    harness = Harness()
    supervisor = harness.supervisor()
    supervisor.run(lambda pool: "warm")
    supervisor.close()
    supervisor.close()  # idempotent
    assert supervisor.closed
    assert all(pool.closed for pool in harness.created)
    with pytest.raises(PoolClosedError):
        supervisor.run(lambda pool: "refused")


def test_concurrent_crashes_consume_one_restart():
    """Two batches crashing off the same broken pool recover once."""
    harness = Harness()
    barrier = threading.Barrier(2)
    supervisor = harness.supervisor(max_restarts=1, backoff_base_s=0.0)

    def flaky(pool):
        if pool is harness.created[0]:
            barrier.wait(timeout=30)  # both batches acquire the doomed pool
            raise WorkerCrashError("shared crash")
        return "recovered"

    results = [None, None]

    def call(slot: int) -> None:
        results[slot] = supervisor.run(flaky, cost=1)

    threads = [threading.Thread(target=call, args=(slot,)) for slot in (0, 1)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert results == ["recovered", "recovered"]
    health = supervisor.health()
    assert health["restarts"] == 1  # one budget unit for one crash event
    assert health["state"] == "ok"
    assert len(harness.created) == 2
    supervisor.close()


# -------------------------------------------------------------- autoscaling


def test_autoscale_grows_under_queued_burst_and_shrinks_when_idle():
    harness = Harness()
    supervisor = harness.supervisor(
        min_workers=2,
        max_workers=8,
        scale_up_queue_per_worker=4.0,
        scale_down_queue_per_worker=1.0,
        scale_down_patience=2,
    )
    # Burst: 40 designs against 2 workers (depth 40 > 2*4) doubles the pool;
    # the resize lands before the batch's pool call — a shard boundary.
    assert supervisor.run(lambda pool: pool.num_workers, cost=40) == 4
    assert supervisor.run(lambda pool: pool.num_workers, cost=40) == 8
    assert supervisor.health()["scale_ups"] == 2
    # Mid-band traffic (8 < depth 16 <= 32) is hysteresis: no move either way.
    assert supervisor.run(lambda pool: pool.num_workers, cost=16) == 8
    assert supervisor.health()["scale_downs"] == 0
    # Idle: low-pressure batches shrink one worker per patience streak.
    sizes = [supervisor.run(lambda pool: pool.num_workers, cost=2) for _ in range(14)]
    assert supervisor.size == 2
    assert sizes[-1] == 2
    assert sizes == sorted(sizes, reverse=True)  # monotone shrink, no flapping
    health = supervisor.health()
    assert health["scale_downs"] == 6  # 8 -> 2, one worker at a time
    assert health["min_workers"] == 2 and health["max_workers"] == 8
    # Every displaced generation was closed; exactly one pool is live.
    assert sum(not pool.closed for pool in harness.created) == 1
    supervisor.close()


def test_resize_never_swaps_a_batch_mid_flight():
    """A resize lands immediately for NEW batches — even under sustained
    overlapping traffic, no quiet gap required — while a batch already in
    flight finishes on the pool generation it acquired and drain-closes it."""
    harness = Harness()
    supervisor = harness.supervisor(min_workers=2, max_workers=8)
    release = threading.Event()
    acquired = threading.Semaphore(0)

    def slow(pool):
        acquired.release()
        assert release.wait(timeout=30)
        return pool

    results: list = [None, None]

    def call(slot: int, cost: int) -> None:
        results[slot] = supervisor.run(slow, cost=cost)

    holder = threading.Thread(target=call, args=(0, 1))
    holder.start()
    assert acquired.acquire(timeout=30)
    # A burst admission moves the target while the first batch is in flight;
    # the burst batch itself already runs on the grown generation...
    burst = threading.Thread(target=call, args=(1, 100))
    burst.start()
    assert acquired.acquire(timeout=30)
    health = supervisor.health()
    assert health["in_flight_batches"] == 2
    assert health["size"] > 2
    release.set()
    holder.join(timeout=30)
    burst.join(timeout=30)
    # ...while the holder kept its original 2-worker pool: no mid-batch swap.
    assert results[0] is not results[1]
    assert results[0].num_workers == 2
    assert results[1].num_workers > 2
    # The displaced generation was drain-closed by its last batch.
    assert results[0].closed
    assert not results[1].closed
    supervisor.close()


def test_should_parallelise_is_pinned_to_the_floor():
    """The pooling threshold must not grow with the pool: if it did, medium
    batches would go serial after a scale-up and stop feeding the queue-depth
    signal — so a grown pool could never shrink back."""
    harness = Harness()
    supervisor = harness.supervisor(
        min_workers=2, max_workers=8, min_designs_per_worker=3
    )
    assert not supervisor.should_parallelise(5)
    assert supervisor.should_parallelise(6)
    supervisor.run(lambda pool: None, cost=100)  # grows the pool
    assert supervisor.size > 2
    assert supervisor.should_parallelise(6)  # still admitted at the floor bar
    supervisor.close()


def test_external_retire_fast_fails_and_reports():
    harness = Harness()
    supervisor = harness.supervisor()
    supervisor.run(lambda pool: "warm")
    supervisor.retire("deterministic construction failure")
    assert supervisor.retired
    assert all(pool.closed for pool in harness.created)
    health = supervisor.health()
    assert health["state"] == "retired"
    assert health["last_fault"] == "deterministic construction failure"
    with pytest.raises(PoolRetiredError):
        supervisor.run(lambda pool: "never runs")
    supervisor.retire("again")  # idempotent
    supervisor.close()


# ------------------------------------------------- real processes, poisoned


def _square_or_die(task: tuple[int, str]) -> int:
    """Worker task: SIGKILL the worker once, marked by a sentinel file.

    The sentinel is created *before* the kill, so the retried batch runs
    clean — a transient fault, exactly what the restart budget is for.
    """
    value, sentinel = task
    if value == 3 and sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


class SquarePool:
    """Minimal real-process pool speaking the supervisor's protocol."""

    def __init__(self, num_workers: int, start_method: str) -> None:
        self.num_workers = num_workers
        self._executor = ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=multiprocessing.get_context(start_method),
        )

    def map(self, tasks: list[tuple[int, str]]) -> list[int]:
        try:
            return list(self._executor.map(_square_or_die, tasks))
        except BrokenProcessPool as fault:
            raise WorkerCrashError("worker died mid-batch") from fault

    def close(self) -> None:
        self._executor.shutdown(wait=True)


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_sigkilled_worker_mid_batch_is_restarted(start_method, tmp_path):
    """Acceptance: a SIGKILL mid-batch costs one restart, not the batch."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    sentinel = str(tmp_path / f"killed-{start_method}")
    tasks = [(value, sentinel) for value in range(8)]
    supervisor = SupervisedPool(
        lambda workers: SquarePool(workers, start_method),
        min_workers=2,
        max_workers=2,
        max_restarts=2,
        backoff_base_s=0.01,
    )
    try:
        results = supervisor.run(lambda pool: pool.map(tasks), cost=len(tasks))
        # Bitwise-identical to the serial path (trivially, but end to end
        # through a real crash + restart + retry).
        assert results == [value * value for value in range(8)]
        assert os.path.exists(sentinel)  # the poison really fired
        health = supervisor.health()
        assert health["restarts"] == 1
        assert health["state"] == "ok"
        assert "WorkerCrashError" in health["last_fault"]
        # The restarted pool keeps serving.
        again = supervisor.run(lambda pool: pool.map(tasks), cost=len(tasks))
        assert again == results
        assert supervisor.health()["restarts"] == 1
    finally:
        supervisor.close()


def test_sigkill_every_batch_exhausts_budget_and_retires(tmp_path):
    """A persistent fault (poison that re-arms) burns the budget then retires."""
    tasks = [(value, "") for value in range(8)]

    def poisoned(pool):
        raise WorkerCrashError("persistent fault")

    supervisor = SupervisedPool(
        lambda workers: SquarePool(workers, "fork"),
        min_workers=2,
        max_workers=2,
        max_restarts=1,
        backoff_base_s=0.0,
    )
    try:
        with pytest.raises(PoolRetiredError):
            supervisor.run(poisoned, cost=len(tasks))
        assert supervisor.retired
        # Healthy pools would still work, but the supervisor is done.
        with pytest.raises(PoolRetiredError):
            supervisor.run(lambda pool: pool.map(tasks), cost=len(tasks))
    finally:
        supervisor.close()


# ------------------------------------------------------------ service level


@pytest.fixture(scope="module")
def supervised_model():
    samples = DatasetGenerator(SUPERVISOR_CONFIG).generate(["atax"]).samples
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=10, num_layers=2),
            training=TrainingConfig(epochs=4, batch_size=16),
            ensemble=None,
        )
    ).fit(samples)


@pytest.fixture(scope="module")
def atax_requests():
    generator = DatasetGenerator(SUPERVISOR_CONFIG)
    kernel = polybench_kernel("atax", SUPERVISOR_CONFIG.kernel_size)
    return [
        EstimateRequest(kernel="atax", directives=directives)
        for directives in generator.design_space_for(kernel)
    ]


def _current_worker_pids(supervisor: SupervisedPool) -> list[int]:
    """Reach through supervisor -> WorkerPool -> executor for live worker pids."""
    pool = supervisor._pools[supervisor._generation]
    executor = pool._pool
    return list(executor._processes)


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_service_restarts_sigkilled_featurisation_worker(
    start_method, supervised_model, atax_requests
):
    """Acceptance: a SIGKILLed worker under ``estimate_many`` is a blip in
    metrics, and the recovered batch is bitwise-identical to serial."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    with PowerEstimationService(
        supervised_model, generator=DatasetGenerator(SUPERVISOR_CONFIG)
    ) as serial_service:
        reference = serial_service.estimate_many(atax_requests)

    runtime = RuntimeConfig(
        num_workers=2,
        min_designs_per_worker=1,
        start_method=start_method,
        pool_restart_backoff_s=0.01,
    )
    with PowerEstimationService(
        supervised_model,
        generator=DatasetGenerator(SUPERVISOR_CONFIG),
        runtime=runtime,
    ) as service:
        first = service.estimate_many(atax_requests)
        assert [r.power for r in first] == [r.power for r in reference]

        supervisor = service._feat_supervisor
        assert supervisor is not None
        executor = supervisor._pools[supervisor._generation]._pool
        os.kill(_current_worker_pids(supervisor)[0], signal.SIGKILL)
        # Wait until the executor's manager thread has observed the death
        # (deterministic: it watches worker sentinels), so the next batch
        # reliably sees the broken pool rather than racing the detection.
        deadline = time.time() + 30
        while not executor._broken and time.time() < deadline:
            time.sleep(0.01)
        assert executor._broken

        # Force the next batch back through featurisation: the memory tier
        # would otherwise answer from cache and never touch the dead pool.
        service.cache.clear()
        second = service.estimate_many(atax_requests)
        assert [r.power for r in second] == [r.power for r in reference]

        snapshot = service.metrics.snapshot()
        stats = service.runtime_stats()["pool"]
        health = service.health()
        assert snapshot["pool_restarts"] == 1
        assert snapshot["pooled_errors"] == 1  # the fault, visible
        assert snapshot["pooled_featurised"] == 2 * len(atax_requests)
        assert stats["supervisor"]["restarts"] == 1
        assert stats["supervisor"]["state"] == "ok"  # recovered
        assert "WorkerCrashError" in stats["supervisor"]["last_fault"]
        # Lifetime pool counters survive the rebuild and count successful
        # batches only (the crashed attempt is not throughput; the retry is
        # visible in the supervisor's retried_batches instead).
        assert stats["designs"] == 2 * len(atax_requests)
        assert stats["supervisor"]["retried_batches"] == 1
        assert health["status"] == "ok"
        assert health["pools"]["featurisation"]["restarts"] == 1


def test_service_autoscale_grows_on_burst_and_shrinks_idle(
    supervised_model, atax_requests
):
    """Acceptance: pool size demonstrably scales up under a queued burst and
    back down when idle (real worker processes, fork)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork unavailable on this platform")
    runtime = RuntimeConfig(
        num_workers=2,
        num_workers_max=4,
        min_designs_per_worker=1,
        start_method="fork",
        # Watermarks sized to the workload: the 40-design burst clears the
        # up-threshold at 2 workers (40 > 16); the 4-design idle batches sit
        # below the down-threshold at every size (4 <= 2*size for size >= 2).
        autoscale_up_queue_per_worker=8.0,
        autoscale_down_queue_per_worker=2.0,
        autoscale_down_patience=1,
    )
    burst = atax_requests * 5  # one queued burst of duplicated design points
    with PowerEstimationService(
        supervised_model,
        generator=DatasetGenerator(SUPERVISOR_CONFIG),
        runtime=runtime,
    ) as service:
        service.estimate_many(burst)  # depth 40 > 2*4: grow
        supervisor = service._feat_supervisor
        assert supervisor.size == 4
        assert supervisor.health()["scale_ups"] == 1
        # Idle traffic: small batches shrink the pool back to the floor.
        shrink_sizes = []
        for _ in range(4):
            service.cache.clear()
            service.estimate_many(atax_requests[:4])
            shrink_sizes.append(supervisor.size)
        assert supervisor.size == 2
        assert supervisor.health()["scale_downs"] >= 2
        assert shrink_sizes == sorted(shrink_sizes, reverse=True)


def test_runtime_config_validates_supervision_knobs():
    with pytest.raises(ValueError):
        RuntimeConfig(pool_max_restarts=-1)
    with pytest.raises(ValueError):
        RuntimeConfig(pool_restart_backoff_s=-0.1)
    with pytest.raises(ValueError):
        RuntimeConfig(pool_restart_budget_decay_s=-1.0)
    with pytest.raises(ValueError, match="num_workers_min=8"):
        RuntimeConfig(num_workers_min=8, num_workers_max=4)
    # A floor without a pool to apply it to is rejected, not silently ignored.
    with pytest.raises(ValueError, match="num_workers_min requires"):
        RuntimeConfig(num_workers_min=4)
    with pytest.raises(ValueError):
        RuntimeConfig(
            autoscale_up_queue_per_worker=1.0, autoscale_down_queue_per_worker=2.0
        )
    with pytest.raises(ValueError):
        RuntimeConfig(autoscale_down_patience=0)
    # num_workers_max alone enables the supervised pool from the floor.
    config = RuntimeConfig(num_workers_max=4)
    assert config.parallel_featurisation
    assert config.featurisation_worker_bounds() == (2, 4, 2)
    # An unset floor defers to num_workers: autoscaling only grows from the
    # operator's start size, never shrinks below it.
    assert RuntimeConfig(
        num_workers=6, num_workers_max=8
    ).featurisation_worker_bounds() == (6, 8, 6)
    # Fixed-size config keeps the old shape: min == max == start.
    assert RuntimeConfig(num_workers=3).featurisation_worker_bounds() == (3, 3, 3)
    # A start size above the ceiling is a config conflict, not a clamp — and
    # the error names the field the operator actually set.
    with pytest.raises(ValueError, match="num_workers=6"):
        RuntimeConfig(num_workers=6, num_workers_max=4)
