"""Tests for the mutable power graph used by the construction passes."""

import pytest

from repro.activity.tracer import ValueStreamStats
from repro.graph.power_graph import PowerGraph, PowerGraphEdge, PowerGraphNode


def make_node(graph: PowerGraph, opcode: str = "fadd", arithmetic: bool = True) -> PowerGraphNode:
    node = PowerGraphNode(
        node_id=graph.new_node_id(),
        kind="op",
        opcode=opcode,
        category="float_arith" if arithmetic else "memory",
        is_arithmetic=arithmetic,
        bitwidth=32,
    )
    return graph.add_node(node)


def stats_with(hamming: int, changes: int = 1, execs: int = 2) -> ValueStreamStats:
    return ValueStreamStats(bit_width=32, exec_count=execs, change_count=changes, hamming_sum=hamming)


def test_add_edge_merges_parallel_edges():
    graph = PowerGraph()
    a, b = make_node(graph), make_node(graph)
    graph.add_edge(PowerGraphEdge(a.node_id, b.node_id, src_stats=stats_with(4)))
    graph.add_edge(PowerGraphEdge(a.node_id, b.node_id, src_stats=stats_with(6)))
    assert graph.num_edges == 1
    edge = graph.edges[(a.node_id, b.node_id)]
    assert edge.src_stats.hamming_sum == 10
    assert edge.merged_count == 2


def test_add_edge_ignores_self_loops_and_missing_nodes():
    graph = PowerGraph()
    a = make_node(graph)
    graph.add_edge(PowerGraphEdge(a.node_id, a.node_id))
    assert graph.num_edges == 0
    with pytest.raises(KeyError):
        graph.add_edge(PowerGraphEdge(a.node_id, 999))


def test_remove_node_drops_incident_edges():
    graph = PowerGraph()
    a, b, c = make_node(graph), make_node(graph), make_node(graph)
    graph.add_edge(PowerGraphEdge(a.node_id, b.node_id))
    graph.add_edge(PowerGraphEdge(b.node_id, c.node_id))
    graph.remove_node(b.node_id)
    assert graph.num_nodes == 2
    assert graph.num_edges == 0


def test_merge_nodes_redirects_edges_and_accumulates_stats():
    graph = PowerGraph()
    a, b, c = make_node(graph), make_node(graph), make_node(graph)
    a.result_stats = stats_with(3)
    b.result_stats = stats_with(5)
    graph.add_edge(PowerGraphEdge(a.node_id, c.node_id, src_stats=stats_with(1)))
    graph.add_edge(PowerGraphEdge(b.node_id, c.node_id, src_stats=stats_with(2)))
    graph.merge_nodes(a.node_id, b.node_id)
    assert graph.num_nodes == 2
    assert graph.nodes[a.node_id].merged_count == 2
    assert graph.nodes[a.node_id].result_stats.hamming_sum == 8
    # The two edges to c become one with merged statistics.
    assert graph.num_edges == 1
    assert graph.edges[(a.node_id, c.node_id)].src_stats.hamming_sum == 3


def test_merge_nodes_avoids_self_loops():
    graph = PowerGraph()
    a, b = make_node(graph), make_node(graph)
    graph.add_edge(PowerGraphEdge(a.node_id, b.node_id))
    graph.merge_nodes(a.node_id, b.node_id)
    assert graph.num_edges == 0
    assert graph.num_nodes == 1


def test_traversal_helpers():
    graph = PowerGraph()
    a, b, c = make_node(graph), make_node(graph), make_node(graph)
    graph.add_edge(PowerGraphEdge(a.node_id, b.node_id))
    graph.add_edge(PowerGraphEdge(a.node_id, c.node_id))
    assert set(graph.successors(a.node_id)) == {b.node_id, c.node_id}
    assert graph.predecessors(b.node_id) == [a.node_id]
    assert len(graph.out_edges(a.node_id)) == 2
    assert len(graph.in_edges(c.node_id)) == 1
    arithmetic_nodes = graph.nodes_where(lambda n: n.is_arithmetic)
    assert len(arithmetic_nodes) == 3


def test_duplicate_node_id_rejected():
    graph = PowerGraph()
    node = make_node(graph)
    with pytest.raises(ValueError):
        graph.add_node(node)
