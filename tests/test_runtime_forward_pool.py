"""Pooled prediction: shared-memory parameter blocks + the ForwardPool.

Determinism contract under test: sharding the packed forward across worker
processes on read-only shared-memory weights produces **bitwise-identical**
predictions to the serial ``PowerGear.predict_batch``, because each shard
runs the same member code on byte-identical inputs and the contiguous-shard
merge rebuilds the member stack in order.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.backend import use_backend
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime import ForwardPool, SharedParameterBlock, attach_parameter_block
from repro.runtime.pool import ForwardTask

from test_serve_service import build_synthetic_samples


@pytest.fixture(scope="module")
def fitted_ensemble():
    samples = build_synthetic_samples(40, seed=21)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=10, num_layers=2),
            training=TrainingConfig(epochs=3, batch_size=16),
            ensemble=EnsembleConfig(folds=3, seeds=(0, 1)),  # 6 members
        )
    ).fit(samples[:28])
    return model, samples


# ----------------------------------------------------- shared parameter block


def test_shared_parameter_block_roundtrip():
    rng = np.random.default_rng(0)
    members = [
        [rng.standard_normal((3, 4)), rng.standard_normal(4)],
        [rng.standard_normal((3, 4)), rng.standard_normal(4)],
    ]

    def check_views(views) -> None:
        # Scoped helper: the borrowed views must all be dead before the
        # segment is closed (they export pointers into its mapping).
        for member_views, member in zip(views, members):
            for view, array in zip(member_views, member):
                assert view.tobytes() == np.asarray(array).tobytes()
                assert not view.flags.writeable

    block = SharedParameterBlock.create(members)
    try:
        assert block.nbytes == 2 * (12 + 4) * 8
        check_views(block.views())
        # The spec round-trips through pickle (it rides in pool initargs).
        spec = pickle.loads(pickle.dumps(block.spec))
        shm, attached = attach_parameter_block(spec)
        try:
            check_views(attached)
        finally:
            del attached
            shm.close()
    finally:
        block.unlink()


def test_shared_parameter_block_rejects_empty():
    with pytest.raises(ValueError):
        SharedParameterBlock.create([])


# ------------------------------------------------------------- forward pool


def test_forward_pool_matches_serial_bitwise(fitted_ensemble):
    model, samples = fitted_ensemble
    queries = samples[28:]
    with use_backend("numpy"):
        reference = model.predict_batch(queries, batch_size=5)
    with ForwardPool(model, num_workers=2) as pool:
        pooled = pool.predict_batch(queries, batch_size=5)
        # A second batch reuses the warm workers and the same segment.
        again = pool.predict_batch(queries, batch_size=5)
    assert pooled.tobytes() == reference.tobytes()
    assert again.tobytes() == reference.tobytes()
    assert pool.stats.batches == 2
    assert pool.stats.designs == 2 * len(queries)
    assert pool.stats.shared_bytes > 0
    assert pool.stats.member_forwards == 2 * 3 * pool.num_members  # 3 chunks


def test_forward_pool_single_chunk_and_empty(fitted_ensemble):
    model, samples = fitted_ensemble
    queries = samples[28:]
    with ForwardPool(model, num_workers=3) as pool:
        assert pool.predict_batch([]).shape == (0,)
        with use_backend("numpy"):
            reference = model.predict_batch(queries)
        assert pool.predict_batch(queries).tobytes() == reference.tobytes()


def test_forward_tasks_carry_no_weights(fitted_ensemble):
    """The no-per-task-weight-pickling contract, enforced structurally."""
    model, samples = fitted_ensemble
    packed = model.ensemble.members[0].model.prepare_graph(samples[0].graph)
    task = ForwardTask(chunk_id=0, member_start=0, member_stop=3, graph=packed)
    payload = pickle.dumps(task)
    weights = sum(
        parameter.data.nbytes
        for member in model.ensemble.members
        for parameter in member.model.parameters()
    )
    # The task pickles the packed graph only; the ensemble's weights are an
    # order of magnitude bigger and live in the shared segment instead.
    assert len(payload) < weights / 4
    restored = pickle.loads(payload)
    assert restored.member_stop == 3
    assert restored.graph.num_nodes == packed.num_nodes


def test_forward_pool_requires_ensemble():
    samples = build_synthetic_samples(30, seed=2)
    single = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=8, num_layers=1),
            training=TrainingConfig(epochs=2, batch_size=16),
            ensemble=None,
        )
    ).fit(samples[:24])
    with pytest.raises(ValueError):
        ForwardPool(single, num_workers=2)
    with pytest.raises(ValueError):
        ForwardPool(single, num_workers=1)


def test_forward_pool_close_is_idempotent_and_final(fitted_ensemble):
    model, samples = fitted_ensemble
    pool = ForwardPool(model, num_workers=2)
    assert pool.predict_batch(samples[28:30]).shape == (2,)
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.predict_batch(samples[28:30])


def test_service_degrades_serially_when_pool_dies_mid_request(fitted_ensemble):
    """A closed pool (RuntimeError from ForwardPool, ValueError from the raw
    multiprocessing pool) must degrade the request to the serial path, not
    fail it — predictions are identical either way."""
    from repro.runtime import RuntimeConfig
    from repro.serve import EstimateRequest, PowerEstimationService

    model, samples = fitted_ensemble
    queries = samples[28:32]
    requests = [EstimateRequest.from_sample(s) for s in queries]
    with PowerEstimationService(model, batch_size=4) as serial_service:
        reference = [r.power for r in serial_service.estimate_many(requests)]

    runtime = RuntimeConfig(forward_workers=2, forward_min_members=2)
    for error in (RuntimeError("pool closed"), ValueError("Pool not running")):
        with PowerEstimationService(model, batch_size=4, runtime=runtime) as service:
            pool = service._forward_pool_handle()
            assert pool is not None

            def broken_predict(*args, _error=error, **kwargs):
                raise _error

            pool.predict_batch = broken_predict
            responses = service.estimate_many(requests)
            assert [r.power for r in responses] == reference
            snapshot = service.metrics.snapshot()
            assert snapshot["pooled_predicted"] == 0
            # The fault is visible, and the broken pool is retired: later
            # batches skip the doomed round-trip entirely.
            assert snapshot["pooled_errors"] == 1
            assert service._forward_pool_handle() is None
            service.cache.clear()
            again = service.estimate_many(requests)
            assert [r.power for r in again] == reference
            assert service.metrics.snapshot()["pooled_errors"] == 1


def test_forward_pool_spawn_start_method(fitted_ensemble):
    """The shared segment also reaches spawn workers (no fork inheritance)."""
    model, samples = fitted_ensemble
    queries = samples[28:32]
    with use_backend("numpy"):
        reference = model.predict_batch(queries)
    with ForwardPool(model, num_workers=2, start_method="spawn") as pool:
        assert pool.predict_batch(queries).tobytes() == reference.tobytes()
