"""Pooled prediction: shared-memory parameter blocks + the ForwardPool.

Determinism contract under test: sharding the packed forward across worker
processes on read-only shared-memory weights produces **bitwise-identical**
predictions to the serial ``PowerGear.predict_batch``, because each shard
runs the same member code on byte-identical inputs and the contiguous-shard
merge rebuilds the member stack in order.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.backend import use_backend
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime import ForwardPool, SharedParameterBlock, attach_parameter_block
from repro.runtime.pool import ForwardTask

from test_serve_service import build_synthetic_samples


@pytest.fixture(scope="module")
def fitted_ensemble():
    samples = build_synthetic_samples(40, seed=21)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=10, num_layers=2),
            training=TrainingConfig(epochs=3, batch_size=16),
            ensemble=EnsembleConfig(folds=3, seeds=(0, 1)),  # 6 members
        )
    ).fit(samples[:28])
    return model, samples


# ----------------------------------------------------- shared parameter block


def test_shared_parameter_block_roundtrip():
    rng = np.random.default_rng(0)
    members = [
        [rng.standard_normal((3, 4)), rng.standard_normal(4)],
        [rng.standard_normal((3, 4)), rng.standard_normal(4)],
    ]

    def check_views(views) -> None:
        # Scoped helper: the borrowed views must all be dead before the
        # segment is closed (they export pointers into its mapping).
        for member_views, member in zip(views, members):
            for view, array in zip(member_views, member):
                assert view.tobytes() == np.asarray(array).tobytes()
                assert not view.flags.writeable

    block = SharedParameterBlock.create(members)
    try:
        assert block.nbytes == 2 * (12 + 4) * 8
        check_views(block.views())
        # The spec round-trips through pickle (it rides in pool initargs).
        spec = pickle.loads(pickle.dumps(block.spec))
        shm, attached = attach_parameter_block(spec)
        try:
            check_views(attached)
        finally:
            del attached
            shm.close()
    finally:
        block.unlink()


def test_shared_parameter_block_rejects_empty():
    with pytest.raises(ValueError):
        SharedParameterBlock.create([])


# ------------------------------------------------------------- forward pool


def test_forward_pool_matches_serial_bitwise(fitted_ensemble):
    model, samples = fitted_ensemble
    queries = samples[28:]
    with use_backend("numpy"):
        reference = model.predict_batch(queries, batch_size=5)
    with ForwardPool(model, num_workers=2) as pool:
        pooled = pool.predict_batch(queries, batch_size=5)
        # A second batch reuses the warm workers and the same segment.
        again = pool.predict_batch(queries, batch_size=5)
    assert pooled.tobytes() == reference.tobytes()
    assert again.tobytes() == reference.tobytes()
    assert pool.stats.batches == 2
    assert pool.stats.designs == 2 * len(queries)
    assert pool.stats.shared_bytes > 0
    assert pool.stats.member_forwards == 2 * 3 * pool.num_members  # 3 chunks


def test_forward_pool_single_chunk_and_empty(fitted_ensemble):
    model, samples = fitted_ensemble
    queries = samples[28:]
    with ForwardPool(model, num_workers=3) as pool:
        assert pool.predict_batch([]).shape == (0,)
        with use_backend("numpy"):
            reference = model.predict_batch(queries)
        assert pool.predict_batch(queries).tobytes() == reference.tobytes()


def test_forward_tasks_carry_no_weights_and_no_graphs(fitted_ensemble):
    """The payload-free task contract, enforced structurally.

    A task is a shared-segment spec plus slice bounds: neither the ensemble's
    weights nor the packed batch's arrays ride in the pickle — both live in
    shared memory, attached once per worker.
    """
    from repro.runtime.shm import SharedArrayBundle

    model, samples = fitted_ensemble
    packed = model.ensemble.members[0].model.prepare_graph(samples[0].graph)
    bundle = SharedArrayBundle.create(
        {
            "node_features": np.asarray(packed.node_features, dtype=np.float64),
            "edge_index": np.asarray(packed.edge_index, dtype=np.int64),
        }
    )
    try:
        task = ForwardTask(
            chunk_id=0,
            bundle=bundle.spec,
            member_start=0,
            member_stop=3,
            graph_start=0,
            graph_stop=1,
        )
        payload = pickle.dumps(task)
        # Far smaller than either the batch arrays or the weights: the pickle
        # carries names, shapes and integers only.
        assert len(payload) < 2048
        assert len(payload) < packed.node_features.nbytes
        restored = pickle.loads(payload)
        assert restored.member_stop == 3
        assert restored.bundle.shm_name == bundle.spec.shm_name
    finally:
        bundle.unlink()


def test_forward_pool_accepts_single_model_and_requires_fitted(monkeypatch):
    # Tiny forward segments force a multi-segment pack, so the graph axis
    # genuinely shards (several tasks) instead of degenerating to one task.
    monkeypatch.setenv("REPRO_FORWARD_SEGMENT_NODES", "24")
    samples = build_synthetic_samples(30, seed=2)
    single = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=8, num_layers=1),
            training=TrainingConfig(epochs=2, batch_size=16),
            ensemble=None,
        )
    ).fit(samples[:24])
    queries = samples[24:]
    with use_backend("numpy"):
        reference = single.predict_batch(queries)
    # A single-model flow shards the graph axis (it has no member axis).
    with ForwardPool(single, num_workers=2, shard_axis="graphs") as pool:
        assert pool.num_members == 1
        pooled = pool.predict_batch(queries)
    assert pooled.tobytes() == reference.tobytes()
    assert pool.stats.shard_axis == "graphs"
    assert pool.stats.shards == 2
    with pytest.raises(ValueError):
        ForwardPool(single, num_workers=1)
    with pytest.raises(ValueError):
        ForwardPool(single, num_workers=2, shard_axis="diagonal")
    unfitted = PowerGear(PowerGearConfig(target="dynamic", ensemble=None))
    with pytest.raises(ValueError):
        ForwardPool(unfitted, num_workers=2)


def test_forward_pool_close_is_idempotent_and_final(fitted_ensemble):
    model, samples = fitted_ensemble
    pool = ForwardPool(model, num_workers=2)
    assert pool.predict_batch(samples[28:30]).shape == (2,)
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.predict_batch(samples[28:30])


def test_service_degrades_serially_on_non_crash_pool_errors(fitted_ensemble):
    """A closed pool (RuntimeError from ForwardPool, RuntimeError from the
    shut-down executor) must degrade the request to the serial path, not
    fail it — predictions are identical either way.  Non-crash errors do
    NOT retire the pool or consume restart budget: pooling stays available
    for later batches (only `pooled_errors` counts the degradation)."""
    from repro.runtime import ForwardPool, RuntimeConfig
    from repro.serve import EstimateRequest, PowerEstimationService

    model, samples = fitted_ensemble
    queries = samples[28:32]
    requests = [EstimateRequest.from_sample(s) for s in queries]
    with PowerEstimationService(model, batch_size=4) as serial_service:
        reference = [r.power for r in serial_service.estimate_many(requests)]

    runtime = RuntimeConfig(forward_workers=2, forward_min_members=2)
    for error in (RuntimeError("pool closed"), ValueError("Pool not running")):
        with PowerEstimationService(model, batch_size=4, runtime=runtime) as service:
            attempts = {"count": 0}

            def broken_predict(self, *args, _error=error, _attempts=attempts, **kwargs):
                _attempts["count"] += 1
                raise _error

            with pytest.MonkeyPatch.context() as patcher:
                patcher.setattr(ForwardPool, "predict_batch", broken_predict)
                responses = service.estimate_many(requests)
                assert [r.power for r in responses] == reference
                snapshot = service.metrics.snapshot()
                assert snapshot["pooled_predicted"] == 0
                assert snapshot["pooled_errors"] == 1
                # No restart budget burnt, nothing retired: the pool is still
                # offered to the next batch (which degrades again, visibly).
                supervisor = service._forward_supervisor_handle(len(requests))
                assert supervisor is not None and not supervisor.retired
                assert supervisor.health()["restarts"] == 0
                service.cache.clear()
                again = service.estimate_many(requests)
                assert [r.power for r in again] == reference
                assert service.metrics.snapshot()["pooled_errors"] == 2
                assert attempts["count"] == 2  # pooling was re-attempted

            # With the fault gone, pooling works without any pool rebuild.
            service.cache.clear()
            recovered = service.estimate_many(requests)
            assert [r.power for r in recovered] == reference
            assert service.metrics.snapshot()["pooled_predicted"] == len(requests)
            assert service.metrics.snapshot()["pool_restarts"] == 0


def test_service_retires_pool_after_persistent_non_crash_failures(fitted_ensemble):
    """A pool that fails deterministically WITHOUT crashing (e.g. its
    construction-time validation raises on every batch) must not re-pay the
    doomed setup forever: after `pool_max_restarts` consecutive non-crash
    failures the service retires it (a pooled success resets the streak)."""
    from repro.runtime import ForwardPool, RuntimeConfig
    from repro.serve import EstimateRequest, PowerEstimationService

    model, samples = fitted_ensemble
    requests = [EstimateRequest.from_sample(s) for s in samples[28:32]]
    runtime = RuntimeConfig(
        forward_workers=2, forward_min_members=2, pool_max_restarts=1
    )
    attempts = {"count": 0}

    def always_broken(self, *args, **kwargs):
        attempts["count"] += 1
        raise RuntimeError("member models do not rebuild with identical shapes")

    with PowerEstimationService(model, batch_size=4, runtime=runtime) as service:
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(ForwardPool, "predict_batch", always_broken)
            for batch in range(4):
                service.cache.clear()
                service.estimate_many(requests)  # always answered, serially
        # Strikes: 2 failures (budget 1) retired the pool; batches 3 and 4
        # went straight serial without another doomed pool round-trip.
        assert attempts["count"] == 2
        supervisor = service._forward_supervisor_handle(len(requests))
        assert supervisor.retired
        assert "non-crash" in supervisor.health()["last_fault"]
        assert service.health()["status"] == "degraded"
        assert service.metrics.snapshot()["pooled_errors"] == 2
        assert service.metrics.snapshot()["pool_restarts"] == 0


def test_request_errors_do_not_strike_the_pool(fitted_ensemble):
    """A batch that fails identically on the serial retry was a bad request,
    not a broken pool: the error propagates and no strike is recorded, so a
    streak of bad requests can never retire a healthy pool."""
    from repro.flow.powergear import PowerGear
    from repro.runtime import ForwardPool, RuntimeConfig
    from repro.serve import EstimateRequest, PowerEstimationService

    model, samples = fitted_ensemble
    requests = [EstimateRequest.from_sample(s) for s in samples[28:32]]
    runtime = RuntimeConfig(
        forward_workers=2, forward_min_members=2, pool_max_restarts=0
    )

    def data_error(self, *args, **kwargs):
        raise ValueError("malformed graph payload")

    with PowerEstimationService(model, batch_size=4, runtime=runtime) as service:
        with pytest.MonkeyPatch.context() as patcher:
            # The same data makes BOTH paths raise: the request's fault.
            patcher.setattr(ForwardPool, "predict_batch", data_error)
            patcher.setattr(PowerGear, "predict_batch", data_error)
            for _ in range(3):
                with pytest.raises(ValueError, match="malformed"):
                    service.estimate_many(requests)
        supervisor = service._forward_supervisor_handle(len(requests))
        assert supervisor is not None and not supervisor.retired
        assert service._pool_strikes.get("forward", 0) == 0
        # With the bad data gone, pooling serves immediately.
        responses = service.estimate_many(requests)
        assert service.metrics.snapshot()["pooled_predicted"] == len(requests)
        assert len(responses) == len(requests)


def test_service_restarts_crashed_forward_pool_within_budget(fitted_ensemble):
    """A worker crash (WorkerCrashError) restarts the forward pool and the
    same batch retries pooled — bitwise-identical, with the fault visible."""
    from repro.runtime import ForwardPool, RuntimeConfig, WorkerCrashError
    from repro.serve import EstimateRequest, PowerEstimationService

    model, samples = fitted_ensemble
    queries = samples[28:32]
    requests = [EstimateRequest.from_sample(s) for s in queries]
    with use_backend("numpy"):
        reference = model.predict_batch(queries, batch_size=4)

    runtime = RuntimeConfig(
        forward_workers=2, forward_min_members=2, pool_restart_backoff_s=0.01
    )
    original = ForwardPool.predict_batch
    crashes = {"left": 1}

    def flaky_predict(self, *args, **kwargs):
        if crashes["left"]:
            crashes["left"] -= 1
            raise WorkerCrashError("injected forward worker crash")
        return original(self, *args, **kwargs)

    with PowerEstimationService(model, batch_size=4, runtime=runtime) as service:
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(ForwardPool, "predict_batch", flaky_predict)
            responses = service.estimate_many(requests)
        assert [r.power for r in responses] == list(reference)
        snapshot = service.metrics.snapshot()
        assert snapshot["pooled_predicted"] == len(requests)  # retried pooled
        assert snapshot["pooled_errors"] == 1  # the crash, visible
        assert snapshot["pool_restarts"] == 1
        stats = service.runtime_stats()["forward_pool"]
        assert stats["supervisor"]["restarts"] == 1
        assert stats["supervisor"]["state"] == "ok"
        assert service.health()["status"] == "ok"


def test_service_retires_forward_pool_after_restart_budget(fitted_ensemble):
    """Crashes past the budget retire the pool: serial forever, degraded health."""
    from repro.runtime import ForwardPool, RuntimeConfig, WorkerCrashError
    from repro.serve import EstimateRequest, PowerEstimationService

    model, samples = fitted_ensemble
    queries = samples[28:32]
    requests = [EstimateRequest.from_sample(s) for s in queries]
    with PowerEstimationService(model, batch_size=4) as serial_service:
        reference = [r.power for r in serial_service.estimate_many(requests)]

    runtime = RuntimeConfig(
        forward_workers=2,
        forward_min_members=2,
        pool_max_restarts=1,
        pool_restart_backoff_s=0.0,
    )

    def always_crash(self, *args, **kwargs):
        raise WorkerCrashError("persistent forward fault")

    with PowerEstimationService(model, batch_size=4, runtime=runtime) as service:
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(ForwardPool, "predict_batch", always_crash)
            responses = service.estimate_many(requests)
        # The request is answered on the identical serial path.
        assert [r.power for r in responses] == reference
        snapshot = service.metrics.snapshot()
        assert snapshot["pooled_predicted"] == 0
        assert snapshot["pooled_errors"] == 2  # one restart + the retiring fault
        assert snapshot["pool_restarts"] == 1
        supervisor = service._forward_supervisor_handle(len(requests))
        assert supervisor.retired
        assert service.health()["status"] == "degraded"
        assert service.health()["pools"]["forward"]["state"] == "retired"
        # Later batches go straight serial without pool round-trips.
        service.cache.clear()
        again = service.estimate_many(requests)
        assert [r.power for r in again] == reference
        assert service.metrics.snapshot()["pool_restarts"] == 1


def test_forward_pool_spawn_start_method(fitted_ensemble):
    """The shared segment also reaches spawn workers (no fork inheritance)."""
    model, samples = fitted_ensemble
    queries = samples[28:32]
    with use_backend("numpy"):
        reference = model.predict_batch(queries)
    with ForwardPool(model, num_workers=2, start_method="spawn") as pool:
        assert pool.predict_batch(queries).tobytes() == reference.tobytes()
