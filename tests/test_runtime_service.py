"""Service-level tests of the parallel runtime: the determinism invariants.

The three acceptance invariants of the runtime subsystem:

* pooled ``estimate_many`` is bitwise-equal to the serial path,
* coalesced ``estimate`` calls return exactly what direct calls return,
* a restarted service on the same persistent cache dir re-serves its warm set
  from disk with identical predictions and zero featurisation.
"""

import threading

import numpy as np
import pytest

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.runtime import RuntimeConfig
from repro.serve import EstimateRequest, PowerEstimationService, ServiceMetrics

SERVICE_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=10)


@pytest.fixture(scope="module")
def served_model(small_dataset):
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    return model


@pytest.fixture(scope="module")
def atax_requests():
    generator = DatasetGenerator(SERVICE_CONFIG)
    kernel = polybench_kernel("atax", SERVICE_CONFIG.kernel_size)
    return [
        EstimateRequest(kernel="atax", directives=directives)
        for directives in generator.design_space_for(kernel)
    ]


def build_service(model, **runtime_kwargs) -> PowerEstimationService:
    runtime = RuntimeConfig(**runtime_kwargs) if runtime_kwargs else None
    return PowerEstimationService(
        model, generator=DatasetGenerator(SERVICE_CONFIG), runtime=runtime
    )


def test_runtime_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(num_workers=-1)
    with pytest.raises(ValueError):
        RuntimeConfig(start_method="thread")
    with pytest.raises(ValueError):
        RuntimeConfig(coalesce_max_batch=0)
    with pytest.raises(ValueError):
        RuntimeConfig(coalesce_window_ms=-1.0)
    with pytest.raises(ValueError):
        RuntimeConfig(persistent_cache_max_bytes=0)
    defaults = RuntimeConfig()
    assert not defaults.parallel_featurisation
    assert not defaults.coalescing_enabled
    assert not defaults.persistence_enabled


def test_pooled_estimate_many_is_bitwise_equal_to_serial(served_model, atax_requests):
    serial_service = build_service(served_model)
    serial = serial_service.estimate_many(atax_requests)

    with build_service(
        served_model, num_workers=2, min_designs_per_worker=1
    ) as pooled_service:
        pooled = pooled_service.estimate_many(atax_requests)
        snapshot = pooled_service.metrics.snapshot()
        assert snapshot["pooled_featurised"] == len(atax_requests)
        assert pooled_service.runtime_stats()["pool"]["designs"] == len(atax_requests)

    # Bitwise: not allclose — the exact same floats.
    assert [response.power for response in pooled] == [
        response.power for response in serial
    ]
    assert [response.directives for response in pooled] == [
        response.directives for response in serial
    ]


def test_small_batches_stay_serial(served_model, atax_requests):
    """Below the per-worker threshold the pool is bypassed entirely."""
    with build_service(
        served_model, num_workers=2, min_designs_per_worker=100
    ) as service:
        service.estimate_many(atax_requests[:2])
        assert service.metrics.snapshot()["pooled_featurised"] == 0
        pool_stats = service.runtime_stats()["pool"]
        assert pool_stats is None or pool_stats["batches"] == 0


def test_coalesced_estimate_equals_direct_call(served_model, atax_requests):
    """Coalesced responses equal direct ones to floating-point round-off.

    Featurisation (and therefore every cache key) is bitwise-identical on both
    paths; the predicted values go through `predict_batch` with different pack
    sizes, whose contract is equality to round-off (<< 1e-8), so that is what
    is asserted for the power values.
    """
    direct_service = build_service(served_model)
    direct = direct_service.estimate_many(atax_requests)

    with build_service(
        served_model, coalesce_window_ms=250.0, coalesce_max_batch=5
    ) as service:
        results = [None] * len(atax_requests)

        def call(slot: int) -> None:
            results[slot] = service.estimate(atax_requests[slot])

        threads = [
            threading.Thread(target=call, args=(slot,))
            for slot in range(len(atax_requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        assert np.allclose(
            [response.power for response in results],
            [response.power for response in direct],
            atol=1e-8,
        )
        assert [response.directives for response in results] == [
            response.directives for response in direct
        ]
        coalescer = service.runtime_stats()["coalescer"]
        assert coalescer["items"] == len(atax_requests)
        # 10 concurrent callers over max_batch=5 cannot take 10 batches.
        assert coalescer["batches"] < len(atax_requests)


def test_coalesced_bad_request_fails_alone(served_model, atax_requests):
    """One caller's bad request must not poison its batch-mates' responses."""
    direct_service = build_service(served_model)
    good_direct = direct_service.estimate(atax_requests[0])

    with build_service(
        served_model, coalesce_window_ms=250.0, coalesce_max_batch=2
    ) as service:
        outcomes = [None, None]

        def call(slot: int, request) -> None:
            try:
                outcomes[slot] = service.estimate(request)
            except Exception as error:  # noqa: BLE001 - the asserted outcome
                outcomes[slot] = error

        bad_request = EstimateRequest(
            kernel="no-such-kernel", directives=atax_requests[0].directives
        )
        threads = [
            threading.Thread(target=call, args=(0, atax_requests[0])),
            threading.Thread(target=call, args=(1, bad_request)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

    assert isinstance(outcomes[1], Exception)
    assert not isinstance(outcomes[0], Exception)
    assert outcomes[0].power == good_direct.power


def test_persistent_cache_survives_service_restart(served_model, atax_requests, tmp_path):
    """Acceptance: a restarted service serves its second run from disk."""
    cache_dir = tmp_path / "warm"
    with build_service(
        served_model, persistent_cache_dir=cache_dir
    ) as first_service:
        first = first_service.estimate_many(atax_requests)
        assert first_service.metrics.snapshot()["featurised"] == len(atax_requests)

    # A brand-new process would look exactly like this: fresh service object,
    # fresh memory tiers, same directory.
    with build_service(
        served_model, persistent_cache_dir=cache_dir
    ) as second_service:
        second = second_service.estimate_many(atax_requests)
        snapshot = second_service.metrics.snapshot()
        persistent = second_service.cache.stats()["persistent"]

    assert [response.power for response in second] == [
        response.power for response in first
    ]
    assert all(r.cached_features and r.cached_prediction for r in second)
    assert snapshot["featurised"] == 0
    assert snapshot["predicted"] == 0
    assert persistent["hit_rate"] > 0


def test_explore_runs_on_the_runtime(served_model, tmp_path):
    """`explore` featurises its candidate space through the runtime-backed path."""
    with build_service(
        served_model,
        num_workers=2,
        min_designs_per_worker=1,
        persistent_cache_dir=tmp_path / "dse",
    ) as service:
        report = service.explore("atax", budget=0.4)
        assert report.num_candidates > 0
        assert service.metrics.snapshot()["pooled_featurised"] == report.num_candidates
        # Every sampled candidate went through the predictor in exactly one of
        # the recorded per-iteration batches.
        batched = [i for entry in report.result.history for i in entry["new_batch"]]
        assert sorted(batched) == sorted(report.result.sampled_indices)

    # The explored working set survives the restart: re-exploring featurises
    # nothing.
    with build_service(
        served_model,
        persistent_cache_dir=tmp_path / "dse",
    ) as warm_service:
        warm_report = warm_service.explore("atax", budget=0.4)
        assert warm_service.metrics.snapshot()["featurised"] == 0
        assert warm_report.adrs == report.adrs


def test_service_metrics_record_is_thread_safe():
    metrics = ServiceMetrics()
    threads = [
        threading.Thread(
            target=lambda: [
                metrics.record(requests=1, designs=2, total_seconds=0.5)
                for _ in range(200)
            ]
        )
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snapshot = metrics.snapshot()
    assert snapshot["requests"] == 1600
    assert snapshot["designs"] == 3200
    assert snapshot["total_seconds"] == pytest.approx(800.0)
    with pytest.raises(AttributeError):
        metrics.record(nonsense=1)
    with pytest.raises(AttributeError):
        metrics.record(_lock=1)


def test_close_is_idempotent_and_degrades_to_serial(served_model, atax_requests):
    service = build_service(
        served_model, coalesce_window_ms=10.0, num_workers=2, min_designs_per_worker=1
    )
    service.close()
    service.close()
    # The service stays usable but never resurrects worker processes, and
    # estimate() falls back to the direct path instead of the closed batcher.
    responses = service.estimate_many(atax_requests[:3])
    assert len(responses) == 3
    single = service.estimate(atax_requests[0])
    assert single.power == responses[0].power
    assert service.metrics.snapshot()["pooled_featurised"] == 0
    assert service.runtime_stats()["pool"] is None
    assert service.runtime_stats()["coalescer"] is None
