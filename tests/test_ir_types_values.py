"""Tests for the IR type system and value hierarchy."""

import pytest

from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    VoidType,
    element_type,
)
from repro.ir.values import Argument, ArgumentDirection, Constant


def test_int_type_width_and_str():
    assert IntType(32).bit_width == 32
    assert str(IntType(8)) == "i8"


def test_int_type_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        IntType(0)


def test_float_type_widths():
    assert FloatType(32).bit_width == 32
    assert FloatType(64).bit_width == 64
    with pytest.raises(ValueError):
        FloatType(16)


def test_array_type_shape_and_elements():
    array = ArrayType(FloatType(32), (4, 8))
    assert array.num_elements == 32
    assert array.bit_width == 32 * 32
    assert "4 x 8" in str(array)


def test_array_type_rejects_bad_shapes():
    with pytest.raises(ValueError):
        ArrayType(FloatType(32), ())
    with pytest.raises(ValueError):
        ArrayType(FloatType(32), (0, 4))
    with pytest.raises(ValueError):
        ArrayType(ArrayType(FloatType(32), (2,)), (2,))


def test_pointer_and_void_types():
    pointer = PointerType(ArrayType(FloatType(32), (4,)))
    assert pointer.bit_width == 32  # address bus width
    assert VoidType().bit_width == 0


def test_element_type_unwraps_pointers_and_arrays():
    pointer = PointerType(ArrayType(FloatType(32), (4,)))
    assert element_type(pointer) == FloatType(32)
    assert element_type(IntType(16)) == IntType(16)


def test_constant_coerces_to_type():
    assert Constant(3.7, IntType(32)).value == 3
    assert Constant(2, FloatType(32)).value == 2.0


def test_argument_direction_and_unique_uids():
    a = Argument("x", FloatType(32), ArgumentDirection.IN)
    b = Argument("y", FloatType(32), ArgumentDirection.OUT)
    assert a.direction == ArgumentDirection.IN
    assert a.uid != b.uid
