"""The observability determinism contract: tracing never changes predictions.

Instrumentation is side-band by construction — spans, counters and events
record *about* the request path without touching request data — so a service
with tracing on must return bitwise-identical predictions to one with
tracing off, on every path the runtime has: fresh featurisation, warm
memory-cache hits, and pooled (multi-process) featurisation where worker
span payloads ride back alongside the shard results.
"""

from __future__ import annotations

import pytest

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.runtime import RuntimeConfig
from repro.serve import EstimateRequest, PowerEstimationService

SERVICE_CONFIG = DatasetConfig(kernel_size=6, designs_per_kernel=10)


@pytest.fixture(scope="module")
def served_model(small_dataset):
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=12, num_layers=2),
            training=TrainingConfig(epochs=8, batch_size=16),
            ensemble=None,
        )
    ).fit(small_dataset.samples)
    return model


@pytest.fixture(scope="module")
def atax_requests():
    generator = DatasetGenerator(SERVICE_CONFIG)
    kernel = polybench_kernel("atax", SERVICE_CONFIG.kernel_size)
    return [
        EstimateRequest(kernel="atax", directives=directives)
        for directives in generator.design_space_for(kernel)
    ]


def build_service(model, *, tracing: bool, **runtime_kwargs) -> PowerEstimationService:
    runtime = RuntimeConfig(tracing=tracing, **runtime_kwargs)
    return PowerEstimationService(
        model, generator=DatasetGenerator(SERVICE_CONFIG), runtime=runtime
    )


def powers(responses) -> list[float]:
    return [response.power for response in responses]


def test_tracing_on_off_bitwise_identical_fresh_and_cached(served_model, atax_requests):
    """Fresh featurisation AND the warm re-serve: same floats either way."""
    with build_service(served_model, tracing=True) as traced, build_service(
        served_model, tracing=False
    ) as untraced:
        # Fresh path: every design featurises and forwards.
        fresh_on = powers(traced.estimate_many(atax_requests))
        fresh_off = powers(untraced.estimate_many(atax_requests))
        assert fresh_on == fresh_off  # bitwise, not allclose

        # Cached path: the repeat is served out of the prediction cache.
        warm_on = powers(traced.estimate_many(atax_requests))
        warm_off = powers(untraced.estimate_many(atax_requests))
        assert warm_on == fresh_on
        assert warm_off == fresh_off
        assert traced.cache.stats()["predictions"]["hits"] >= len(atax_requests)

        # The traced service actually traced; the untraced one recorded nothing.
        assert traced.obs.tracer.stats()["finished"] >= 2
        assert untraced.obs.tracer.stats() == {
            "enabled": False,
            "started": 0,
            "finished": 0,
            "ring": 0,
        }


def test_tracing_on_off_bitwise_identical_pooled(served_model, atax_requests):
    """The pooled path: worker span payloads ride along, results unchanged."""
    with build_service(
        served_model, tracing=True, num_workers=2, min_designs_per_worker=1
    ) as traced, build_service(
        served_model, tracing=False, num_workers=2, min_designs_per_worker=1
    ) as untraced:
        pooled_on = traced.estimate_many(atax_requests)
        pooled_off = untraced.estimate_many(atax_requests)
        assert traced.metrics.snapshot()["pooled_featurised"] == len(atax_requests)
        assert untraced.metrics.snapshot()["pooled_featurised"] == len(atax_requests)
        assert powers(pooled_on) == powers(pooled_off)

        # The traced run grafted real worker spans (pids from the pool).
        (trace,) = traced.obs.tracer.recent(limit=1)
        shards = [
            span
            for span in _walk(trace["root"])
            if span["name"] == "featurise.shard"
        ]
        assert shards, "pooled featurisation left no worker shard spans"
        import os

        assert all(span["pid"] != os.getpid() for span in shards)

        # Heartbeats flowed regardless of tracing (liveness is not a tracing
        # feature): both pools saw their workers.
        for service in (traced, untraced):
            health = service.health()
            beats = health["pools"]["featurisation"].get("heartbeats", {})
            assert len(beats) >= 1


def _walk(span: dict):
    yield span
    for child in span.get("children", []):
        yield from _walk(child)
