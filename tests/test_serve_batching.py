"""Tests for the batched inference engine (serve.batching + gnn changes)."""

import numpy as np
import pytest

from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.base import GraphBatch
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.hecgnn import HECGNN
from repro.gnn.trainer import TrainingConfig
from repro.graph.hetero_graph import RELATION_TYPES, HeteroGraph
from repro.serve.batching import iter_chunks, pack_graphs


def small_powergear(ensemble: bool = True) -> PowerGear:
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=16, num_layers=2),
            training=TrainingConfig(epochs=6, batch_size=16),
            ensemble=EnsembleConfig(folds=2, seeds=(0,)) if ensemble else None,
        )
    )


def test_pack_graphs_offsets_and_relations(random_graph_factory):
    graphs = [random_graph_factory(num_nodes=5 + i, num_edges=8 + i, seed=i) for i in range(4)]
    packed = pack_graphs(graphs)
    assert packed.num_graphs == 4
    assert packed.num_nodes == sum(g.num_nodes for g in graphs)
    assert packed.num_edges == sum(g.num_edges for g in graphs)
    for i, graph in enumerate(graphs):
        assert packed.node_slice(i).stop - packed.node_slice(i).start == graph.num_nodes
        assert packed.edge_slice(i).stop - packed.edge_slice(i).start == graph.num_edges
        # Per-relation bookkeeping matches each member graph's edge types.
        for relation in range(len(RELATION_TYPES)):
            assert packed.relation_edge_counts[i, relation] == int(
                (graph.edge_types == relation).sum()
            )
    assert packed.relation_edge_counts.sum() == packed.num_edges


def test_packed_split_helpers(random_graph_factory):
    graphs = [random_graph_factory(num_nodes=6, num_edges=10, seed=i) for i in range(3)]
    packed = pack_graphs(graphs)
    node_values = np.arange(packed.num_nodes, dtype=float)
    parts = packed.split_node_values(node_values)
    assert [len(p) for p in parts] == [g.num_nodes for g in graphs]
    edge_parts = packed.split_edge_values(np.arange(packed.num_edges))
    assert [len(p) for p in edge_parts] == [g.num_edges for g in graphs]
    assert np.array_equal(
        packed.split_graph_values(np.arange(3)), np.arange(3)
    )
    with pytest.raises(ValueError):
        packed.split_graph_values(np.arange(5))
    with pytest.raises(ValueError):
        pack_graphs([])


def test_iter_chunks_covers_range():
    assert [s for s in iter_chunks(7, 3)] == [slice(0, 3), slice(3, 6), slice(6, 7)]
    assert [s for s in iter_chunks(2, None)] == [slice(0, 2)]
    assert list(iter_chunks(0, None)) == []
    assert list(iter_chunks(0, 4)) == []
    with pytest.raises(ValueError):
        list(iter_chunks(4, 0))


def test_unbatch_inverts_batching(random_graph_factory):
    graphs = [random_graph_factory(num_nodes=5 + i, num_edges=9, seed=i) for i in range(3)]
    merged = HeteroGraph.batch_graphs(graphs)
    restored = merged.unbatch()
    assert len(restored) == len(graphs)
    for original, back in zip(graphs, restored):
        assert np.array_equal(original.node_features, back.node_features)
        assert np.array_equal(original.edge_index, back.edge_index)
        assert np.array_equal(original.edge_features, back.edge_features)
        assert np.array_equal(original.edge_types, back.edge_types)
        assert np.array_equal(
            original.metadata.reshape(-1), back.metadata.reshape(-1)
        )


def test_graph_batch_relation_ids_are_memoised(random_graph_factory):
    graph = random_graph_factory(num_nodes=8, num_edges=20, seed=3)
    batch = GraphBatch.from_graph(graph)
    ids_first = batch.relation_edge_ids(1, 4)
    ids_second = batch.relation_edge_ids(1, 4)
    assert ids_first is ids_second
    assert np.array_equal(ids_first, np.nonzero(graph.edge_types == 1)[0])
    # A single-relation view covers every edge.
    assert np.array_equal(batch.relation_edge_ids(0, 1), np.arange(graph.num_edges))


def test_predict_batch_matches_predict_ensemble(random_sample_factory):
    samples = random_sample_factory(36, seed=1)
    model = small_powergear(ensemble=True).fit(samples[:24])
    test = samples[24:]
    per_sample = model.predict(test)
    batched = model.predict_batch(test)
    chunked = model.predict_batch(test, batch_size=5)
    assert np.allclose(per_sample, batched, atol=1e-8)
    assert np.allclose(per_sample, chunked, atol=1e-8)
    assert model.predict_batch([]).shape == (0,)


def test_predict_batch_matches_predict_single_model(random_sample_factory):
    samples = random_sample_factory(30, seed=2)
    model = small_powergear(ensemble=False).fit(samples[:22])
    test = samples[22:]
    assert np.allclose(model.predict(test), model.predict_batch(test), atol=1e-8)


def test_gnn_predict_batch_size_argument(random_graph_factory):
    graphs = [random_graph_factory(num_nodes=6 + i, num_edges=12, seed=i) for i in range(7)]
    net = HECGNN(6, 4, 5, GNNConfig(hidden_dim=8, num_layers=2))
    loop = net.predict(graphs)
    batched = net.predict(graphs, batch_size=3)
    assert np.allclose(loop, batched, atol=1e-8)
    with pytest.raises(ValueError):
        net.predict(graphs, batch_size=0)


def test_predict_batch_handles_ablation_transforms(random_sample_factory):
    """Batched inference must agree under the undirected / homogeneous ablations."""
    samples = random_sample_factory(28, seed=4)
    config = PowerGearConfig(
        target="dynamic",
        gnn=GNNConfig(
            hidden_dim=12, num_layers=2, directed=False, heterogeneous=False
        ),
        training=TrainingConfig(epochs=5, batch_size=16),
        ensemble=None,
    )
    model = PowerGear(config).fit(samples[:20])
    test = samples[20:]
    assert np.allclose(model.predict(test), model.predict_batch(test), atol=1e-8)
