"""Tests for GraphSample, FeatureScaler and GraphDataset."""

import numpy as np
import pytest

from repro.graph.dataset import FeatureScaler, GraphDataset


def test_graph_sample_target_selection(random_sample_factory):
    sample = random_sample_factory(1)[0]
    assert sample.target("dynamic") == sample.dynamic_power
    assert sample.target("total") == sample.total_power
    assert sample.target("static") == sample.static_power
    with pytest.raises(ValueError):
        sample.target("leakage")


def test_scaler_standardises_training_features(random_sample_factory):
    samples = random_sample_factory(20)
    scaler = FeatureScaler().fit(samples)
    transformed = scaler.transform(samples)
    node_rows = np.concatenate([s.graph.node_features for s in transformed])
    assert abs(node_rows.mean()) < 0.2
    # Labels are untouched by scaling.
    assert transformed[0].dynamic_power == samples[0].dynamic_power


def test_scaler_requires_fit_before_transform(random_sample_factory):
    with pytest.raises(RuntimeError):
        FeatureScaler().transform_graph(random_sample_factory(1)[0].graph)
    with pytest.raises(ValueError):
        FeatureScaler().fit([])


def test_dataset_kernel_bookkeeping(small_dataset):
    assert set(small_dataset.kernels()) == {"atax", "gemm"}
    atax_only = small_dataset.by_kernel("atax")
    assert len(atax_only) > 0
    assert all(s.kernel == "atax" for s in atax_only)
    summary = small_dataset.summary()
    assert summary["num_samples"] == len(small_dataset)
    assert summary["avg_nodes"] > 0


def test_leave_one_out_split(small_dataset):
    train, test = small_dataset.leave_one_out("gemm")
    assert all(s.kernel != "gemm" for s in train)
    assert all(s.kernel == "gemm" for s in test)
    assert len(train) + len(test) == len(small_dataset)
    with pytest.raises(KeyError):
        small_dataset.leave_one_out("fft")


def test_kfold_indices_partition_everything(small_dataset):
    folds = small_dataset.kfold_indices(4, seed=0)
    assert len(folds) == 4
    all_validation = np.concatenate([valid for _, valid in folds])
    assert sorted(all_validation.tolist()) == list(range(len(small_dataset)))
    for train, valid in folds:
        assert set(train) & set(valid) == set()
    with pytest.raises(ValueError):
        small_dataset.kfold_indices(1)


def test_random_split_fractions(small_dataset):
    first, second = small_dataset.random_split(0.25, seed=1)
    assert len(first) + len(second) == len(small_dataset)
    assert len(second) == pytest.approx(len(small_dataset) * 0.25, abs=1)
    with pytest.raises(ValueError):
        small_dataset.random_split(1.5)


def test_targets_vector(small_dataset):
    dynamic = small_dataset.targets("dynamic")
    total = small_dataset.targets("total")
    assert dynamic.shape == (len(small_dataset),)
    assert np.all(total > dynamic)


def test_npz_round_trip(tmp_path, small_dataset):
    path = tmp_path / "dataset.npz"
    small_dataset.save_npz(path)
    restored = GraphDataset.load_npz(path)
    assert len(restored) == len(small_dataset)
    original, loaded = small_dataset[0], restored[0]
    assert loaded.kernel == original.kernel
    assert loaded.dynamic_power == pytest.approx(original.dynamic_power)
    assert np.allclose(loaded.graph.node_features, original.graph.node_features)
    assert np.array_equal(loaded.graph.edge_index, original.graph.edge_index)


def test_npz_round_trip_is_exact_and_complete(tmp_path, small_dataset):
    """Every sample survives bit-exactly, including JSON-safe extras."""
    path = tmp_path / "dataset.npz"
    small_dataset.save_npz(path)
    restored = GraphDataset.load_npz(path)
    for original, loaded in zip(small_dataset, restored):
        assert loaded.kernel == original.kernel
        assert loaded.directives == original.directives
        assert loaded.total_power == original.total_power
        assert loaded.dynamic_power == original.dynamic_power
        assert loaded.static_power == original.static_power
        assert loaded.latency_cycles == original.latency_cycles
        assert loaded.is_baseline == original.is_baseline
        assert np.array_equal(loaded.graph.node_features, original.graph.node_features)
        assert np.array_equal(loaded.graph.edge_features, original.graph.edge_features)
        assert np.array_equal(loaded.graph.edge_types, original.graph.edge_types)
        assert np.array_equal(loaded.graph.metadata, original.graph.metadata)
        assert np.array_equal(
            loaded.graph.node_is_arithmetic, original.graph.node_is_arithmetic
        )
        assert loaded.graph.node_names == original.graph.node_names
        # JSON-safe extras (e.g. the DSE config vector) survive the round trip;
        # heavyweight pipeline objects (the HLS report) are dropped.
        assert loaded.extras["config_vector"] == original.extras["config_vector"]
        assert "report" not in loaded.extras
