"""Tests for the power substrate: device, placement, ground truth, Vivado, runtime."""

import numpy as np
import pytest

from repro.activity.simulator import simulate_activity
from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.hls.report import run_hls
from repro.hls.resources import ResourceUsage
from repro.power.device import ZCU102, DeviceModel
from repro.power.ground_truth import GroundTruthPowerModel, PowerMeasurement
from repro.power.placement import PlacementSurrogate
from repro.power.runtime import RuntimeModel
from repro.power.vivado import VivadoCalibration, VivadoPowerEstimator


def test_device_constants_are_physical():
    assert ZCU102.voltage > 0
    assert ZCU102.frequency == 100e6
    assert ZCU102.vdd_squared_f == pytest.approx(0.85**2 * 100e6)
    assert 0 <= ZCU102.power_gating_efficiency <= 1


def test_placement_capacitance_scales_with_width_and_size():
    placement = PlacementSurrogate()
    small = ResourceUsage(500, 800, 4, 2)
    large = ResourceUsage(20000, 30000, 60, 30)
    narrow = placement.net_capacitance("d", "n1", bitwidth=8, resources=small)
    wide = placement.net_capacitance("d", "n1", bitwidth=32, resources=small)
    far = placement.net_capacitance("d", "n1", bitwidth=32, resources=large)
    assert wide.capacitance > narrow.capacitance
    assert far.capacitance > wide.capacitance
    assert far.wirelength > wide.wirelength


def test_placement_jitter_is_deterministic_but_net_specific():
    placement = PlacementSurrogate(seed=1)
    resources = ResourceUsage(1000, 1000, 4, 2)
    a1 = placement.net_capacitance("design", "netA", 32, resources)
    a2 = placement.net_capacitance("design", "netA", 32, resources)
    b = placement.net_capacitance("design", "netB", 32, resources)
    assert a1 == a2
    assert a1.capacitance != b.capacitance


def test_ground_truth_breakdown_and_measurement(gemm_baseline_result, gemm_activity):
    model = GroundTruthPowerModel(seed=0, noise=False)
    breakdown = model.breakdown(gemm_baseline_result, gemm_activity)
    assert breakdown.net_power > 0
    assert breakdown.static > breakdown.static_base
    measurement = model.measure(gemm_baseline_result, gemm_activity)
    assert measurement.total == pytest.approx(measurement.dynamic + measurement.static)
    assert 0.2 < measurement.total < 3.0
    assert 0.001 < measurement.dynamic < 1.0


def test_measurement_noise_is_reproducible(gemm_baseline_result, gemm_activity):
    a = GroundTruthPowerModel(seed=5).measure(gemm_baseline_result, gemm_activity)
    b = GroundTruthPowerModel(seed=5).measure(gemm_baseline_result, gemm_activity)
    c = GroundTruthPowerModel(seed=6).measure(gemm_baseline_result, gemm_activity)
    assert a.total == b.total
    assert a.total != c.total


def test_dynamic_power_grows_with_parallelism(gemm_kernel):
    model = GroundTruthPowerModel(noise=False)
    baseline = run_hls(gemm_kernel)
    unrolled = run_hls(
        gemm_kernel,
        DesignDirectives.from_dicts(
            {"k0": LoopPragmas(unroll_factor=3, pipeline=True)},
            {"A": ArrayPartition(4), "B": ArrayPartition(4)},
        ),
    )
    baseline_power = model.measure(baseline, simulate_activity(baseline.design, seed=1))
    unrolled_power = model.measure(unrolled, simulate_activity(unrolled.design, seed=1))
    assert unrolled_power.dynamic > baseline_power.dynamic


def test_dynamic_power_depends_on_data_profile(gemm_baseline_result, gemm_kernel):
    from repro.activity.stimuli import generate_stimuli

    model = GroundTruthPowerModel(noise=False)
    active = model.measure(
        gemm_baseline_result,
        simulate_activity(gemm_baseline_result.design, stimuli=generate_stimuli(gemm_kernel, 0, "uniform")),
    )
    quiet = model.measure(
        gemm_baseline_result,
        simulate_activity(gemm_baseline_result.design, stimuli=generate_stimuli(gemm_kernel, 0, "sparse")),
    )
    assert active.dynamic > quiet.dynamic


def test_power_measurement_validation():
    with pytest.raises(ValueError):
        PowerMeasurement(total=0.0, dynamic=0.0, static=0.0)


def test_vivado_estimator_overestimates_static(gemm_baseline_result, gemm_activity):
    estimate = VivadoPowerEstimator().estimate(gemm_baseline_result, gemm_activity)
    measured = GroundTruthPowerModel(noise=False).measure(gemm_baseline_result, gemm_activity)
    # No power gating: the raw static estimate far exceeds the measurement.
    assert estimate.static > measured.static * 1.5
    assert estimate.total > measured.total


def test_vivado_calibration_reduces_error():
    rng = np.random.default_rng(0)
    measured = rng.uniform(0.5, 1.0, 30)
    raw = 1.8 * measured + 0.9 + rng.normal(0, 0.01, 30)
    calibration = VivadoCalibration().fit(raw, measured, raw * 0.3, measured * 0.3)
    calibrated = calibration.calibrate_total(raw)
    assert np.mean(np.abs(calibrated - measured) / measured) < 0.05
    with pytest.raises(RuntimeError):
        VivadoCalibration().calibrate_total(raw)


def test_runtime_model_speedup_in_paper_range(small_dataset):
    ratios = [s.vivado_flow_seconds / s.powergear_flow_seconds for s in small_dataset]
    assert min(ratios) > 1.0
    assert max(ratios) < 30.0
    assert 1.3 < float(np.mean(ratios)) < 12.0


def test_runtime_model_components(gemm_baseline_result):
    runtimes = RuntimeModel().runtimes(gemm_baseline_result)
    assert runtimes.vivado_flow_seconds > runtimes.powergear_flow_seconds
    assert runtimes.hls_seconds > 0
    assert runtimes.speedup > 1.0


def test_custom_device_model_changes_power(gemm_baseline_result, gemm_activity):
    hot_device = DeviceModel(
        **{**ZCU102.__dict__, "name": "hot", "base_static_power": ZCU102.base_static_power * 2}
    )
    base = GroundTruthPowerModel(noise=False).measure(gemm_baseline_result, gemm_activity)
    hot = GroundTruthPowerModel(device=hot_device, noise=False).measure(
        gemm_baseline_result, gemm_activity
    )
    assert hot.static > base.static
