"""End-to-end integration tests across the whole PowerGear pipeline.

These tests exercise the paper's main claims at reduced scale:

* the full training-data pipeline runs for every PolyBench kernel,
* PowerGear can be trained on some applications and transferred to an unseen
  one with a finite, reasonable error,
* the DSE case study improves when driven by a more accurate predictor.
"""

import numpy as np

from repro.dse.explorer import DesignCandidate, DSEConfig, ParetoExplorer
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.evaluation import EvaluationConfig, LeaveOneOutEvaluator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_names


def test_pipeline_runs_for_every_polybench_kernel():
    config = DatasetConfig(kernel_size=6, designs_per_kernel=3)
    generator = DatasetGenerator(config)
    for name in polybench_names():
        dataset = generator.generate_kernel(name)
        assert len(dataset) == 3, name
        for sample in dataset:
            assert sample.graph.num_nodes > 3, name
            assert sample.dynamic_power > 0, name
            assert np.isfinite(sample.graph.node_features).all(), name


def test_powergear_transfers_to_unseen_kernel(small_dataset):
    train, test = small_dataset.leave_one_out("gemm")
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=24, num_layers=2, dropout=0.0),
            training=TrainingConfig(
                epochs=150, batch_size=16, learning_rate=3e-3, target="dynamic", seed=0
            ),
            ensemble=None,
        )
    )
    model.fit(train.samples)
    train_error = model.evaluate(train.samples)
    test_error = model.evaluate(test.samples)
    assert train_error < 40.0
    assert test_error < 120.0  # unseen application, tiny training set


def test_powergear_beats_mean_predictor_within_kernel(small_dataset):
    gemm = small_dataset.by_kernel("gemm")
    train, test = gemm.random_split(0.3, seed=0)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=24, num_layers=2, dropout=0.0),
            training=TrainingConfig(
                epochs=200, batch_size=8, learning_rate=3e-3, target="dynamic", seed=1,
                validation_fraction=0.0,
            ),
            ensemble=None,
        )
    )
    model.fit(train.samples)
    test_targets = test.targets("dynamic")
    mean_prediction = np.full_like(test_targets, train.targets("dynamic").mean())
    mean_error = float(np.mean(np.abs(mean_prediction - test_targets) / test_targets)) * 100
    model_error = model.evaluate(test.samples)
    assert model_error < mean_error


def test_vivado_baseline_beaten_on_total_power(small_dataset):
    config = EvaluationConfig(
        target="total",
        gnn=GNNConfig(hidden_dim=24, num_layers=2, dropout=0.0),
        training=TrainingConfig(
            epochs=150, batch_size=16, learning_rate=3e-3, target="total", seed=0
        ),
        ensemble=None,
    )
    evaluator = LeaveOneOutEvaluator(small_dataset, config)
    vivado = evaluator.evaluate_model("vivado", kernels=["atax"])
    powergear = evaluator.evaluate_model("powergear", kernels=["atax"])
    assert np.isfinite(vivado.per_kernel_error["atax"])
    assert np.isfinite(powergear.per_kernel_error["atax"])
    # At this deliberately tiny scale (one training kernel, few epochs) we only
    # require sane error magnitudes; the benchmark harness reproduces the
    # paper-scale comparison with realistic training budgets.
    assert vivado.per_kernel_error["atax"] < 100.0
    assert powergear.per_kernel_error["atax"] < 100.0


def test_dse_case_study_with_trained_predictor(small_dataset):
    gemm = small_dataset.by_kernel("gemm")
    train, _ = small_dataset.leave_one_out("gemm")
    predictor_model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=16, num_layers=2, dropout=0.0),
            training=TrainingConfig(
                epochs=60, batch_size=16, learning_rate=3e-3, target="dynamic", seed=0
            ),
            ensemble=None,
        )
    )
    predictor_model.fit(train.samples)

    candidates = [
        DesignCandidate(
            index=i,
            latency=float(s.latency_cycles),
            true_power=s.dynamic_power,
            config_vector=np.array(s.extras["config_vector"]),
            payload=s,
        )
        for i, s in enumerate(gemm.samples)
    ]

    def predictor(batch):
        return predictor_model.predict([c.payload for c in batch])

    result = ParetoExplorer(DSEConfig(initial_budget=0.2, total_budget=0.6, seed=0)).explore(
        candidates, predictor
    )
    assert result.adrs >= 0.0
    assert result.num_sampled <= len(candidates)
    assert result.exact_pareto_indices
