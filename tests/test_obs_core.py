"""Unit tests of the observability primitives (:mod:`repro.obs`).

Covers the four building blocks in isolation — tracer, metrics registry,
structured logs, event timeline — plus the :class:`~repro.obs.Observability`
facade's conveniences.  Integration through the serving stack lives in
``test_obs_http.py``; the determinism contract in ``test_obs_determinism.py``.
"""

from __future__ import annotations

import json
import logging
import math
import pickle
import threading

import pytest

from repro.obs import (
    CollectingHandler,
    EventLog,
    MetricsRegistry,
    Observability,
    Tracer,
    current_trace_ids,
    dump_event_logs,
    flatten_numeric,
    get_logger,
    json_safe,
    log_event,
    span_payload,
)

# ---------------------------------------------------------------------- tracer


def test_tracer_builds_nested_tree():
    tracer = Tracer(ring_size=4)
    with tracer.span("request", path="/v1/estimate") as root:
        assert tracer.active()
        with tracer.span("gateway") :
            with tracer.span("featurise", kernel="atax"):
                pass
        root.set_attribute("status", 200)
    assert not tracer.active()
    (trace,) = tracer.recent()
    assert trace["num_spans"] == 3
    assert trace["root"]["name"] == "request"
    assert trace["root"]["attributes"] == {"path": "/v1/estimate", "status": 200}
    (gateway,) = trace["root"]["children"]
    (featurise,) = gateway["children"]
    assert featurise["attributes"] == {"kernel": "atax"}
    assert featurise["duration_ms"] is not None
    assert trace["orphans"] == []


def test_tracer_ring_is_bounded_and_newest_first():
    tracer = Tracer(ring_size=3)
    for index in range(5):
        with tracer.span("r", index=index):
            pass
    recent = tracer.recent()
    assert [t["root"]["attributes"]["index"] for t in recent] == [4, 3, 2]
    assert tracer.stats() == {"enabled": True, "started": 5, "finished": 5, "ring": 3}
    assert tracer.recent(limit=1)[0]["root"]["attributes"]["index"] == 4


def test_tracer_find_and_request_id():
    tracer = Tracer()
    with tracer.span("request"):
        tracer.set_request_id("req-42")
        trace_id, _span_id = tracer.current_ids()
    found = tracer.find(trace_id)
    assert found is not None and found["request_id"] == "req-42"
    assert tracer.find("does-not-exist") is None


def test_tracer_error_span_status_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("request"):
            with tracer.span("stage"):
                raise ValueError("boom")
    (trace,) = tracer.recent()
    assert trace["root"]["status"] == "error"
    assert trace["root"]["children"][0]["attributes"]["error"] == "ValueError"


def test_disabled_tracer_is_inert():
    tracer = Tracer(enabled=False)
    with tracer.span("request") as span:
        span.set_attribute("ignored", True)  # no-op span accepts the call
        assert not tracer.active()
        assert tracer.current_ids() is None
        assert current_trace_ids() is None
        tracer.attach_payloads([span_payload("w", 0.0, 0.0)])
    assert tracer.recent() == []
    assert tracer.stats()["started"] == 0


def test_span_payloads_are_picklable_and_graft_with_pid():
    tracer = Tracer()
    payload = span_payload("featurise.shard", 123.0, 0.25, kernel="atax", designs=3)
    payload = pickle.loads(pickle.dumps(payload))  # the process-hop contract
    with tracer.span("featurise"):
        tracer.attach_payloads([payload])
    (trace,) = tracer.recent()
    (shard,) = trace["root"]["children"]
    assert shard["name"] == "featurise.shard"
    assert shard["pid"] == payload["pid"]
    assert shard["duration_ms"] == pytest.approx(250.0)
    assert shard["attributes"] == {"kernel": "atax", "designs": 3}


def test_spans_cross_threads_via_copied_context():
    import contextvars

    tracer = Tracer()
    with tracer.span("request"):
        ctx = contextvars.copy_context()

        def on_thread():
            with tracer.span("bridge"):
                pass

        worker = threading.Thread(target=ctx.run, args=(on_thread,))
        worker.start()
        worker.join()
    (trace,) = tracer.recent()
    assert [c["name"] for c in trace["root"]["children"]] == ["bridge"]


# --------------------------------------------------------------------- metrics


def test_histogram_quantiles_are_real():
    registry = MetricsRegistry()
    hist = registry.histogram("t_seconds", "test", buckets=(0.1, 0.2, 0.5, 1.0))
    for value in (0.05, 0.15, 0.15, 0.3, 0.7):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(1.35)
    assert 0.1 <= snap["p50"] <= 0.2  # interpolated inside the right bucket
    assert 0.5 <= snap["p95"] <= 1.0


def test_empty_histogram_never_emits_nan():
    registry = MetricsRegistry()
    hist = registry.histogram("t_seconds", "test")
    snap = hist.snapshot()
    assert snap["count"] == 0 and snap["mean"] == 0.0
    assert snap["p50"] is None and snap["p99"] is None
    # The whole snapshot must be strict-JSON serialisable as-is.
    json.dumps(registry.snapshot(), allow_nan=False)


def test_labelled_families_and_idempotent_registration():
    registry = MetricsRegistry()
    counter = registry.counter("reqs_total", "test", labelnames=("path",))
    counter.labels(path="/a").inc()
    counter.labels(path="/a").inc(2)
    counter.labels(path="/b").inc()
    again = registry.counter("reqs_total", "test", labelnames=("path",))
    assert again is counter  # re-registration hands back the same family
    assert registry.snapshot()["reqs_total"] == {"/a": 3.0, "/b": 1.0}
    with pytest.raises(ValueError):
        registry.gauge("reqs_total", "test", labelnames=("path",))  # type clash


def test_prometheus_rendering_shape():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "jobs", labelnames=("kind",)).labels(kind="a").inc()
    registry.gauge("depth", "queue depth").set(4)
    registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
    text = registry.render_prometheus(extra_gauges={"legacy_stat": 1.5})
    lines = text.splitlines()
    assert "# TYPE jobs_total counter" in lines
    assert 'jobs_total{kind="a"} 1' in lines
    assert "depth 4" in lines
    assert 'lat_seconds_bucket{le="0.1"} 1' in lines
    assert 'lat_seconds_bucket{le="+Inf"} 1' in lines
    assert "lat_seconds_count 1" in lines
    assert "legacy_stat 1.5" in lines
    # every non-comment line is "name{labels} value"
    for line in lines:
        if line and not line.startswith("#"):
            assert len(line.rsplit(" ", 1)) == 2


def test_json_safe_and_flatten_numeric():
    dirty = {"ok": 1.0, "bad": float("nan"), "nest": [float("inf"), 2]}
    assert json_safe(dirty) == {"ok": 1.0, "bad": None, "nest": [None, 2]}
    flat = flatten_numeric("repro", {"cache": {"hit rate": 0.5, "on": True, "name": "x", "nan": float("nan")}})
    assert flat == {"repro_cache_hit_rate": 0.5, "repro_cache_on": 1.0}


# ------------------------------------------------------------------------ logs


def test_log_event_renders_one_json_line_with_trace_ids():
    logger = get_logger("test_core")
    handler = CollectingHandler()
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    tracer = Tracer()
    try:
        with tracer.span("request"):
            trace_id, span_id = tracer.current_ids()
            log_event(logger, "http.request", path="/v1/estimate", status=200)
    finally:
        logger.removeHandler(handler)
    (record,) = handler.records()
    assert record["event"] == "http.request"
    assert record["path"] == "/v1/estimate" and record["status"] == 200
    assert record["trace_id"] == trace_id and record["span_id"] == span_id
    assert record["logger"] == "repro.test_core"


def test_log_event_survives_non_finite_fields():
    logger = get_logger("test_core_nan")
    handler = CollectingHandler()
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    try:
        log_event(logger, "bad", value=float("nan"))
    finally:
        logger.removeHandler(handler)
    (record,) = handler.records()  # degraded line, still valid JSON
    assert record["event"] == "unserialisable_log_record"


# ---------------------------------------------------------------------- events


def test_event_log_ring_filter_and_dump(tmp_path):
    log = EventLog(maxlen=3)
    for index in range(5):
        log.record("crash" if index % 2 else "restart", pool="featurisation", index=index)
    events = log.snapshot()
    assert [e["index"] for e in events] == [2, 3, 4]  # oldest-first, bounded
    assert [e["seq"] for e in events] == [3, 4, 5]
    assert [e["index"] for e in log.snapshot(kind="crash")] == [3]
    assert len(log.snapshot(limit=1)) == 1
    assert log.stats() == {"recorded": 5, "ring": 3}
    path = tmp_path / "events.json"
    assert dump_event_logs(path) >= 3
    dumped = json.loads(path.read_text())
    assert dumped["event_logs"] >= 1


# ---------------------------------------------------------------------- facade


def test_observability_pool_event_feeds_all_three_sinks():
    obs = Observability()
    handler = CollectingHandler()
    supervisor_logger = get_logger("supervisor")
    supervisor_logger.addHandler(handler)
    supervisor_logger.setLevel(logging.INFO)
    try:
        obs.pool_event("crash", pool="featurisation", fault="SIGKILL")
        obs.pool_event("restart", pool="featurisation", restarts=1)
    finally:
        supervisor_logger.removeHandler(handler)
    kinds = [e["kind"] for e in obs.events.snapshot()]
    assert kinds == ["crash", "restart"]
    rendered = obs.metrics.render_prometheus()
    assert 'repro_pool_events_total{pool="featurisation",kind="crash"} 1' in rendered
    assert [r["event"] for r in handler.records()] == ["pool.crash", "pool.restart"]


def test_observability_snapshot_is_strict_json():
    obs = Observability()
    obs.observe_stage("featurise", 0.01)
    obs.cache_event("sample", "memory", "hit", 0.0001)
    json.dumps(obs.snapshot(), allow_nan=False)
    assert not any(
        isinstance(v, float) and not math.isfinite(v)
        for v in flatten_numeric("x", obs.snapshot()).values()
    )
