"""Tests for layers, parameter traversal, optimisers and losses."""

import numpy as np
import pytest

from repro.nn.init import glorot_uniform
from repro.nn.layers import MLP, Dropout, Linear, Parameter, ReLU, Sequential
from repro.nn.losses import mae_loss, mape_loss, mse_loss
from repro.nn.optim import Adam, SGD
from repro.nn.tensor import Tensor


def test_glorot_bounds():
    rng = np.random.default_rng(0)
    weights = glorot_uniform(64, 64, rng)
    limit = np.sqrt(6.0 / 128)
    assert weights.shape == (64, 64)
    assert np.all(np.abs(weights) <= limit)
    with pytest.raises(ValueError):
        glorot_uniform(0, 4, rng)


def test_linear_forward_shape_and_params():
    rng = np.random.default_rng(0)
    layer = Linear(4, 3, rng)
    out = layer(Tensor(np.ones((5, 4))))
    assert out.shape == (5, 3)
    assert len(layer.parameters()) == 2
    assert layer.num_parameters() == 4 * 3 + 3


def test_module_parameter_traversal_nested():
    rng = np.random.default_rng(0)
    model = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 1, rng))
    assert len(model.parameters()) == 4
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters())


def test_mlp_structure_and_validation():
    rng = np.random.default_rng(0)
    mlp = MLP([6, 12, 1], rng, dropout=0.1)
    out = mlp(Tensor(np.ones((2, 6))))
    assert out.shape == (2, 1)
    with pytest.raises(ValueError):
        MLP([4], rng)


def test_train_eval_mode_propagates_to_dropout():
    rng = np.random.default_rng(0)
    mlp = MLP([4, 8, 1], rng, dropout=0.5)
    mlp.eval()
    assert all(not m.training for m in mlp.modules())
    mlp.train()
    assert all(m.training for m in mlp.modules())


def test_state_dict_round_trip():
    rng = np.random.default_rng(0)
    a = MLP([3, 5, 1], rng)
    b = MLP([3, 5, 1], np.random.default_rng(1))
    state = a.state_dict()
    b.load_state_dict(state)
    x = Tensor(np.ones((2, 3)))
    assert np.allclose(a(x).data, b(x).data)
    with pytest.raises(ValueError):
        b.load_state_dict({"param_0": np.zeros((3, 5))})


def test_sgd_and_adam_reduce_simple_loss():
    x = np.linspace(-1, 1, 32).reshape(-1, 1)
    y = 3.0 * x + 0.5

    for optimizer_class, lr in ((SGD, 0.1), (Adam, 0.05)):
        layer = Linear(1, 1, np.random.default_rng(2))
        optimizer = optimizer_class(layer.parameters(), lr=lr)
        first_loss = None
        for _ in range(200):
            optimizer.zero_grad()
            loss = mse_loss(layer(Tensor(x)), y)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.05


def test_optimizer_validation():
    with pytest.raises(ValueError):
        Adam([], lr=1e-3)
    with pytest.raises(ValueError):
        Adam([Parameter(np.zeros(3))], lr=-1.0)


def test_losses_values_and_errors():
    predictions = Tensor(np.array([1.1, 1.8]))
    targets = np.array([1.0, 2.0])
    assert mape_loss(predictions, targets).item() == pytest.approx(0.1)
    assert mae_loss(predictions, targets).item() == pytest.approx(0.15)
    assert mse_loss(predictions, targets).item() == pytest.approx((0.01 + 0.04) / 2)
    with pytest.raises(ValueError):
        mape_loss(predictions, np.array([0.0, 1.0]))


def test_dropout_layer_validation():
    with pytest.raises(ValueError):
        Dropout(1.0, np.random.default_rng(0))
