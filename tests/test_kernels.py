"""Tests for kernel specifications, PolyBench kernels and design spaces."""

import pytest

from repro.hls.pragmas import DesignDirectives
from repro.kernels.design_space import generate_design_space
from repro.kernels.polybench import POLYBENCH_KERNELS, polybench_kernel, polybench_names
from repro.kernels.spec import ArraySpec, Assign, BinOp, Const, KernelSpec, Loop, Ref, add, mul
from repro.kernels.synthetic import (
    elementwise_chain,
    outer_product,
    random_synthetic_suite,
    reduction,
    stencil_1d,
    synthetic_kernel,
    synthetic_names,
)


# --------------------------------------------------------------------------- spec


def test_ref_and_binop_validation():
    with pytest.raises(ValueError):
        Ref("", ("i",))
    with pytest.raises(ValueError):
        BinOp("%", Const(1.0), Const(2.0))


def test_loop_validation_and_nesting_helpers():
    with pytest.raises(ValueError):
        Loop("i", 0)
    inner = Loop("j", 4, [Assign(Ref("a", ("j",)), Const(0.0))])
    outer = Loop("i", 4, [inner])
    assert not outer.innermost
    assert inner.innermost
    assert [lp.var for lp in outer.nested_loops()] == ["i", "j"]


def test_kernel_validate_catches_unknown_array():
    kernel = KernelSpec(
        name="bad",
        arrays=[ArraySpec("a", (4,))],
        body=[Loop("i", 4, [Assign(Ref("b", ("i",)), Const(0.0))])],
    )
    with pytest.raises(ValueError):
        kernel.validate()


def test_kernel_validate_catches_rank_mismatch():
    kernel = KernelSpec(
        name="bad_rank",
        arrays=[ArraySpec("a", (4, 4))],
        body=[Loop("i", 4, [Assign(Ref("a", ("i",)), Const(0.0))])],
    )
    with pytest.raises(ValueError):
        kernel.validate()


def test_kernel_validate_catches_unbound_index():
    kernel = KernelSpec(
        name="bad_index",
        arrays=[ArraySpec("a", (4,))],
        body=[Loop("i", 4, [Assign(Ref("a", ("j",)), Const(0.0))])],
    )
    with pytest.raises(ValueError):
        kernel.validate()


def test_expression_helpers():
    expression = add(mul(Const(2.0), Ref("a", ("i",))), Const(1.0))
    assert isinstance(expression, BinOp)
    assert expression.op == "+"


def test_array_spec_validation():
    with pytest.raises(ValueError):
        ArraySpec("a", (0,))
    with pytest.raises(ValueError):
        ArraySpec("a", (4,), direction="sideways")
    assert ArraySpec("a", (4, 4)).num_elements == 16


# --------------------------------------------------------------------------- polybench


def test_polybench_names_match_paper_order():
    assert polybench_names() == [
        "atax",
        "bicg",
        "gemm",
        "gesummv",
        "2mm",
        "3mm",
        "mvt",
        "syrk",
        "syr2k",
    ]
    assert set(polybench_names()) == set(POLYBENCH_KERNELS)


@pytest.mark.parametrize("name", polybench_names())
def test_all_polybench_kernels_validate(name):
    kernel = polybench_kernel(name, 6)
    kernel.validate()
    assert kernel.innermost_loops()
    assert len(set(kernel.loop_names())) == len(kernel.loop_names())


def test_polybench_kernel_unknown_name():
    with pytest.raises(KeyError):
        polybench_kernel("fft")


def test_polybench_kernel_size_parameter():
    small = polybench_kernel("gemm", 4)
    large = polybench_kernel("gemm", 8)
    assert small.array("A").shape == (4, 4)
    assert large.array("A").shape == (8, 8)


# --------------------------------------------------------------------------- synthetic


def test_synthetic_kernels_validate():
    for name in synthetic_names():
        synthetic_kernel(name, 6).validate()


def test_synthetic_chain_depth_controls_operations():
    shallow = elementwise_chain(6, depth=1)
    deep = elementwise_chain(6, depth=5)
    assert len(deep.arrays) == len(shallow.arrays)
    with pytest.raises(ValueError):
        elementwise_chain(6, depth=0)


def test_synthetic_specific_generators():
    assert reduction(6).array("acc").shape == (1,)
    assert stencil_1d(6).array("out").shape == (6,)
    assert outer_product(6).array("C").shape == (6, 6)
    with pytest.raises(ValueError):
        stencil_1d(2)


def test_random_synthetic_suite_reproducible():
    a = random_synthetic_suite(5, seed=3)
    b = random_synthetic_suite(5, seed=3)
    assert [k.name for k in a] == [k.name for k in b]
    assert len(a) == 5


# --------------------------------------------------------------------------- design space


def test_design_space_contains_baseline_first(gemm_kernel):
    space = generate_design_space(gemm_kernel, max_points=20, seed=0)
    assert len(space) <= 20
    assert space.points[0].is_baseline
    assert space.baseline.is_baseline


def test_design_space_points_are_unique(gemm_kernel):
    space = generate_design_space(gemm_kernel, max_points=30, seed=1)
    assert len(set(space.points)) == len(space.points)


def test_design_space_is_reproducible(gemm_kernel):
    first = generate_design_space(gemm_kernel, max_points=15, seed=7)
    second = generate_design_space(gemm_kernel, max_points=15, seed=7)
    assert first.points == second.points


def test_design_space_unroll_factors_divide_trip_counts(atax_kernel):
    space = generate_design_space(atax_kernel, max_points=40, seed=0)
    trips = {loop.var: loop.trip for loop in atax_kernel.all_loops()}
    for point in space:
        for loop_name, pragmas in point.loop_pragmas:
            assert trips[loop_name] % pragmas.unroll_factor == 0


def test_design_space_rejects_bad_max_points(gemm_kernel):
    with pytest.raises(ValueError):
        generate_design_space(gemm_kernel, max_points=0)


def test_design_space_iteration_yields_directives(gemm_kernel):
    space = generate_design_space(gemm_kernel, max_points=5, seed=0)
    for point in space:
        assert isinstance(point, DesignDirectives)
