"""Tests for the content-addressed inference cache."""

import pytest

from repro.graph.features import FEATURE_VERSION
from repro.serve.cache import InferenceCache, LRUStore, content_key, sample_fingerprint


def test_content_key_is_stable_and_sensitive():
    key = content_key("atax", "baseline")
    assert key == content_key("atax", "baseline")
    assert key != content_key("atax", "unroll2")
    assert key != content_key("gemm", "baseline")
    assert key != content_key("atax", "baseline", feature_version=FEATURE_VERSION + 1)
    # No separator ambiguity between the kernel and directive fields.
    assert content_key("ab", "c") != content_key("a", "bc")


def test_sample_fingerprint_tracks_graph_content(random_sample_factory):
    sample = random_sample_factory(1, seed=7)[0]
    first = sample_fingerprint(sample)
    assert sample_fingerprint(sample) == first
    # Same (kernel, directives) but different graph data -> different address,
    # so a doctored client sample cannot alias the canonical featurisation.
    sample.graph.node_features = sample.graph.node_features + 1e-9
    assert sample_fingerprint(sample) != first


def test_lru_store_eviction_and_stats():
    store = LRUStore(max_entries=2)
    store.put("a", 1)
    store.put("b", 2)
    assert store.get("a") == 1  # refreshes "a"
    store.put("c", 3)  # evicts "b"
    assert "b" not in store
    assert store.get("b") is None
    assert store.get("a") == 1 and store.get("c") == 3
    assert store.stats.evictions == 1
    assert store.stats.hits == 3 and store.stats.misses == 1
    assert 0.0 < store.stats.hit_rate < 1.0
    with pytest.raises(ValueError):
        LRUStore(max_entries=0)


def test_inference_cache_samples_and_predictions(random_sample_factory):
    cache = InferenceCache()
    sample = random_sample_factory(1, seed=3)[0]
    assert cache.get_sample(sample.kernel, sample.directives) is None
    key = cache.put_sample(sample)
    assert cache.get_sample(sample.kernel, sample.directives) is sample

    assert cache.get_prediction(key, "model-a") is None
    cache.put_prediction(key, "model-a", 1.25)
    assert cache.get_prediction(key, "model-a") == 1.25
    # A different model fingerprint misses: predictions are model-addressed.
    assert cache.get_prediction(key, "model-b") is None

    stats = cache.stats()
    assert stats["samples"]["hits"] == 1
    assert stats["predictions"]["misses"] == 2
    cache.clear()
    assert cache.get_sample(sample.kernel, sample.directives) is None
