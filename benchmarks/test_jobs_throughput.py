"""Jobs-service throughput: time-to-first-update and sustained design rate.

One exploration job for the atax design space, submitted over real HTTP to a
gateway with the jobs tier mounted, with the per-iteration update stream
consumed live.  Two numbers land in the results log and are gated by
``check_regression.py``:

* **TTFU s** — submit → first streamed iteration update.  The latency a DSE
  driver waits before it can render anything; the point of the async job API
  over the blocking ``/v1/explore``.
* **Designs/s** — sampled designs per second across the whole job, i.e. the
  exploration loop's sustained rate through the batched prediction engine
  with per-iteration checkpointing and update publishing on.

Correctness is enforced unconditionally: the job's final report must be
bitwise the direct blocking ``service.explore`` (same frontier, same ADRS
float) — the jobs tier may cost latency, never answers.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.jobs import JobManager
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import GatewayHTTPServer, request_json, stream_json_lines
from repro.serve import PowerEstimationService
from repro.serve.wire import explore_report_to_json

TARGET_KERNEL = "atax"
BUDGET = 0.9
#: Local-only collapse floor for TTFU: far above any healthy run (the first
#: iteration is two predictions), far below a hung scheduler.
TTFU_CEILING_S = 10.0


def stable(report: dict) -> dict:
    return {k: v for k, v in report.items() if k != "elapsed_seconds"}


@pytest.mark.benchmark
@pytest.mark.slow
def test_jobs_explore_throughput(benchmark, bench_dataset, bench_scale):
    train, _ = bench_dataset.leave_one_out(TARGET_KERNEL)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=bench_scale.hidden_dim, num_layers=3),
            training=TrainingConfig(
                epochs=min(bench_scale.epochs, 40), batch_size=32, learning_rate=2e-3
            ),
            ensemble=None,
        )
    ).fit(train.samples)
    dataset_config = DatasetConfig(
        kernel_size=bench_scale.kernel_size,
        designs_per_kernel=bench_scale.designs_per_kernel,
    )

    def run():
        # The uninterrupted blocking reference, same model, same space.
        direct_service = PowerEstimationService(
            model, generator=DatasetGenerator(dataset_config)
        )
        try:
            direct = explore_report_to_json(
                direct_service.explore(TARGET_KERNEL, BUDGET)
            )
        finally:
            direct_service.close()

        async def job_path():
            service = PowerEstimationService(
                model, generator=DatasetGenerator(dataset_config)
            )
            manager = JobManager(service)
            gateway = AsyncPowerGateway(service, jobs=manager)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                submitted = time.perf_counter()
                status, snapshot = await request_json(
                    host, port, "POST", "/v1/jobs/explore",
                    {"kernel": TARGET_KERNEL, "budget": BUDGET},
                )
                assert status == 202, snapshot
                job_id = snapshot["job_id"]
                ttfu = None
                async for update in stream_json_lines(
                    host, port, f"/v1/jobs/{job_id}/updates?stream=1"
                ):
                    if ttfu is None and update["event"] == "iteration":
                        ttfu = time.perf_counter() - submitted
                job_seconds = time.perf_counter() - submitted
                status, final = await request_json(
                    host, port, "GET", f"/v1/jobs/{job_id}"
                )
                assert status == 200 and final["state"] == "succeeded", final
                return ttfu, job_seconds, final
            finally:
                await server.aclose(close_gateway=True)

        ttfu, job_seconds, final = asyncio.run(job_path())
        return {
            "direct": direct,
            "ttfu": ttfu,
            "job_seconds": job_seconds,
            "final": final,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sampled = results["final"]["result"]["num_sampled"]
    rate = sampled / results["job_seconds"]
    print_table(
        f"Jobs service throughput on the {TARGET_KERNEL} design space "
        f"(budget {BUDGET:.0%} of {bench_scale.designs_per_kernel} designs, "
        f"streamed over HTTP; wall-clock asserts {gate_reason()})",
        ["Path", "Designs", "TTFU s", "Seconds", "Designs/s"],
        [
            [
                "job explore",
                str(sampled),
                f"{results['ttfu']:.3f}",
                f"{results['job_seconds']:.3f}",
                f"{rate:.1f}",
            ]
        ],
    )

    # Correctness invariants: always enforced.
    assert results["ttfu"] is not None, "stream ended without an iteration update"
    assert stable(results["final"]["result"]) == stable(results["direct"]), (
        "job-mode exploration diverged from the direct blocking explore"
    )
    updates_seen = results["final"]["seq"]
    assert updates_seen >= 2, f"only {updates_seen} updates for a whole job"

    if wall_clock_enforced():
        assert results["ttfu"] < TTFU_CEILING_S, (
            f"first update took {results['ttfu']:.1f}s (ceiling {TTFU_CEILING_S}s)"
        )
