"""Serving throughput: batched inference vs the per-sample loop.

The serving subsystem packs a request batch into one block-diagonal mega-graph
and runs a single vectorised forward pass per ensemble member instead of one
per design.  This benchmark measures both paths on the atax design space and
asserts the two contractual properties of the batched engine: numerically
identical predictions (atol 1e-8) and at least a 2x speedup at batch sizes of
16 and up.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import print_table
from gating import wall_clock_enforced
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig

TARGET_KERNEL = "atax"
MIN_BATCH = 16
TIMING_ROUNDS = 3


def _best_seconds(function, rounds: int = TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark
@pytest.mark.slow
def test_serve_throughput(benchmark, bench_dataset, bench_scale):
    train, test = bench_dataset.leave_one_out(TARGET_KERNEL)
    assert len(test) >= MIN_BATCH, (
        f"throughput benchmark needs >= {MIN_BATCH} atax designs "
        "(set POWERGEAR_BENCH_DESIGNS accordingly)"
    )
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=bench_scale.hidden_dim, num_layers=3),
            # Training quality is irrelevant for throughput; keep it short.
            training=TrainingConfig(
                epochs=min(bench_scale.epochs, 40), batch_size=32, learning_rate=2e-3
            ),
            ensemble=EnsembleConfig(folds=3, seeds=(0,)),
        )
    )
    model.fit(train.samples)
    samples = test.samples

    def run():
        loop_seconds = _best_seconds(lambda: model.predict(samples))
        batch_seconds = _best_seconds(lambda: model.predict_batch(samples))
        return {
            "loop_seconds": loop_seconds,
            "batch_seconds": batch_seconds,
            "loop_predictions": model.predict(samples),
            "batch_predictions": model.predict_batch(samples),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    loop_seconds = results["loop_seconds"]
    batch_seconds = results["batch_seconds"]
    speedup = loop_seconds / batch_seconds
    batch = len(samples)
    print_table(
        f"Serving throughput on the {TARGET_KERNEL} design space "
        f"({len(model.ensemble.members)}-member ensemble)",
        ["Path", "Batch", "Seconds", "Designs/s", "Speedup"],
        [
            ["per-sample loop", str(batch), f"{loop_seconds:.4f}", f"{batch / loop_seconds:.0f}", "1.0x"],
            ["predict_batch", str(batch), f"{batch_seconds:.4f}", f"{batch / batch_seconds:.0f}", f"{speedup:.1f}x"],
        ],
    )

    assert np.allclose(
        results["loop_predictions"], results["batch_predictions"], atol=1e-8
    ), "batched predictions diverged from the per-sample loop"
    # Wall-clock assertions are unreliable on shared CI runners (GitHub Actions
    # sets CI=true); there only the numerical-equality contract is enforced.
    if wall_clock_enforced():
        assert speedup >= 2.0, (
            f"predict_batch is only {speedup:.2f}x faster than the per-sample loop "
            f"at batch size {batch}"
        )
