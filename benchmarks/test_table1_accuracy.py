"""Table I (accuracy columns): total and dynamic power estimation error.

Regenerates, per held-out kernel, the MAPE of

* total power:   Vivado (calibrated), HL-Pow, PowerGear
* dynamic power: the GNN baselines (GCN, GraphSAGE, GraphConv, GINE), HL-Pow
  and PowerGear

under the paper's leave-one-application-out protocol.  The paper's reference
row (its Table I averages): Vivado 21.82 / HL-Pow 3.79 / PowerGear 3.60 for
total power, and GCN 12.94 / GraphSage 11.91 / GraphConv 11.01 / GINE 11.17 /
HL-Pow 12.67 / PowerGear 8.81 for dynamic power.  Absolute numbers differ on
this simulated substrate; EXPERIMENTS.md records the measured run.
"""

from __future__ import annotations

import numpy as np

from conftest import evaluation_config, print_table
from repro.flow.evaluation import LeaveOneOutEvaluator

TOTAL_POWER_MODELS = ["vivado", "hlpow", "powergear"]
DYNAMIC_POWER_MODELS = ["gcn", "graphsage", "graphconv", "gine", "hlpow", "powergear"]


def _rows_from_results(kernels, results):
    rows = []
    for kernel in kernels:
        rows.append(
            [kernel] + [f"{results[m].per_kernel_error[kernel]:.2f}" for m in results]
        )
    rows.append(["Average"] + [f"{results[m].average_error:.2f}" for m in results])
    return rows


def test_table1_total_power_error(benchmark, bench_dataset, bench_scale):
    config = evaluation_config(bench_scale, target="total")
    evaluator = LeaveOneOutEvaluator(bench_dataset, config)

    def run():
        return evaluator.evaluate_models(TOTAL_POWER_MODELS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table I: error of total power estimation (%)",
        ["Dataset"] + TOTAL_POWER_MODELS,
        _rows_from_results(bench_scale.kernels, results),
    )
    for result in results.values():
        assert np.isfinite(result.average_error)
    # The learned estimators must clearly beat the uncalibrated trivial bound
    # and stay within a sane range on the simulated substrate.
    assert results["powergear"].average_error < 35.0
    assert results["hlpow"].average_error < 35.0


def test_table1_dynamic_power_error(benchmark, bench_dataset, bench_scale):
    config = evaluation_config(bench_scale, target="dynamic")
    evaluator = LeaveOneOutEvaluator(bench_dataset, config)

    def run():
        return evaluator.evaluate_models(DYNAMIC_POWER_MODELS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table I: error of dynamic power estimation (%)",
        ["Dataset"] + DYNAMIC_POWER_MODELS,
        _rows_from_results(bench_scale.kernels, results),
    )
    for result in results.values():
        assert np.isfinite(result.average_error)
    # Edge-centric PowerGear should at least be competitive with the pure
    # node-centric baselines on dynamic power (the paper's central claim).
    node_centric_best = min(
        results["gcn"].average_error, results["graphsage"].average_error
    )
    assert results["powergear"].average_error < node_centric_best * 1.5
