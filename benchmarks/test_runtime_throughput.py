"""Runtime throughput: the three serving-runtime levers, measured.

* **pooled vs serial featurisation** — the worker pool shards per-kernel
  featurisation (the dominant serving cost) across processes; cold start to
  cold start, 4 workers should cut a design-space sweep by >= 2x on a machine
  with >= 4 usable cores.  Pooled samples must be bitwise-identical to serial
  ones unconditionally.
* **coalesced vs one-at-a-time latency** — concurrent single-design
  ``estimate`` calls coalesce into packed forward passes instead of running
  one tiny forward each.
* **persistent-cache restart** — a restarted service pointed at the same
  cache directory serves its second run from disk: >0 disk hit rate,
  predictions identical to the first run's, zero featurisation.

Wall-clock assertions follow the repo convention: skipped on shared CI
runners (``CI=true``) and, for the pool, on machines with fewer usable cores
than workers.  The correctness assertions always run.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.runtime import RuntimeConfig, WorkerPool, available_cpus
from repro.serve import EstimateRequest, PowerEstimationService
from repro.serve.cache import sample_fingerprint

TARGET_KERNEL = "atax"
POOL_WORKERS = 4
COALESCE_BATCH = 8


@pytest.mark.benchmark
@pytest.mark.slow
def test_runtime_throughput(benchmark, bench_scale, tmp_path):
    # The featurisation timing uses a widened design space (>= 96 points) and
    # a larger kernel (>= size 16, ~25 ms/design) so the measured region
    # dwarfs the pool's fixed cold-start cost (process forks + per-worker
    # baseline HLS); the serving parts run on the first `bench` designs.
    config = DatasetConfig(
        kernel_size=max(bench_scale.kernel_size, 16),
        designs_per_kernel=max(bench_scale.designs_per_kernel, 96),
    )
    kernel = polybench_kernel(TARGET_KERNEL, config.kernel_size)
    space = list(DatasetGenerator(config).design_space_for(kernel))
    serve_count = min(bench_scale.designs_per_kernel, len(space))
    requests = [
        EstimateRequest(kernel=TARGET_KERNEL, directives=point)
        for point in space[:serve_count]
    ]

    def run():
        # -- featurisation: serial vs pooled, cold start to cold start --------
        serial_start = time.perf_counter()
        serial_samples = DatasetGenerator(config).featurise(TARGET_KERNEL, space)
        serial_seconds = time.perf_counter() - serial_start

        pooled_start = time.perf_counter()
        with WorkerPool(
            config=config, num_workers=POOL_WORKERS, min_designs_per_worker=1
        ) as pool:
            pooled_samples = pool.featurise(TARGET_KERNEL, space)
        pooled_seconds = time.perf_counter() - pooled_start

        # -- coalescing: one-at-a-time vs micro-batched singles ---------------
        model = PowerGear(
            PowerGearConfig(
                target="dynamic",
                gnn=GNNConfig(hidden_dim=bench_scale.hidden_dim, num_layers=3),
                training=TrainingConfig(
                    epochs=min(bench_scale.epochs, 40), batch_size=16, learning_rate=2e-3
                ),
                ensemble=None,
            )
        ).fit(serial_samples[:serve_count])
        single_requests = [
            EstimateRequest.from_sample(s) for s in serial_samples[:serve_count]
        ]

        direct_service = PowerEstimationService(model, generator=DatasetGenerator(config))
        direct_start = time.perf_counter()
        direct_responses = [direct_service.estimate(r) for r in single_requests]
        direct_seconds = time.perf_counter() - direct_start

        coalesced_service = PowerEstimationService(
            model,
            generator=DatasetGenerator(config),
            runtime=RuntimeConfig(
                coalesce_window_ms=25.0, coalesce_max_batch=COALESCE_BATCH
            ),
        )
        coalesced_responses = [None] * len(single_requests)

        def call(slot: int) -> None:
            coalesced_responses[slot] = coalesced_service.estimate(single_requests[slot])

        threads = [
            threading.Thread(target=call, args=(slot,))
            for slot in range(len(single_requests))
        ]
        coalesced_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        coalesced_seconds = time.perf_counter() - coalesced_start
        coalescer_stats = coalesced_service.runtime_stats()["coalescer"]
        coalesced_service.close()

        # -- persistence: cold service vs restarted service on the same dir --
        cache_dir = tmp_path / "persistent"
        runtime = RuntimeConfig(persistent_cache_dir=cache_dir)
        cold_service = PowerEstimationService(
            model, generator=DatasetGenerator(config), runtime=runtime
        )
        cold_start = time.perf_counter()
        cold_responses = cold_service.estimate_many(requests)
        cold_seconds = time.perf_counter() - cold_start
        cold_service.close()

        warm_service = PowerEstimationService(
            model, generator=DatasetGenerator(config), runtime=runtime
        )
        warm_start = time.perf_counter()
        warm_responses = warm_service.estimate_many(requests)
        warm_seconds = time.perf_counter() - warm_start
        warm_metrics = warm_service.metrics.snapshot()
        warm_disk = warm_service.cache.stats()["persistent"]
        warm_service.close()

        return {
            "serial_samples": serial_samples,
            "pooled_samples": pooled_samples,
            "serial_seconds": serial_seconds,
            "pooled_seconds": pooled_seconds,
            "direct_responses": direct_responses,
            "coalesced_responses": coalesced_responses,
            "direct_seconds": direct_seconds,
            "coalesced_seconds": coalesced_seconds,
            "coalescer_stats": coalescer_stats,
            "cold_responses": cold_responses,
            "warm_responses": warm_responses,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_metrics": warm_metrics,
            "warm_disk": warm_disk,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    designs = len(space)
    served = len(requests)
    serial_seconds = results["serial_seconds"]
    pooled_seconds = results["pooled_seconds"]
    pool_speedup = serial_seconds / pooled_seconds
    direct_seconds = results["direct_seconds"]
    coalesced_seconds = results["coalesced_seconds"]
    cold_seconds = results["cold_seconds"]
    warm_seconds = results["warm_seconds"]
    # The >=2x wall-clock assertion needs enough usable cores to actually run
    # the workers on, and shared CI runners are too noisy to time; record in
    # the tracked log whether this run enforced it or was gated.
    speedup_enforced = wall_clock_enforced(min_cores=POOL_WORKERS)
    print_table(
        f"Runtime featurisation throughput on the {TARGET_KERNEL} design space "
        f"({available_cpus()} usable cores; >=2x assert "
        f"{gate_reason(min_cores=POOL_WORKERS)})",
        ["Path", "Designs", "Seconds", "Designs/s", "Speedup"],
        [
            [
                "serial",
                str(designs),
                f"{serial_seconds:.3f}",
                f"{designs / serial_seconds:.1f}",
                "1.0x",
            ],
            [
                f"pool x{POOL_WORKERS}",
                str(designs),
                f"{pooled_seconds:.3f}",
                f"{designs / pooled_seconds:.1f}",
                f"{pool_speedup:.1f}x",
            ],
        ],
    )
    print_table(
        "Single-design estimate latency: direct vs coalesced "
        f"(window 25 ms, max batch {COALESCE_BATCH}, "
        f"{results['coalescer_stats']['batches']} flushes)",
        ["Path", "Designs", "Seconds", "Designs/s"],
        [
            [
                "one-at-a-time",
                str(served),
                f"{direct_seconds:.3f}",
                f"{served / direct_seconds:.1f}",
            ],
            [
                "coalesced",
                str(served),
                f"{coalesced_seconds:.3f}",
                f"{served / coalesced_seconds:.1f}",
            ],
        ],
    )
    print_table(
        "Service restart on a persistent cache dir",
        ["Run", "Designs", "Seconds", "Featurised", "Disk hit rate"],
        [
            [
                "cold",
                str(served),
                f"{cold_seconds:.3f}",
                str(served),
                "-",
            ],
            [
                "restarted",
                str(served),
                f"{warm_seconds:.3f}",
                str(results["warm_metrics"]["featurised"]),
                f"{results['warm_disk']['hit_rate']:.2f}",
            ],
        ],
    )

    # Correctness invariants: always enforced.
    assert [sample_fingerprint(s) for s in results["pooled_samples"]] == [
        sample_fingerprint(s) for s in results["serial_samples"]
    ], "pooled featurisation diverged from the serial path"
    assert np.allclose(
        [r.power for r in results["coalesced_responses"]],
        [r.power for r in results["direct_responses"]],
        atol=1e-8,
    ), "coalesced estimates diverged from direct calls"
    assert [r.power for r in results["warm_responses"]] == [
        r.power for r in results["cold_responses"]
    ], "restarted service predictions diverged"
    assert results["warm_metrics"]["featurised"] == 0
    assert results["warm_disk"]["hit_rate"] > 0

    if speedup_enforced:
        assert pool_speedup >= 2.0, (
            f"pooled featurisation is only {pool_speedup:.2f}x faster than serial "
            f"at {POOL_WORKERS} workers on {available_cpus()} cores"
        )
