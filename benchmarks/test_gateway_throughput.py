"""Gateway throughput: the async front end under a concurrency sweep.

One workload — ``SWEEP_REQUESTS`` single-design estimates over the atax
design space — replayed at increasing client concurrency through
:class:`~repro.runtime.gateway.AsyncPowerGateway`, against the direct
``estimate_many`` batch as the reference.  At concurrency 1 every request
pays the full coalescing window alone; as concurrency grows, requests share
packed forward passes and throughput climbs toward the batched path.

Correctness (gateway responses match the direct service bitwise-to-round-off,
coalescing observable in the runtime stats) is always enforced; the
wall-clock scaling assertion goes through the shared ``gating`` helper like
every other benchmark.  The printed table lands in ``latest_results.txt``,
where ``check_regression.py`` gates it against ``baseline.json``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.flow.dataset_gen import DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime import RuntimeConfig
from repro.runtime.gateway import AsyncPowerGateway
from repro.serve import EstimateRequest, PowerEstimationService

TARGET_KERNEL = "atax"
SWEEP_REQUESTS = 256
CONCURRENCY_LEVELS = (1, 8, 32, 128)
COALESCE_WINDOW_MS = 5.0
COALESCE_BATCH = 16
GATEWAY_THREADS = 32


@pytest.mark.benchmark
@pytest.mark.slow
def test_gateway_concurrency_sweep(benchmark, bench_dataset, bench_scale):
    train, test = bench_dataset.leave_one_out(TARGET_KERNEL)
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=bench_scale.hidden_dim, num_layers=3),
            training=TrainingConfig(
                epochs=min(bench_scale.epochs, 40), batch_size=32, learning_rate=2e-3
            ),
            ensemble=None,
        )
    ).fit(train.samples)
    unique_requests = [EstimateRequest.from_sample(s) for s in test.samples]
    requests = [
        unique_requests[i % len(unique_requests)] for i in range(SWEEP_REQUESTS)
    ]

    def run():
        direct_service = PowerEstimationService(model, generator=DatasetGenerator())
        direct_start = time.perf_counter()
        direct = direct_service.estimate_many(requests)
        direct_seconds = time.perf_counter() - direct_start

        levels = {}
        for level in CONCURRENCY_LEVELS:
            levels[level] = asyncio.run(_sweep_level(model, requests, level))
        return {"direct": direct, "direct_seconds": direct_seconds, "levels": levels}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    served = len(requests)
    enforced = wall_clock_enforced()
    rows = [
        [
            "direct estimate_many",
            str(served),
            f"{results['direct_seconds']:.3f}",
            f"{served / results['direct_seconds']:.0f}",
            "-",
        ]
    ]
    for level in CONCURRENCY_LEVELS:
        seconds, _, stats = results["levels"][level]
        coalescer = stats["coalescer"]
        rows.append(
            [
                f"gateway x{level}",
                str(served),
                f"{seconds:.3f}",
                f"{served / seconds:.0f}",
                f"{coalescer['mean_batch']:.1f}",
            ]
        )
    print_table(
        f"Gateway concurrency sweep on the {TARGET_KERNEL} design space "
        f"({served} single-design requests, window {COALESCE_WINDOW_MS:.0f} ms, "
        f"max batch {COALESCE_BATCH}, {GATEWAY_THREADS} bridge threads; "
        f"scaling assert {gate_reason()})",
        ["Path", "Designs", "Seconds", "Designs/s", "Mean batch"],
        rows,
    )

    # Correctness invariants: always enforced.
    expected = [response.power for response in results["direct"]]
    for level in CONCURRENCY_LEVELS:
        _, responses, stats = results["levels"][level]
        assert np.allclose(
            [response.power for response in responses], expected, atol=1e-8
        ), f"gateway responses diverged from the direct path at concurrency {level}"
        assert stats["gateway"]["completed"] == served
        assert stats["gateway"]["in_flight"] == 0
        assert stats["coalescer"]["items"] == served
    top = CONCURRENCY_LEVELS[-1]
    assert results["levels"][top][2]["coalescer"]["largest_batch"] > 1, (
        "high-concurrency sweep never coalesced a batch"
    )

    if enforced:
        solo_seconds = results["levels"][1][0]
        top_seconds = results["levels"][top][0]
        scaling = solo_seconds / top_seconds
        assert scaling >= 2.0, (
            f"concurrency {top} is only {scaling:.2f}x faster than concurrency 1 "
            f"(coalescing should amortise the {COALESCE_WINDOW_MS} ms window)"
        )


async def _sweep_level(model, requests, concurrency: int):
    """Replay the workload at one client-concurrency level; fresh caches."""
    service = PowerEstimationService(
        model,
        generator=DatasetGenerator(),
        runtime=RuntimeConfig(
            coalesce_window_ms=COALESCE_WINDOW_MS,
            coalesce_max_batch=COALESCE_BATCH,
            gateway_threads=GATEWAY_THREADS,
        ),
    )
    gateway = AsyncPowerGateway(service)
    semaphore = asyncio.Semaphore(concurrency)

    async def one(request):
        async with semaphore:
            return await gateway.estimate(request)

    start = time.perf_counter()
    responses = await asyncio.gather(*(one(r) for r in requests))
    seconds = time.perf_counter() - start
    stats = gateway.runtime_stats()
    await gateway.aclose(close_service=True)
    return seconds, responses, stats
