"""Table III: ADRS of Pareto design-space exploration at 20/30/40 % budgets.

The paper drives the same iterative Pareto-guided sampler with three power
predictors (calibrated Vivado, HL-Pow, PowerGear) and reports the ADRS of the
resulting approximate frontiers; PowerGear achieves the lowest ADRS at every
budget (0.0981 / 0.0774 / 0.0626), beating Vivado by 39-52 % and HL-Pow by
7-11 %.  The benchmark regenerates the three-budget table on one kernel's
design space using predictors trained on the remaining kernels.
"""

from __future__ import annotations

import numpy as np

from conftest import evaluation_config, print_table
from repro.dse.explorer import DesignCandidate, DSEConfig, ParetoExplorer
from repro.flow.evaluation import MODEL_BUILDERS
from repro.utils.metrics import relative_gain

BUDGETS = (0.2, 0.3, 0.4)
PREDICTORS = ["vivado", "hlpow", "powergear"]


def _candidates_for(dataset, kernel):
    subset = dataset.by_kernel(kernel)
    return [
        DesignCandidate(
            index=i,
            latency=float(s.latency_cycles),
            true_power=s.dynamic_power,
            config_vector=np.array(s.extras["config_vector"], dtype=float)
            if "config_vector" in s.extras
            else np.array([float(i)]),
            payload=s,
        )
        for i, s in enumerate(subset.samples)
    ]


def test_table3_dse_adrs(benchmark, bench_dataset, bench_scale):
    target_kernel = bench_scale.kernels[0]
    train, _ = bench_dataset.leave_one_out(target_kernel)
    config = evaluation_config(bench_scale, target="dynamic")
    candidates = _candidates_for(bench_dataset, target_kernel)

    def run():
        estimators = {}
        for name in PREDICTORS:
            estimator = MODEL_BUILDERS[name](config)
            estimator.fit(train.samples)
            estimators[name] = estimator

        table = {}
        for budget in BUDGETS:
            row = {}
            for name, estimator in estimators.items():
                def predictor(batch, estimator=estimator):
                    return estimator.predict([c.payload for c in batch])

                result = ParetoExplorer(
                    DSEConfig(initial_budget=0.02, total_budget=budget, seed=0)
                ).explore(candidates, predictor)
                row[name] = result.adrs
            table[budget] = row
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for budget in BUDGETS:
        row = table[budget]
        rows.append(
            [
                f"{int(budget * 100)}%",
                f"{row['vivado']:.4f}",
                f"{row['hlpow']:.4f}",
                f"{row['powergear']:.4f}",
                f"{relative_gain(row['vivado'], row['powergear']):.1f}%",
                f"{relative_gain(row['hlpow'], row['powergear']):.1f}%",
            ]
        )
    print_table(
        f"Table III: ADRS of HLS design space exploration (held-out kernel: {target_kernel})",
        ["Budget", "Vivado", "HL-Pow", "PowerGear", "vs Vivado", "vs HL-Pow"],
        rows,
    )

    for budget in BUDGETS:
        for name in PREDICTORS:
            assert np.isfinite(table[budget][name])
            assert table[budget][name] >= 0.0
