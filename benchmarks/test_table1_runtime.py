"""Table I (runtime column): speedup of PowerGear over the Vivado power flow.

The paper reports per-kernel speedups of 1.47x to 10.81x with an average of
4.06x.  The benchmark regenerates the per-kernel average speedup from the
runtime cost models of both flows, plus the measured wall-clock of PowerGear's
own inference path (graph construction + GNN forward pass), which is the part
that actually runs in this reproduction.
"""

from __future__ import annotations

import numpy as np

from conftest import print_table
from repro.flow.evaluation import LeaveOneOutEvaluator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig


def test_table1_runtime_speedup(benchmark, bench_dataset, bench_scale):
    evaluator = LeaveOneOutEvaluator(bench_dataset)
    speedups = evaluator.runtime_speedups()

    rows = [[kernel, f"{speedups[kernel]:.2f}x"] for kernel in bench_scale.kernels]
    rows.append(["Average", f"{np.mean(list(speedups.values())):.2f}x"])
    print_table(
        "Table I: runtime speedup of PowerGear over the Vivado power estimator",
        ["Dataset", "Speedup"],
        rows,
    )

    # Benchmark the real inference path: fitting a tiny model once, then timing
    # prediction over the whole dataset (the deployed scenario).
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=16, num_layers=2),
            training=TrainingConfig(epochs=5, batch_size=32, target="dynamic"),
            ensemble=None,
        )
    )
    model.fit(bench_dataset.samples)

    def infer():
        return model.predict(bench_dataset.samples)

    predictions = benchmark(infer)
    assert predictions.shape == (len(bench_dataset),)
    assert all(value > 1.0 for value in speedups.values())
    assert 1.2 < np.mean(list(speedups.values())) < 15.0
