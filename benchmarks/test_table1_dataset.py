"""Table I (dataset-properties columns): #samples and average #nodes per kernel.

The paper reports ~480-530 design points per kernel with average graph sizes
of 137-447 nodes.  The benchmark regenerates the same two columns for the
configured scale (smaller by default; see EXPERIMENTS.md for the recorded run
and the comparison against the paper's values).
"""

from __future__ import annotations

from conftest import print_table
from repro.flow.evaluation import LeaveOneOutEvaluator


def test_table1_dataset_properties(benchmark, bench_dataset, bench_scale):
    evaluator = LeaveOneOutEvaluator(bench_dataset)

    def compute():
        return evaluator.dataset_properties()

    properties = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for kernel in bench_scale.kernels:
        entry = properties[kernel]
        rows.append([kernel, int(entry["num_samples"]), f"{entry['avg_nodes']:.0f}"])
    averages = [
        "Average",
        int(sum(p["num_samples"] for p in properties.values()) / len(properties)),
        f"{sum(p['avg_nodes'] for p in properties.values()) / len(properties):.0f}",
    ]
    rows.append(averages)
    print_table(
        "Table I (dataset properties): samples and average graph nodes per kernel",
        ["Dataset", "#Samples", "Avg. #Nodes"],
        rows,
    )

    assert all(p["num_samples"] > 0 for p in properties.values())
    assert all(p["avg_nodes"] > 5 for p in properties.values())
