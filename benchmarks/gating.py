"""The single shared CI / core-count gate for wall-clock assertions.

Every wall-clock assertion in the benchmark harness — and every wall-clock
metric in the regression gate (``check_regression.py``) — decides whether to
*enforce* through this module, so the policy lives in exactly one place:

* shared CI runners (``CI=true``, as GitHub Actions sets) are too noisy to
  time, so wall-clock asserts are skipped there and only correctness /
  determinism contracts are enforced;
* an assertion about an N-way parallel speedup is meaningless with fewer
  than N usable cores, so it can additionally demand a core count.

Deliberately stdlib-only: ``check_regression.py`` runs in a CI job that
downloads a results artifact onto a bare checkout, where the package (and
numpy) may not be installed.
"""

from __future__ import annotations

import os


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return os.cpu_count() or 1


def on_ci() -> bool:
    return bool(os.environ.get("CI"))


def wall_clock_enforced(min_cores: int = 0) -> bool:
    """True when wall-clock assertions are trustworthy on this machine."""
    return not on_ci() and usable_cpus() >= min_cores


def gate_reason(min_cores: int = 0) -> str:
    """Human-readable reason string logged next to a skipped assertion."""
    if on_ci():
        return "skipped: CI runner"
    if usable_cpus() < min_cores:
        return f"skipped: needs >= {min_cores} cores, have {usable_cpus()}"
    return "enforced"
