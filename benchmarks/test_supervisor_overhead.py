"""Supervision cost, measured: dispatch overhead and restart latency.

Two questions an operator asks before turning the supervisor on:

* **what does supervision cost per batch?** — the supervisor adds admission
  accounting, an autoscale decision and a generation lookup around every
  pool call.  Measured by driving the same no-op pool raw vs supervised:
  the layer must stay within noise of the raw call (its real work — numpy
  batches across processes — is milliseconds, the wrapper microseconds).
* **how long is a crash blip?** — wall-clock from a SIGKILLed worker
  mid-batch to the retried batch's result on the restarted pool (process
  respawn + backoff + retry).  This is the "a crashed worker is a blip in
  /metrics, not a permanent downgrade" number.

Both tables land in ``latest_results.txt`` and are gated through
``baseline.json`` (``runtime.supervisor.*``) — wall-clock, so skipped on CI
runners like every other timing metric (shared policy in ``gating.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.runtime import SupervisedPool, WorkerCrashError

DISPATCH_CALLS = 20_000


class NoopPool:
    """A pool whose batch is free: isolates the supervisor's own dispatch."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers

    def featurise(self, payload):
        return payload

    def close(self) -> None:
        pass


def _echo_or_die(task: tuple[int, str]) -> int:
    value, sentinel = task
    if value == 0 and sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value


class EchoPool:
    """Minimal real-process pool for the restart-latency measurement."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self._executor = ProcessPoolExecutor(
            max_workers=num_workers, mp_context=multiprocessing.get_context("fork")
        )

    def map(self, tasks):
        try:
            return list(self._executor.map(_echo_or_die, tasks))
        except BrokenProcessPool as fault:
            raise WorkerCrashError("worker died mid-batch") from fault

    def warm(self) -> None:
        """Spawn the workers up front so the crash batch times the restart,
        not the initial cold start."""
        list(self._executor.map(_echo_or_die, [(1, ""), (2, "")]))

    def close(self) -> None:
        self._executor.shutdown(wait=True)


@pytest.mark.benchmark
@pytest.mark.slow
def test_supervisor_overhead_and_restart_latency(benchmark, tmp_path):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("restart-latency measurement needs the fork start method")

    def run():
        # -- dispatch overhead: raw pool calls vs supervised pool calls ------
        raw_pool = NoopPool(2)
        raw_start = time.perf_counter()
        for index in range(DISPATCH_CALLS):
            raw_pool.featurise(index)
        raw_seconds = time.perf_counter() - raw_start

        supervisor = SupervisedPool(NoopPool, min_workers=2, max_workers=2)
        supervised_start = time.perf_counter()
        for index in range(DISPATCH_CALLS):
            supervisor.run(lambda pool, _i=index: pool.featurise(_i), cost=1)
        supervised_seconds = time.perf_counter() - supervised_start
        supervisor.close()

        # -- restart latency: SIGKILL mid-batch -> recovered result ----------
        sentinel = str(tmp_path / "killed")
        tasks = [(value, sentinel) for value in range(8)]
        restart_supervisor = SupervisedPool(
            lambda workers: EchoPool(workers),
            min_workers=2,
            max_workers=2,
            max_restarts=2,
            backoff_base_s=0.05,
        )
        restart_supervisor.run(lambda pool: pool.warm(), cost=1)
        crash_start = time.perf_counter()
        recovered = restart_supervisor.run(
            lambda pool: pool.map(tasks), cost=len(tasks)
        )
        restart_seconds = time.perf_counter() - crash_start
        restarts = restart_supervisor.health()["restarts"]
        restart_supervisor.close()

        return {
            "raw_seconds": raw_seconds,
            "supervised_seconds": supervised_seconds,
            "recovered": recovered,
            "restart_seconds": restart_seconds,
            "restarts": restarts,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    raw_seconds = results["raw_seconds"]
    supervised_seconds = results["supervised_seconds"]
    print_table(
        "Supervised pool dispatch overhead "
        f"({DISPATCH_CALLS} no-op batches; {gate_reason()})",
        ["Path", "Calls", "Seconds", "Calls/s", "us/call"],
        [
            [
                "raw",
                str(DISPATCH_CALLS),
                f"{raw_seconds:.3f}",
                f"{DISPATCH_CALLS / raw_seconds:.0f}",
                f"{raw_seconds / DISPATCH_CALLS * 1e6:.2f}",
            ],
            [
                "supervised",
                str(DISPATCH_CALLS),
                f"{supervised_seconds:.3f}",
                f"{DISPATCH_CALLS / supervised_seconds:.0f}",
                f"{supervised_seconds / DISPATCH_CALLS * 1e6:.2f}",
            ],
        ],
    )
    print_table(
        "Supervisor restart latency (2 fork workers, 0.05 s backoff base)",
        ["Event", "Restarts", "Seconds"],
        [
            [
                "sigkill->recovered",
                str(results["restarts"]),
                f"{results['restart_seconds']:.3f}",
            ]
        ],
    )

    # Correctness invariants: always enforced.
    assert results["recovered"] == list(range(8))
    assert results["restarts"] == 1

    if wall_clock_enforced():
        # Supervision must never cost a meaningful fraction of a real batch:
        # per-call overhead stays under 100 microseconds even on slow boxes.
        per_call = supervised_seconds / DISPATCH_CALLS - raw_seconds / DISPATCH_CALLS
        assert per_call < 100e-6, (
            f"supervised dispatch adds {per_call * 1e6:.1f} us per batch"
        )
        # A crash blip must resolve in seconds, not minutes.
        assert results["restart_seconds"] < 30.0
