"""Fig. 4: exact vs approximate Pareto frontiers (latency vs dynamic power).

The paper plots, for Atax and Mvt at a 40 % sampling budget, the exact Pareto
frontier of the design space together with the approximate frontier found when
PowerGear provides the power predictions.  The benchmark regenerates the same
series as text (one row per frontier point) for the first two configured
kernels, which can be plotted directly or compared against Fig. 4's shape:
latency in the 10^3-10^5 cycle range against dynamic power of a few tenths of
a watt, with the approximate frontier hugging the exact one.
"""

from __future__ import annotations

import numpy as np

from conftest import evaluation_config, print_table
from repro.dse.explorer import DesignCandidate, DSEConfig, ParetoExplorer
from repro.flow.evaluation import MODEL_BUILDERS


def _candidates_for(dataset, kernel):
    subset = dataset.by_kernel(kernel)
    return [
        DesignCandidate(
            index=i,
            latency=float(s.latency_cycles),
            true_power=s.dynamic_power,
            config_vector=np.array(s.extras["config_vector"], dtype=float)
            if "config_vector" in s.extras
            else np.array([float(i)]),
            payload=s,
        )
        for i, s in enumerate(subset.samples)
    ]


def test_fig4_pareto_frontiers(benchmark, bench_dataset, bench_scale):
    kernels = list(bench_scale.kernels[:2])
    config = evaluation_config(bench_scale, target="dynamic")

    def run():
        frontiers = {}
        for kernel in kernels:
            train, _ = bench_dataset.leave_one_out(kernel)
            estimator = MODEL_BUILDERS["powergear"](config)
            estimator.fit(train.samples)
            candidates = _candidates_for(bench_dataset, kernel)

            def predictor(batch, estimator=estimator):
                return estimator.predict([c.payload for c in batch])

            result = ParetoExplorer(
                DSEConfig(initial_budget=0.02, total_budget=0.4, seed=0)
            ).explore(candidates, predictor)
            frontiers[kernel] = (candidates, result)
        return frontiers

    frontiers = benchmark.pedantic(run, rounds=1, iterations=1)

    for kernel, (candidates, result) in frontiers.items():
        rows = []
        for index in result.exact_pareto_indices:
            rows.append(
                [
                    "exact",
                    f"{candidates[index].latency:.0f}",
                    f"{candidates[index].true_power:.4f}",
                ]
            )
        for index in result.approximate_pareto_indices:
            rows.append(
                [
                    "approx",
                    f"{candidates[index].latency:.0f}",
                    f"{candidates[index].true_power:.4f}",
                ]
            )
        print_table(
            f"Fig. 4 ({kernel}): Pareto frontier points (latency cycles, dynamic power W) "
            f"- ADRS {result.adrs:.4f}",
            ["Frontier", "Latency", "Dynamic power"],
            rows,
        )
        assert result.exact_pareto_indices
        assert result.approximate_pareto_indices
        assert result.adrs >= 0.0
