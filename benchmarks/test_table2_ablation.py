"""Table II: ablation study of the HEC-GNN variants on dynamic power.

Variants (paper averages in parentheses): w/o opt. (11.74), w/o e.f. (10.20),
w/o dir. (9.22), w/o hetr. (9.57), w/o md. (9.77), sgl. (9.08) and the full
proposed ensemble prop. (8.81).  The benchmark regenerates the same columns
under the leave-one-out protocol at the configured scale.
"""

from __future__ import annotations

import numpy as np

from conftest import evaluation_config, print_table
from repro.flow.evaluation import ABLATION_VARIANTS, LeaveOneOutEvaluator

VARIANT_ORDER = ["w/o opt.", "w/o e.f.", "w/o dir.", "w/o hetr.", "w/o md.", "sgl.", "prop."]


def test_table2_ablation(benchmark, bench_dataset, bench_scale):
    config = evaluation_config(bench_scale, target="dynamic")
    evaluator = LeaveOneOutEvaluator(bench_dataset, config)

    def run():
        return evaluator.evaluate_models(VARIANT_ORDER)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for kernel in bench_scale.kernels:
        rows.append(
            [kernel] + [f"{results[v].per_kernel_error[kernel]:.2f}" for v in VARIANT_ORDER]
        )
    rows.append(["Average"] + [f"{results[v].average_error:.2f}" for v in VARIANT_ORDER])
    print_table(
        "Table II: error (%) of dynamic power estimation using HEC-GNN variants",
        ["Dataset"] + VARIANT_ORDER,
        rows,
    )

    assert set(results) == set(ABLATION_VARIANTS)
    for result in results.values():
        assert np.isfinite(result.average_error)
    # The fully unoptimised variant should not beat the proposed model by a
    # large margin; at paper scale it is the clearly worst variant.
    assert results["prop."].average_error < results["w/o opt."].average_error * 1.5
