"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper's evaluation has one benchmark module:

* ``test_table1_dataset.py``   — dataset-properties columns of Table I
* ``test_table1_accuracy.py``  — total / dynamic power errors of Table I
* ``test_table1_runtime.py``   — runtime-speedup column of Table I
* ``test_table2_ablation.py``  — HEC-GNN ablation variants of Table II
* ``test_table3_dse.py``       — ADRS of the DSE case study (Table III)
* ``test_fig4_pareto.py``      — Pareto frontiers of Fig. 4

The benchmarks run a reduced configuration by default so the whole harness
finishes on a laptop; set the environment variables below to scale toward the
paper's setup (at a corresponding cost in wall-clock time):

* ``POWERGEAR_BENCH_KERNELS``  — comma-separated kernel list (default: a 4-kernel subset; use ``all`` for all nine)
* ``POWERGEAR_BENCH_DESIGNS``  — design points per kernel (default 24; paper ~500)
* ``POWERGEAR_BENCH_EPOCHS``   — GNN training epochs (default 120; paper 1200/2400)
* ``POWERGEAR_BENCH_SIZE``     — PolyBench problem size (default 8)
* ``POWERGEAR_BENCH_HIDDEN``   — hidden dimension (default 32; paper 128)
* ``POWERGEAR_BENCH_ENSEMBLE`` — ensemble folds, 0 disables the ensemble (default 0; paper 10 folds x 3 seeds)

Each benchmark prints the rows it regenerates in the same layout as the paper
table so the shape (ordering of methods, approximate ratios) can be compared
directly; EXPERIMENTS.md records one full run.

Wall-clock assertions (and the regression gate in ``check_regression.py``)
share one CI / core-count gating policy, defined once in :mod:`gating` —
benchmarks must import ``wall_clock_enforced`` / ``gate_reason`` from there
instead of re-deriving the check.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.evaluation import EvaluationConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig
from repro.graph.dataset import GraphDataset
from repro.kernels.polybench import polybench_names


@dataclass(frozen=True)
class BenchmarkScale:
    """Resolved benchmark sizing (reduced by default, overridable via env vars)."""

    kernels: tuple[str, ...]
    designs_per_kernel: int
    epochs: int
    kernel_size: int
    hidden_dim: int
    ensemble_members: int

    @staticmethod
    def from_environment() -> "BenchmarkScale":
        kernels_env = os.environ.get("POWERGEAR_BENCH_KERNELS", "atax,gemm,mvt,syrk")
        if kernels_env.strip().lower() == "all":
            kernels = tuple(polybench_names())
        else:
            kernels = tuple(k.strip() for k in kernels_env.split(",") if k.strip())
        return BenchmarkScale(
            kernels=kernels,
            designs_per_kernel=int(os.environ.get("POWERGEAR_BENCH_DESIGNS", "24")),
            epochs=int(os.environ.get("POWERGEAR_BENCH_EPOCHS", "120")),
            kernel_size=int(os.environ.get("POWERGEAR_BENCH_SIZE", "8")),
            hidden_dim=int(os.environ.get("POWERGEAR_BENCH_HIDDEN", "32")),
            ensemble_members=int(os.environ.get("POWERGEAR_BENCH_ENSEMBLE", "0")),
        )


@pytest.fixture(scope="session")
def bench_scale() -> BenchmarkScale:
    return BenchmarkScale.from_environment()


@pytest.fixture(scope="session")
def bench_dataset(bench_scale) -> GraphDataset:
    """The generated dataset shared by every benchmark in the session."""
    config = DatasetConfig(
        kernel_size=bench_scale.kernel_size,
        designs_per_kernel=bench_scale.designs_per_kernel,
    )
    return DatasetGenerator(config).generate(list(bench_scale.kernels))


def evaluation_config(bench_scale: BenchmarkScale, target: str) -> EvaluationConfig:
    """Evaluation configuration matching the benchmark scale."""
    ensemble = None
    if bench_scale.ensemble_members >= 2:
        ensemble = EnsembleConfig(folds=bench_scale.ensemble_members, seeds=(0,))
    return EvaluationConfig(
        target=target,
        gnn=GNNConfig(hidden_dim=bench_scale.hidden_dim, num_layers=3),
        training=TrainingConfig(
            epochs=bench_scale.epochs,
            batch_size=32,
            learning_rate=2e-3,
            target=target,
        ),
        ensemble=ensemble,
    )


#: Regenerated tables are also appended here so they survive pytest's output
#: capture (run with ``-s`` to see them live).
RESULTS_FILE = os.path.join(os.path.dirname(__file__), "latest_results.txt")


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Print an aligned table (the regenerated paper table) and log it to a file."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    text = "\n".join(lines)
    print(text)
    with open(RESULTS_FILE, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")
