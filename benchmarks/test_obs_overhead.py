"""Instrumentation cost, measured: what observability adds to the hot path.

The obs subsystem rides every request — a span per stage, a histogram sample
per latency, a counter bump per cache lookup — so its dispatch cost must
stay orders of magnitude under the work it wraps (featurisation is
milliseconds per design; a span must be microseconds).  Four numbers:

* **span (enabled)**  — open+close one child span on a live trace
* **span (disabled)** — the same call with tracing off (the no-op path the
  ``tracing=False`` config buys; must be near-free)
* **histogram observe** — one labelled latency sample
* **counter inc**     — one labelled counter bump

The table lands in ``latest_results.txt`` and is gated through
``baseline.json`` (``obs.overhead.*``) — wall-clock, so skipped on CI
runners like every other timing metric (shared policy in ``gating.py``).
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.obs import Observability

OPS = 20_000


@pytest.mark.benchmark
def test_obs_instrumentation_overhead(benchmark):
    def run():
        enabled = Observability(tracing=True, trace_ring=64)
        disabled = Observability(tracing=False)

        # Spans nested under a root, like real stage spans under a request.
        start = time.perf_counter()
        with enabled.tracer.span("request"):
            for _ in range(OPS):
                with enabled.tracer.span("stage"):
                    pass
        span_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with disabled.tracer.span("request"):
            for _ in range(OPS):
                with disabled.tracer.span("stage"):
                    pass
        disabled_seconds = time.perf_counter() - start

        stage = enabled.stage_seconds.labels(stage="featurise")
        start = time.perf_counter()
        for _ in range(OPS):
            stage.observe(0.001)
        observe_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(OPS):
            enabled.cache_requests.labels(
                kind="sample", tier="memory", outcome="hit"
            ).inc()
        counter_seconds = time.perf_counter() - start

        return {
            "enabled": enabled,
            "span_seconds": span_seconds,
            "disabled_seconds": disabled_seconds,
            "observe_seconds": observe_seconds,
            "counter_seconds": counter_seconds,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def row(name: str, seconds: float) -> list[str]:
        return [name, str(OPS), f"{seconds:.3f}", f"{seconds / OPS * 1e6:.2f}"]

    print_table(
        f"Observability instrumentation overhead ({gate_reason()})",
        ["Instrument", "Ops", "Seconds", "us/op"],
        [
            row("span_enabled", results["span_seconds"]),
            row("span_disabled", results["disabled_seconds"]),
            row("histogram_observe", results["observe_seconds"]),
            row("counter_inc", results["counter_seconds"]),
        ],
    )

    # Correctness invariants: always enforced.  The ring stayed bounded (the
    # root trace holds OPS+1 spans but the ring holds at most 64 traces), the
    # disabled tracer recorded nothing, and every sample landed.
    enabled = results["enabled"]
    assert enabled.tracer.stats()["ring"] == 1
    assert enabled.stage_seconds.labels(stage="featurise").snapshot()["count"] == OPS
    assert (
        enabled.cache_requests.labels(kind="sample", tier="memory", outcome="hit").value
        == OPS
    )

    if wall_clock_enforced():
        # A span must stay microseconds against millisecond-scale stages; the
        # disabled path must be cheaper still.  Generous ceilings — only an
        # accidental O(n) (e.g. scanning the ring per span) should trip them.
        assert results["span_seconds"] / OPS < 100e-6
        assert results["disabled_seconds"] / OPS < 20e-6
        assert results["observe_seconds"] / OPS < 50e-6
        assert results["counter_seconds"] / OPS < 50e-6
