"""Packed mega-graph forward microbenchmark: backends + pooled prediction.

Two measurements on one synthetic ensemble workload:

* **backend comparison** — the same ``predict_batch`` (one packed forward per
  ensemble member) timed under the ``numpy`` reference backend and the
  ``optimized`` backend (workspace pooling + fused kernels).  Bitwise
  equality of the predictions is asserted unconditionally; the throughput
  floor (optimized >= the committed baseline, i.e. at least numpy-parity) is
  a wall-clock assertion gated by the shared CI policy.
* **pooled forward** — serial in-process prediction vs the
  :class:`~repro.runtime.pool.ForwardPool` sharding the member axis across
  worker processes on shared-memory weights.  Bitwise equality is asserted
  unconditionally; the >1x speedup contract for a >=8-member ensemble is
  enforced only on non-CI machines with >= 4 usable cores (the same gate as
  the featurisation-pool benchmark).

The tables land in ``latest_results.txt`` and feed the regression gate
(``baseline.json``: ``backend.packed_forward.*``, ``runtime.forward_pool.*``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.backend import get_backend, use_backend
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.trainer import TrainingConfig
from repro.graph.dataset import GraphSample
from repro.graph.hetero_graph import HeteroGraph
from repro.runtime import ForwardPool, available_cpus

FORWARD_WORKERS = 4
ENSEMBLE_FOLDS = 8
ENSEMBLE_SEEDS = (0, 1)  # 16 members — comfortably past the >=8 contract
QUERY_DESIGNS = 64
REPEATS = 3


def _synthetic_samples(count: int, seed: int, min_nodes: int = 50, max_nodes: int = 90):
    """Random power graphs big enough that the forward dominates overheads."""
    rng = np.random.default_rng(seed)
    samples = []
    for index in range(count):
        power = 0.1 + float(rng.random()) * 0.5
        num_nodes = int(rng.integers(min_nodes, max_nodes))
        num_edges = 3 * num_nodes
        graph = HeteroGraph(
            node_features=rng.random((num_nodes, 6)),
            edge_index=np.stack(
                [
                    rng.integers(0, num_nodes, num_edges),
                    rng.integers(0, num_nodes, num_edges),
                ]
            ),
            edge_features=rng.random((num_edges, 4)) * power,
            edge_types=rng.integers(0, 4, num_edges),
            metadata=rng.random(5) * power,
            node_is_arithmetic=rng.random(num_nodes) > 0.5,
        )
        samples.append(
            GraphSample(
                graph=graph,
                kernel="synthetic",
                directives=f"point{index}",
                total_power=power + 0.6,
                dynamic_power=power,
                static_power=0.6,
                latency_cycles=100 + index,
            )
        )
    return samples


def _fit_ensemble(samples, hidden: int) -> PowerGear:
    # One epoch per member: prediction throughput does not depend on how
    # converged the weights are, only on the shapes, so training is token.
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=hidden, num_layers=3),
            training=TrainingConfig(epochs=1, batch_size=16),
            ensemble=EnsembleConfig(folds=ENSEMBLE_FOLDS, seeds=ENSEMBLE_SEEDS),
        )
    ).fit(samples)


@pytest.mark.benchmark
@pytest.mark.slow
def test_backend_packed_forward(benchmark, bench_scale):
    hidden = max(bench_scale.hidden_dim, 64)
    train = _synthetic_samples(24, seed=1, min_nodes=20, max_nodes=30)
    queries = _synthetic_samples(QUERY_DESIGNS, seed=2)
    model = _fit_ensemble(train, hidden)
    num_members = len(model.ensemble.members)

    def run():
        timings: dict[str, tuple[np.ndarray, float]] = {}
        for name in ("numpy", "optimized"):
            with use_backend(name):
                model.predict_batch(queries)  # warm (workspaces, BLAS, caches)
                start = time.perf_counter()
                for _ in range(REPEATS):
                    predictions = model.predict_batch(queries)
                timings[name] = (predictions, time.perf_counter() - start)

        # -- pooled forward: serial vs member-sharded worker processes -------
        with use_backend("numpy"):
            serial_start = time.perf_counter()
            for _ in range(REPEATS):
                serial_predictions = model.predict_batch(queries)
            serial_seconds = time.perf_counter() - serial_start

        with ForwardPool(model, num_workers=FORWARD_WORKERS) as pool:
            pool.predict_batch(queries)  # warm: forks + shared-segment attach
            pooled_start = time.perf_counter()
            for _ in range(REPEATS):
                pooled_predictions = pool.predict_batch(queries)
            pooled_seconds = time.perf_counter() - pooled_start
            shared_bytes = pool.stats.shared_bytes

        return {
            "timings": timings,
            "serial_predictions": serial_predictions,
            "serial_seconds": serial_seconds,
            "pooled_predictions": pooled_predictions,
            "pooled_seconds": pooled_seconds,
            "shared_bytes": shared_bytes,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    designs = REPEATS * QUERY_DESIGNS
    numpy_predictions, numpy_seconds = results["timings"]["numpy"]
    optimized_predictions, optimized_seconds = results["timings"]["optimized"]
    backend_speedup = numpy_seconds / optimized_seconds
    workspace = get_backend("optimized").stats.as_dict()

    backend_enforced = wall_clock_enforced()
    print_table(
        f"Packed mega-graph forward backends ({num_members} members, "
        f"hidden {hidden}, {available_cpus()} usable cores; parity assert "
        f"{gate_reason()})",
        ["Backend", "Members", "Designs", "Seconds", "Designs/s", "Speedup"],
        [
            [
                "numpy",
                str(num_members),
                str(designs),
                f"{numpy_seconds:.3f}",
                f"{designs / numpy_seconds:.1f}",
                "1.0x",
            ],
            [
                "optimized",
                str(num_members),
                str(designs),
                f"{optimized_seconds:.3f}",
                f"{designs / optimized_seconds:.1f}",
                f"{backend_speedup:.2f}x",
            ],
        ],
    )

    serial_seconds = results["serial_seconds"]
    pooled_seconds = results["pooled_seconds"]
    pool_speedup = serial_seconds / pooled_seconds
    pool_enforced = wall_clock_enforced(min_cores=FORWARD_WORKERS)
    print_table(
        f"Pooled packed forward ({num_members} members x{FORWARD_WORKERS} workers, "
        f"{results['shared_bytes'] / 1024:.0f} KiB shared weights; >1x assert "
        f"{gate_reason(min_cores=FORWARD_WORKERS)})",
        ["Path", "Designs", "Seconds", "Designs/s", "Speedup"],
        [
            [
                "serial",
                str(designs),
                f"{serial_seconds:.3f}",
                f"{designs / serial_seconds:.1f}",
                "1.0x",
            ],
            [
                f"pool x{FORWARD_WORKERS}",
                str(designs),
                f"{pooled_seconds:.3f}",
                f"{designs / pooled_seconds:.1f}",
                f"{pool_speedup:.2f}x",
            ],
        ],
    )

    # Correctness invariants: always enforced, bitwise.
    assert optimized_predictions.tobytes() == numpy_predictions.tobytes(), (
        "optimized backend diverged bitwise from the numpy reference"
    )
    assert results["pooled_predictions"].tobytes() == results[
        "serial_predictions"
    ].tobytes(), "pooled forward diverged bitwise from serial prediction"
    # The optimized backend's levers actually engaged.
    assert workspace["forwards"] > 0
    assert workspace["workspace_hits"] > 0
    assert workspace["fused_linear"] > 0

    if backend_enforced:
        assert backend_speedup >= 0.95, (
            f"optimized backend fell to {backend_speedup:.2f}x of the numpy "
            "reference on the packed forward"
        )
    if pool_enforced:
        assert pool_speedup > 1.0, (
            f"pooled forward is only {pool_speedup:.2f}x serial with "
            f"{FORWARD_WORKERS} workers for {num_members} members on "
            f"{available_cpus()} cores"
        )
