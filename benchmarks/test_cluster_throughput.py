"""Cluster router throughput: 2 replicas behind kernel-affinity routing.

One workload — every design point of each benchmark kernel as per-kernel
``estimate_many`` batches — served two ways:

* **direct**: one in-process :class:`PowerEstimationService` working through
  the batches sequentially (the single-process ceiling of PRs 1–6);
* **router x2**: the same batches fired concurrently at a
  :class:`~repro.cluster.router.ClusterRouter` over two replica processes,
  so different kernels' featurisation + forward passes genuinely overlap
  across processes (kernel affinity keeps each kernel on one replica).

Correctness — routed responses bitwise-equal to the direct ones, traffic
actually spread over both replicas, zero retries/ejections — is always
enforced.  The speedup assertion needs real cores for the replicas to run
on, so it goes through the shared ``gating`` helper with a 4-core floor; the
printed table lands in ``latest_results.txt``, where ``check_regression.py``
gates ``cluster.router.{designs_per_s,speedup}`` against ``baseline.json``
under the same policy.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.cluster import ClusterConfig, ClusterRouter, ReplicaManager, ReplicaSpec
from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.runtime.http import HTTPConnectionPool, directives_to_json
from repro.serve import ModelRegistry

NUM_REPLICAS = 2
MIN_CORES = 4  # 2 replicas + router + client need room to overlap
MODEL_NAME = "cluster-bench"


@pytest.mark.benchmark
@pytest.mark.slow
def test_cluster_router_throughput(benchmark, bench_dataset, bench_scale, tmp_path):
    dataset_config = DatasetConfig(
        kernel_size=bench_scale.kernel_size,
        designs_per_kernel=bench_scale.designs_per_kernel,
    )
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=bench_scale.hidden_dim, num_layers=3),
            training=TrainingConfig(
                epochs=min(bench_scale.epochs, 40), batch_size=32, learning_rate=2e-3
            ),
            ensemble=None,
        )
    ).fit(bench_dataset.samples)
    registry_dir = tmp_path / "registry"
    ModelRegistry(registry_dir).save(model, MODEL_NAME)

    generator = DatasetGenerator(dataset_config)
    batches = {}
    for kernel in bench_scale.kernels:
        space = generator.design_space_for(
            polybench_kernel(kernel, bench_scale.kernel_size)
        )
        batches[kernel] = [
            {"kernel": kernel, "directives": directives_to_json(directives)}
            for directives in space.points
        ]
    total_designs = sum(len(batch) for batch in batches.values())
    spec = ReplicaSpec(
        registry_dir=registry_dir,
        model_name=MODEL_NAME,
        dataset_config=dataset_config,
    )

    def run():
        # Direct ceiling: a fresh single service, batches back to back.
        direct_service, _ = spec.build_service()
        try:
            from repro.runtime.http import estimate_request_from_json

            direct_start = time.perf_counter()
            direct = {
                kernel: direct_service.estimate_many(
                    [estimate_request_from_json(payload) for payload in batch]
                )
                for kernel, batch in batches.items()
            }
            direct_seconds = time.perf_counter() - direct_start
        finally:
            direct_service.close()

        routed, routed_seconds, cluster = asyncio.run(_routed_run(spec, batches))
        return {
            "direct": direct,
            "direct_seconds": direct_seconds,
            "routed": routed,
            "routed_seconds": routed_seconds,
            "cluster": cluster,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    direct_rate = total_designs / results["direct_seconds"]
    routed_rate = total_designs / results["routed_seconds"]
    speedup = results["direct_seconds"] / results["routed_seconds"]
    enforced = wall_clock_enforced(MIN_CORES)
    print_table(
        f"Cluster router throughput ({len(batches)} kernels, {total_designs} "
        f"designs, {NUM_REPLICAS} replicas; speedup assert "
        f"{gate_reason(MIN_CORES)})",
        ["Path", "Designs", "Seconds", "Designs/s", "Speedup"],
        [
            [
                "direct estimate_many",
                str(total_designs),
                f"{results['direct_seconds']:.3f}",
                f"{direct_rate:.0f}",
                "-",
            ],
            [
                f"router x{NUM_REPLICAS}",
                str(total_designs),
                f"{results['routed_seconds']:.3f}",
                f"{routed_rate:.0f}",
                f"{speedup:.2f}",
            ],
        ],
    )

    # Correctness invariants: always enforced, machine-independent.
    for kernel, batch in batches.items():
        expected = [response.power for response in results["direct"][kernel]]
        served = [r["power"] for r in results["routed"][kernel]]
        assert served == expected, f"routed {kernel} diverged from direct (bitwise)"
    cluster = results["cluster"]
    replicas = cluster["replicas"]
    assert len(replicas) == NUM_REPLICAS
    assert all(r["state"] == "ready" for r in replicas.values())
    designs_per_replica = [r["designs"] for r in replicas.values()]
    assert sum(designs_per_replica) == total_designs
    assert all(count > 0 for count in designs_per_replica), (
        f"affinity routing starved a replica: {designs_per_replica}"
    )
    assert cluster["stats"]["retries"] == 0
    assert cluster["stats"]["ejections"] == 0

    if enforced:
        assert speedup >= 1.2, (
            f"2-replica cluster is only {speedup:.2f}x the direct path "
            "(per-kernel batches should overlap across replica processes)"
        )


async def _routed_run(spec: ReplicaSpec, batches: dict) -> tuple[dict, float, dict]:
    """All per-kernel batches concurrently through a fresh 2-replica cluster."""
    manager = ReplicaManager(spec, num_replicas=NUM_REPLICAS)
    router = ClusterRouter(manager, config=ClusterConfig(health_interval_s=1.0))
    host, port = await router.start()
    pool = HTTPConnectionPool(host, port, max_idle=len(batches))
    try:

        async def one(kernel, batch):
            status, payload = await pool.request_json(
                "POST", "/v1/estimate_many", {"requests": batch}
            )
            assert status == 200, payload
            return kernel, payload["responses"]

        start = time.perf_counter()
        responses = await asyncio.gather(
            *(one(kernel, batch) for kernel, batch in batches.items())
        )
        seconds = time.perf_counter() - start
        status, _, data = await pool.request("GET", "/v1/cluster")
        assert status == 200
        return dict(responses), seconds, json.loads(data.decode())
    finally:
        await pool.aclose()
        await router.aclose(close_manager=True)
