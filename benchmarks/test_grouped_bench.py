"""Grouped one-GEMM forward + graph-axis sharding microbenchmarks.

Two measurements on synthetic single-model workloads (the grouped path and
the graph axis are both member-count-independent, so a single model keeps
the timings about the kernels rather than the ensemble loop):

* **grouped relation forward** — the same ``predict_batch`` timed with the
  per-relation loop (``REPRO_GROUPED_FORWARD=off``), the grouped one-GEMM
  path (``on``), and the grouped path on the ``f32`` accelerator tier.
  Bitwise equality of grouped-vs-loop and the f32 tier's ``F32_TOLERANCE``
  contract are asserted unconditionally; the >=1.5x grouped+f32 speedup
  floor is a wall-clock assertion gated by the shared CI policy.
* **graph-axis sharded forward** — serial segmented prediction vs the
  :class:`~repro.runtime.pool.ForwardPool` sharding whole forward segments
  across worker processes on a shared-memory packed batch.  Bitwise equality
  is asserted unconditionally; the >1x speedup contract is enforced only on
  non-CI machines with >= 4 usable cores.

The tables land in ``latest_results.txt`` and feed the regression gate
(``baseline.json``: ``backend.grouped_forward.*``,
``runtime.forward_pool.graph_shard_speedup``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import print_table
from gating import gate_reason, wall_clock_enforced
from repro.backend import OptimizedBackend, get_backend, use_backend
from repro.backend.optimized import F32_TOLERANCE
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.base import GROUPED_ENV_VAR, SEGMENT_ENV_VAR
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.runtime import ForwardPool, available_cpus
from test_backend_forward import _synthetic_samples

REPEATS = 3
GROUPED_QUERY_DESIGNS = 64
SHARD_WORKERS = 4
SHARD_QUERY_DESIGNS = 96
SHARD_SEGMENT_NODES = 1024


def _fit_single(samples, hidden: int) -> PowerGear:
    # One epoch: throughput depends on shapes, not convergence.
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=hidden, num_layers=3),
            training=TrainingConfig(epochs=1, batch_size=16),
            ensemble=None,
        )
    ).fit(samples)


@pytest.mark.benchmark
@pytest.mark.slow
def test_grouped_relation_forward(benchmark, bench_scale):
    hidden = max(bench_scale.hidden_dim, 64)
    train = _synthetic_samples(24, seed=11, min_nodes=20, max_nodes=30)
    queries = _synthetic_samples(GROUPED_QUERY_DESIGNS, seed=12)
    model = _fit_single(train, hidden)
    optimized = get_backend("optimized")
    f32 = OptimizedBackend(accel="f32")

    def timed(backend, grouped: str):
        os.environ[GROUPED_ENV_VAR] = grouped
        try:
            with use_backend(backend):
                model.predict_batch(queries)  # warm (workspaces, caches)
                start = time.perf_counter()
                for _ in range(REPEATS):
                    predictions = model.predict_batch(queries)
                return predictions, time.perf_counter() - start
        finally:
            os.environ.pop(GROUPED_ENV_VAR, None)

    def run():
        loop_predictions, loop_seconds = timed(optimized, "off")
        before = optimized.stats.as_dict()
        grouped_predictions, grouped_seconds = timed(optimized, "on")
        after = optimized.stats.as_dict()
        f32_predictions, f32_seconds = timed(f32, "on")
        return {
            "loop": (loop_predictions, loop_seconds),
            "grouped": (grouped_predictions, grouped_seconds),
            "f32": (f32_predictions, f32_seconds),
            "grouped_matmuls": after["grouped_matmuls"] - before["grouped_matmuls"],
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    designs = REPEATS * GROUPED_QUERY_DESIGNS
    loop_predictions, loop_seconds = results["loop"]
    grouped_predictions, grouped_seconds = results["grouped"]
    f32_predictions, f32_seconds = results["f32"]
    grouped_speedup = loop_seconds / grouped_seconds
    f32_speedup = loop_seconds / f32_seconds

    enforced = wall_clock_enforced()
    print_table(
        f"Grouped relation forward (hidden {hidden}, {available_cpus()} "
        f"usable cores; >=1.5x grouped+f32 assert {gate_reason()})",
        ["Path", "Designs", "Seconds", "Designs/s", "Speedup"],
        [
            [
                "loop",
                str(designs),
                f"{loop_seconds:.3f}",
                f"{designs / loop_seconds:.1f}",
                "1.0x",
            ],
            [
                "grouped",
                str(designs),
                f"{grouped_seconds:.3f}",
                f"{designs / grouped_seconds:.1f}",
                f"{grouped_speedup:.2f}x",
            ],
            [
                "grouped+f32",
                str(designs),
                f"{f32_seconds:.3f}",
                f"{designs / f32_seconds:.1f}",
                f"{f32_speedup:.2f}x",
            ],
        ],
    )

    # Correctness invariants: always enforced.
    assert np.ptp(loop_predictions) > 1e-6  # non-vacuous above the clamp floor
    assert grouped_predictions.tobytes() == loop_predictions.tobytes(), (
        "grouped one-GEMM forward diverged bitwise from the per-relation loop"
    )
    assert results["grouped_matmuls"] > 0  # the grouped path genuinely ran
    rtol, atol = F32_TOLERANCE
    assert np.allclose(f32_predictions, loop_predictions, rtol=rtol, atol=atol), (
        "f32 accelerator tier broke its advertised tolerance contract"
    )

    if enforced:
        assert f32_speedup >= 1.5, (
            f"grouped+f32 forward is only {f32_speedup:.2f}x the per-relation "
            "loop (contract: >= 1.5x)"
        )


@pytest.mark.benchmark
@pytest.mark.slow
def test_graph_axis_sharded_forward(benchmark, bench_scale):
    hidden = max(bench_scale.hidden_dim, 64)
    train = _synthetic_samples(24, seed=13, min_nodes=20, max_nodes=30)
    queries = _synthetic_samples(SHARD_QUERY_DESIGNS, seed=14)
    model = _fit_single(train, hidden)

    # Small deterministic segments so one packed batch decomposes into
    # enough whole-segment shards for every worker; serial and pooled share
    # the same segment size, which is what makes them bitwise-comparable.
    os.environ[SEGMENT_ENV_VAR] = str(SHARD_SEGMENT_NODES)
    try:

        def run():
            with use_backend("numpy"):
                model.predict_batch(queries)  # warm
                serial_start = time.perf_counter()
                for _ in range(REPEATS):
                    serial_predictions = model.predict_batch(queries)
                serial_seconds = time.perf_counter() - serial_start

            with ForwardPool(
                model, num_workers=SHARD_WORKERS, shard_axis="graphs"
            ) as pool:
                pool.predict_batch(queries)  # warm: forks + shm attach
                pooled_start = time.perf_counter()
                for _ in range(REPEATS):
                    pooled_predictions = pool.predict_batch(queries)
                pooled_seconds = time.perf_counter() - pooled_start
                shared_batch_bytes = pool.stats.shared_batch_bytes

            return {
                "serial_predictions": serial_predictions,
                "serial_seconds": serial_seconds,
                "pooled_predictions": pooled_predictions,
                "pooled_seconds": pooled_seconds,
                "shared_batch_bytes": shared_batch_bytes,
            }

        results = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        os.environ.pop(SEGMENT_ENV_VAR, None)

    designs = REPEATS * SHARD_QUERY_DESIGNS
    serial_seconds = results["serial_seconds"]
    pooled_seconds = results["pooled_seconds"]
    speedup = serial_seconds / pooled_seconds
    enforced = wall_clock_enforced(min_cores=SHARD_WORKERS)
    print_table(
        f"Graph-axis sharded packed forward (single model x{SHARD_WORKERS} "
        f"workers, {SHARD_SEGMENT_NODES}-node segments, "
        f"{results['shared_batch_bytes'] / 1024:.0f} KiB shared batch; "
        f">1x assert {gate_reason(min_cores=SHARD_WORKERS)})",
        ["Path", "Designs", "Seconds", "Designs/s", "Speedup"],
        [
            [
                "serial",
                str(designs),
                f"{serial_seconds:.3f}",
                f"{designs / serial_seconds:.1f}",
                "1.0x",
            ],
            [
                f"shard x{SHARD_WORKERS}",
                str(designs),
                f"{pooled_seconds:.3f}",
                f"{designs / pooled_seconds:.1f}",
                f"{speedup:.2f}x",
            ],
        ],
    )

    assert np.ptp(results["serial_predictions"]) > 1e-6
    assert results["pooled_predictions"].tobytes() == results[
        "serial_predictions"
    ].tobytes(), "graph-axis sharded forward diverged bitwise from serial"
    assert results["shared_batch_bytes"] > 0  # the batch rode shared memory

    if enforced:
        assert speedup > 1.0, (
            f"graph-axis sharding is only {speedup:.2f}x serial with "
            f"{SHARD_WORKERS} workers on {available_cpus()} cores"
        )
