#!/usr/bin/env python
"""CI benchmark-regression gate over the tracked results log.

``latest_results.txt`` is the append-only log every benchmark table lands in;
this script turns it from a log into a guardrail.  It extracts the throughput
/ speedup numbers named in ``baseline.json`` from the *latest* occurrence of
each table and fails (exit 1) when an enforced metric regressed more than the
tolerance against its committed baseline.

Gating matches the benchmark suite exactly (the shared ``gating`` module):
wall-clock metrics (marked ``"non_ci": true`` and/or ``"min_cores": N``) are
reported but skipped on CI runners / low-core machines, where only the
machine-independent ratio metrics are enforced.  Baselines are refreshed
deliberately, never silently::

    python benchmarks/check_regression.py                    # gate
    python benchmarks/check_regression.py --write-baseline   # refresh values

Stdlib-only on purpose: the CI gate job runs it on a bare checkout against a
downloaded results artifact, with no numpy and no installed package.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from gating import gate_reason, on_ci, usable_cpus, wall_clock_enforced

HERE = Path(__file__).resolve().parent
DEFAULT_RESULTS = HERE / "latest_results.txt"
DEFAULT_BASELINE = HERE / "baseline.json"


class GateError(Exception):
    """A structural failure (missing table / row / column), exit code 2."""


def parse_tables(text: str) -> list[tuple[str, list[dict[str, str]]]]:
    """Every table in the log, in file order (so the last match is newest).

    A table is ``=== title ===`` followed by an aligned header row and data
    rows; cells are separated by two or more spaces.  The log is append-only
    and titles vary slightly between runs (core counts, gate reasons in the
    suffix), so occurrences are kept as an ordered list — never collapsed by
    title — and metric resolution picks the *positionally last* match.
    """
    tables: list[tuple[str, list[dict[str, str]]]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = re.match(r"^=== (.*) ===$", lines[index].strip())
        if not match:
            index += 1
            continue
        title = match.group(1)
        index += 1
        if index >= len(lines):
            break
        header = re.split(r"\s{2,}", lines[index].strip())
        index += 1
        rows: list[dict[str, str]] = []
        while index < len(lines):
            line = lines[index].rstrip()
            if not line.strip() or line.strip().startswith("==="):
                break
            cells = re.split(r"\s{2,}", line.strip())
            if len(cells) == len(header):
                rows.append(dict(zip(header, cells)))
            index += 1
        tables.append((title, rows))
    return tables


def _cell_value(cell: str) -> float:
    """Numeric cell content; speedups are printed as e.g. ``2.7x``."""
    return float(cell.rstrip("x"))


def resolve_metric(tables: list, spec: dict, name: str) -> float:
    """Extract one metric's current value from the latest matching table."""
    title_prefix = spec["table"]
    matches = [
        (title, rows) for title, rows in tables if title.startswith(title_prefix)
    ]
    if not matches:
        raise GateError(f"{name}: no table titled {title_prefix!r} in the results log")
    matched_title, rows = matches[-1]
    label = rows and next(iter(rows[0]))  # first column holds the row label
    if "row_prefix" in spec:
        candidates = [r for r in rows if r[label].startswith(spec["row_prefix"])]
    else:
        candidates = [r for r in rows if r[label] == spec["row"]]
    if not candidates:
        wanted = spec.get("row", spec.get("row_prefix"))
        raise GateError(f"{name}: no row {wanted!r} in table {matched_title!r}")
    column = spec["column"]
    try:
        values = [_cell_value(row[column]) for row in candidates]
    except KeyError:
        raise GateError(f"{name}: no column {column!r} in table {matched_title!r}") from None
    except ValueError as error:
        raise GateError(f"{name}: non-numeric cell under {column!r}: {error}") from None
    aggregate = spec.get("aggregate", "first")
    if aggregate == "max":
        return max(values)
    if aggregate != "first":
        raise GateError(f"{name}: unknown aggregate {aggregate!r}")
    return values[0]


def _metric_enforced(spec: dict) -> bool:
    """Whether this machine's measurement of the metric is trustworthy.

    One policy for both directions: ``check`` only *enforces* metrics that
    pass it, and ``write_baseline`` only *refreshes* metrics that pass it —
    a gated run must neither fail the gate nor pollute the baseline.
    """
    min_cores = int(spec.get("min_cores", 0))
    wall_clock = bool(spec.get("non_ci", False)) or min_cores > 0
    return not wall_clock or wall_clock_enforced(min_cores=min_cores)


def check(results_path: Path, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    tables = parse_tables(results_path.read_text())
    default_tolerance = float(baseline.get("tolerance", 0.25))

    failures = 0
    print(
        f"benchmark regression gate: {results_path} vs {baseline_path} "
        f"(default tolerance {default_tolerance:.0%}, "
        f"{usable_cpus()} cores, {'CI' if on_ci() else 'local'} run)"
    )
    for name, spec in baseline["metrics"].items():
        current = resolve_metric(tables, spec, name)
        reference = float(spec["value"])
        tolerance = float(spec.get("tolerance", default_tolerance))
        change = (current - reference) / reference if reference else 0.0

        enforced = _metric_enforced(spec)
        regressed = (
            change < -tolerance if spec.get("higher_is_better", True) else change > tolerance
        )

        if not enforced:
            status = f"SKIPPED ({gate_reason(min_cores=int(spec.get('min_cores', 0)))})"
        elif regressed:
            status = f"REGRESSED (beyond {tolerance:.0%})"
            failures += 1
        else:
            status = "ok"
        print(
            f"  {name:44s} baseline {reference:10.2f}  "
            f"current {current:10.2f}  {change:+7.1%}  {status}"
        )
    if failures:
        print(f"FAIL: {failures} metric(s) regressed beyond tolerance")
        return 1
    print("PASS: no enforced metric regressed beyond tolerance")
    return 0


def write_baseline(results_path: Path, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    tables = parse_tables(results_path.read_text())
    written = 0
    for name, spec in baseline["metrics"].items():
        if spec.get("pinned"):
            # Policy values (contractual floors), not measurements — a refresh
            # must never turn them into whatever this machine happened to do.
            print(f"  {name}: pinned at {spec['value']}, not refreshed")
            continue
        if not _metric_enforced(spec):
            # This machine's number is exactly what the gate itself would
            # refuse to judge by; writing it would poison future enforced runs.
            print(f"  {name}: {gate_reason(min_cores=int(spec.get('min_cores', 0)))}, not refreshed")
            continue
        spec["value"] = round(resolve_metric(tables, spec, name), 4)
        written += 1
    baseline_path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {written} baseline values to {baseline_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh the committed baseline values from the results log",
    )
    args = parser.parse_args(argv)
    try:
        if args.write_baseline:
            return write_baseline(args.results, args.baseline)
        return check(args.results, args.baseline)
    except (GateError, FileNotFoundError) as error:
        print(f"ERROR: {error}")
        return 2


if __name__ == "__main__":
    sys.exit(main())
