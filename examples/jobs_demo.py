"""Jobs demo: design-space exploration as an async job, end to end.

The script trains a small PowerGear, serves it through the gateway HTTP
server with the jobs tier mounted, and then drives the versioned jobs API
with the typed :class:`~repro.client.PowerClient`:

1. ``POST /v1/jobs/explore`` — submit an exploration (``202`` + job id);
2. ``GET /v1/jobs/{id}/updates`` — follow the per-iteration updates live
   (frontier growth, sampling progress) while the job runs;
3. ``GET /v1/jobs/{id}`` — the final snapshot with the Pareto frontier;
4. the deprecated blocking ``POST /v1/explore`` — same answer, plus the
   ``Deprecation`` header pointing at the successor route;
5. a second job, cancelled mid-flight;
6. quota backpressure — submissions past the per-client limit fail with the
   retryable ``429 job_quota`` envelope.

Run with:  python examples/jobs_demo.py
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import DatasetConfig, DatasetGenerator, PowerGear, PowerGearConfig
from repro.client import PowerAPIError, PowerClient
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.jobs import JobManager
from repro.runtime.config import RuntimeConfig
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import GatewayHTTPServer, request_raw
from repro.serve.service import PowerEstimationService

DATASET = DatasetConfig(kernel_size=6, designs_per_kernel=10)


def train() -> PowerGear:
    dataset = DatasetGenerator(DATASET).generate(["atax"])
    config = PowerGearConfig(
        target="dynamic",
        gnn=GNNConfig(hidden_dim=12, num_layers=2),
        training=TrainingConfig(epochs=6, batch_size=16),
        ensemble=None,
    )
    return PowerGear(config).fit(dataset.samples)


async def main() -> None:
    model = train()
    with tempfile.TemporaryDirectory() as tmp:
        service = PowerEstimationService(
            model,
            generator=DatasetGenerator(DATASET),
            runtime=RuntimeConfig(
                jobs_dir=Path(tmp) / "jobs",
                max_jobs_per_client=2,
                # Slow the explorer slightly so the demo can watch a job
                # mid-flight (and cancel one) deterministically.
                job_step_delay_s=0.2,
            ),
        )
        manager = JobManager(service, store=Path(tmp) / "jobs")
        gateway = AsyncPowerGateway(service, jobs=manager)
        server = GatewayHTTPServer(gateway)
        host, port = await server.start()
        print(f"serving on {host}:{port}\n")

        async with PowerClient(host, port, client_id="demo") as client:
            print("routes (from GET /v1/routes):")
            for route in await client.routes():
                flag = "  [deprecated]" if route.get("deprecated") else ""
                print(f"  {route['method']:<5} {route['path']}{flag}")

            print("\nsubmitting an exploration job for atax ...")
            job = await client.submit_explore("atax", budget=0.4)
            print(f"  job {job['job_id']} state={job['state']}")

            async for update in client.iter_updates(job["job_id"]):
                if update["event"] == "iteration":
                    print(
                        f"  iter {update['iteration']}: "
                        f"sampled={update['sampled']} "
                        f"frontier={update['frontier_size']}"
                    )
                else:
                    print(f"  done: state={update['state']}")

            final = await client.job(job["job_id"])
            frontier = final["result"]["frontier"]
            print(
                f"  finished: adrs={final['result']['adrs']:.4f}, "
                f"{len(frontier)} frontier designs"
            )

            print("\nblocking POST /v1/explore (deprecated wrapper):")
            status, headers, _ = await request_raw(
                host, port, "POST", "/v1/explore", {"kernel": "atax", "budget": 0.4}
            )
            print(
                f"  status={status} Deprecation={headers.get('deprecation')} "
                f"Link={headers.get('link')}"
            )

            print("\ncancelling a job mid-flight:")
            victim = await client.submit_explore("atax", budget=0.9)
            await asyncio.sleep(0.3)  # let it start iterating
            cancelled = await client.cancel(victim["job_id"])
            final = await client.wait(victim["job_id"])
            print(
                f"  job {victim['job_id']}: {cancelled['state']} -> "
                f"{final['state']} after seq {final['seq']}"
            )

            print("\nquota backpressure (max_jobs_per_client=2):")
            held = [
                await client.submit_explore("atax", budget=0.4) for _ in range(2)
            ]
            try:
                await client.submit_explore("atax", budget=0.4)
            except PowerAPIError as error:
                print(
                    f"  rejected: {error.status} {error.error_type} "
                    f"(retryable={error.retryable})"
                )
            for snapshot in held:
                await client.cancel(snapshot["job_id"])
                await client.wait(snapshot["job_id"])

        await server.aclose(close_gateway=True)
        print("\ndone.")


if __name__ == "__main__":
    asyncio.run(main())
