"""Walkthrough of the graph construction flow (Section III-A) for one design.

This example dissects what PowerGear actually feeds its GNN: it runs HLS for a
single `gemm` design point (with unrolling, pipelining and array partitioning),
traces switching activity, and then shows the effect of each construction pass
— buffer insertion, datapath merging, graph trimming and feature annotation —
on the resulting heterogeneous graph, ending with the power measurement the
sample would be labelled with.

Run with:  python examples/graph_construction_walkthrough.py
"""

from __future__ import annotations


from repro.activity.simulator import simulate_activity
from repro.graph.construction import GraphConstructionConfig, GraphConstructor
from repro.graph.hetero_graph import RELATION_TYPES
from repro.hls.dfg import extract_dfg
from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.hls.report import run_hls
from repro.kernels.polybench import polybench_kernel
from repro.power.ground_truth import GroundTruthPowerModel
from repro.power.vivado import VivadoPowerEstimator


def main() -> None:
    kernel = polybench_kernel("gemm", 8)
    directives = DesignDirectives.from_dicts(
        {"k0": LoopPragmas(unroll_factor=4, pipeline=True)},
        {"A": ArrayPartition(4), "B": ArrayPartition(4)},
    )
    print(f"Kernel: {kernel.name}  directives: {directives.describe()}")

    # ------------------------------------------------------------------- HLS
    result = run_hls(kernel, directives)
    report = result.report
    print("\nHLS report:")
    print(f"  latency        : {report.latency_cycles} cycles")
    print(f"  achieved clock : {report.achieved_clock_ns:.2f} ns "
          f"(target {report.target_clock_ns:.1f} ns)")
    print(f"  resources      : {report.resources.as_dict()}")
    print(f"  FSM states     : {report.fsm_states}")

    # -------------------------------------------------------------- activity
    profile = simulate_activity(result.design, seed=7)
    print("\nActivity simulation:")
    print(f"  dynamic IR instructions executed : {profile.dynamic_instructions}")
    print("  average toggle rate              : "
          f"{profile.average_toggle_rate(report.latency_cycles):.3f} bits/cycle/stream")

    # ------------------------------------------------- construction, pass by pass
    raw_dfg = extract_dfg(result.design)
    print("\nGraph construction flow:")
    print(f"  raw DFG                          : {raw_dfg.num_nodes} nodes, "
          f"{raw_dfg.num_edges} edges")

    stages = [
        ("buffer insertion only", GraphConstructionConfig(datapath_merging=False, trimming=False)),
        ("+ datapath merging", GraphConstructionConfig(trimming=False)),
        ("+ graph trimming (full flow)", GraphConstructionConfig()),
    ]
    for label, config in stages:
        power_graph = GraphConstructor(config).build_power_graph(result, profile)
        buffers = sum(1 for node in power_graph.nodes.values() if node.kind == "buffer")
        print(f"  {label:<33}: {power_graph.num_nodes} nodes "
              f"({buffers} buffers), {power_graph.num_edges} edges")

    graph = GraphConstructor().build(result, profile)
    print("\nEncoded heterogeneous graph:")
    print(f"  node features : {graph.node_features.shape}")
    print(f"  edge features : {graph.edge_features.shape} "
          "(SA_src, SA_snk, AR_src, AR_snk)")
    print(f"  metadata      : {graph.metadata.shape}")
    counts = {RELATION_TYPES[r]: int((graph.edge_types == r).sum()) for r in range(4)}
    print(f"  edge relations: {counts}")
    print(f"  mean edge switching activity: {graph.edge_features[:, 0].mean():.3f} bits/cycle")

    # ----------------------------------------------------------------- power
    measurement = GroundTruthPowerModel(seed=0).measure(result, profile)
    vivado = VivadoPowerEstimator().estimate(result, profile)
    print("\nPower labels for this design point:")
    print(f"  measured ('on board')  : total {measurement.total:.3f} W, "
          f"dynamic {measurement.dynamic:.3f} W, static {measurement.static:.3f} W")
    print(f"  Vivado-style estimate  : total {vivado.total:.3f} W "
          "(uncalibrated, no power gating)")
    print("\nThis (graph, metadata) -> measurement pair is exactly one training "
          "sample of the PowerGear dataset.")


if __name__ == "__main__":
    main()
