"""Case study: PowerGear-guided design-space exploration (Section IV-C).

The workload the paper's introduction motivates: a designer wants the
latency / dynamic-power Pareto frontier of a kernel's pragma design space but
cannot afford to implement and measure every design point.  PowerGear provides
fast power predictions after HLS only, and an iterative Pareto-guided sampler
decides which design points are worth evaluating.

The example trains PowerGear on other kernels, explores the design space of
`mvt` at several sampling budgets, and reports the ADRS of the approximate
frontier (Table III / Fig. 4 of the paper), comparing against the calibrated
Vivado-style estimator used as the alternative predictor.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import DatasetConfig, DatasetGenerator
from repro.dse.explorer import DesignCandidate, DSEConfig, ParetoExplorer
from repro.flow.evaluation import EvaluationConfig, MODEL_BUILDERS
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.utils.metrics import relative_gain

TARGET_KERNEL = "mvt"
BUDGETS = (0.2, 0.3, 0.4)


def main() -> None:
    print("Generating design spaces...")
    dataset = DatasetGenerator(
        DatasetConfig(kernel_size=8, designs_per_kernel=30)
    ).generate(["atax", "bicg", "gemm", TARGET_KERNEL])
    train, _ = dataset.leave_one_out(TARGET_KERNEL)
    explored = dataset.by_kernel(TARGET_KERNEL)

    candidates = [
        DesignCandidate(
            index=i,
            latency=float(s.latency_cycles),
            true_power=s.dynamic_power,
            config_vector=np.array(s.extras["config_vector"], dtype=float),
            payload=s,
        )
        for i, s in enumerate(explored.samples)
    ]

    config = EvaluationConfig(
        target="dynamic",
        gnn=GNNConfig(hidden_dim=32, num_layers=3),
        training=TrainingConfig(epochs=100, batch_size=32, learning_rate=2e-3, target="dynamic"),
        ensemble=None,
    )

    print(f"Training predictors on {sorted(train.kernels())}...")
    estimators = {}
    for name in ("vivado", "powergear"):
        estimator = MODEL_BUILDERS[name](config)
        estimator.fit(train.samples)
        estimators[name] = estimator

    print(f"\nExploring the {TARGET_KERNEL} design space "
          f"({len(candidates)} design points):")
    print(f"{'Budget':>8} {'Vivado ADRS':>12} {'PowerGear ADRS':>15} {'gain':>8}")
    for budget in BUDGETS:
        adrs_values = {}
        for name, estimator in estimators.items():
            def predictor(batch, estimator=estimator):
                return estimator.predict([c.payload for c in batch])

            result = ParetoExplorer(
                DSEConfig(initial_budget=0.02, total_budget=budget, seed=0)
            ).explore(candidates, predictor)
            adrs_values[name] = result.adrs
        gain = relative_gain(adrs_values["vivado"], adrs_values["powergear"])
        print(
            f"{int(budget * 100):>7}% {adrs_values['vivado']:>12.4f} "
            f"{adrs_values['powergear']:>15.4f} {gain:>7.1f}%"
        )

    # Show the frontier the designer would get at the largest budget.
    estimator = estimators["powergear"]

    def predictor(batch):
        return estimator.predict([c.payload for c in batch])

    result = ParetoExplorer(DSEConfig(total_budget=BUDGETS[-1], seed=0)).explore(
        candidates, predictor
    )
    print(f"\nApproximate Pareto-optimal designs of {TARGET_KERNEL} "
          f"(budget {int(BUDGETS[-1] * 100)}%):")
    for index in result.approximate_pareto_indices:
        sample = candidates[index].payload
        print(
            f"  {sample.directives:<40} latency {sample.latency_cycles:>7} cycles, "
            f"dynamic power {sample.dynamic_power:.3f} W"
        )


if __name__ == "__main__":
    main()
