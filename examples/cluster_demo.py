"""Cluster demo: multi-replica serving behind the kernel-affinity router.

The script trains a small PowerGear on two PolyBench kernels, saves it
through the model registry, then stands the cluster tier up in one process:
a :class:`~repro.cluster.ReplicaManager` spawns two replica processes (each a
full service + gateway + HTTP server on its own port) and a
:class:`~repro.cluster.ClusterRouter` fronts them with the same ``/v1/*``
API, routing each kernel to its consistent-hash owner.  The walkthrough:

1. ``GET /v1/cluster`` — replica states, the hash ring, per-replica counters;
2. ``POST /v1/estimate`` for both kernels — affinity sends each kernel to a
   different replica (visible in the per-replica design counters);
3. ``POST /v1/estimate_many`` — a mixed-kernel batch, split by owner and
   merged back in request order;
4. ``kill -9`` on one replica mid-workload — the next request fails over to
   the surviving replica while the router ejects the corpse, respawns a
   fresh process, and re-admits it (watch ``/v1/events``);
5. ``GET /healthz`` — degraded-not-dead while a replica is down.

Run with:           python examples/cluster_demo.py
Keep serving with:  python examples/cluster_demo.py --serve
                    (then e.g.  curl -s localhost:8322/v1/cluster
                     or         curl -s -X POST localhost:8322/v1/estimate \\
                                  -d '{"kernel": "atax", "directives": \\
                                       {"loops": {"i0": {"unroll": 2}}}}')
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import tempfile
from pathlib import Path

from repro import DatasetConfig, DatasetGenerator, PowerGear, PowerGearConfig
from repro.cluster import ClusterConfig, ClusterRouter, ReplicaManager, ReplicaSpec
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.runtime.http import HTTPConnectionPool, directives_to_json
from repro.serve import ModelRegistry

MODEL_NAME = "powergear-dynamic"


def train_and_save(config: DatasetConfig, registry_dir: Path) -> None:
    print("Training a small PowerGear (atax + mvt, dynamic power)...")
    dataset = DatasetGenerator(config).generate(["atax", "mvt"])
    model = PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=16, num_layers=2),
            training=TrainingConfig(epochs=30, batch_size=16),
            ensemble=None,
        )
    ).fit(dataset.samples)
    ModelRegistry(registry_dir).save(model, MODEL_NAME)


async def demo(router: ClusterRouter, config: DatasetConfig) -> None:
    pool = HTTPConnectionPool(router.host, router.port)

    async def show(title: str, method: str, path: str, body=None):
        status, payload = await pool.request_json(method, path, body)
        print(f"\n{method} {path}  ->  {status}")
        print(f"  {json.dumps(payload)[:220]}")
        return payload

    try:
        cluster = await show("cluster", "GET", "/v1/cluster")
        print(f"  ring owners: {cluster['ring']['ownership']}")

        generator = DatasetGenerator(config)
        spaces = {
            name: list(
                generator.design_space_for(polybench_kernel(name, config.kernel_size))
            )
            for name in ("atax", "mvt")
        }
        for name, space in spaces.items():
            await show(
                f"estimate {name}",
                "POST",
                "/v1/estimate",
                {"kernel": name, "directives": directives_to_json(space[1])},
            )

        batch = {
            "requests": [
                {"kernel": name, "directives": directives_to_json(d)}
                for name, space in spaces.items()
                for d in space[:4]
            ]
        }
        payload = await show("estimate_many (mixed kernels)", "POST", "/v1/estimate_many", batch)
        print(f"  ({len(payload['responses'])} designs, split by kernel owner)")

        cluster = await show("cluster", "GET", "/v1/cluster")
        designs = {rid: r["designs"] for rid, r in cluster["replicas"].items()}
        print(f"  per-replica designs served: {designs}")

        # ---------------------------------------------------------- failover
        owner = router.ring.lookup("atax")
        victim = router.manager.handle(owner)
        print(f"\nkill -9 replica {owner} (pid {victim.pid}, owner of 'atax')...")
        os.kill(victim.pid, signal.SIGKILL)

        status, payload = await pool.request_json(
            "POST",
            "/v1/estimate",
            {"kernel": "atax", "directives": directives_to_json(spaces["atax"][1])},
        )
        print(f"  next estimate -> {status} (failed over to the backup replica)")

        health = await show("health during the outage", "GET", "/healthz")
        print(f"  status: {health['status']} (degraded, not dead)")

        print("\nWaiting for eject + respawn...")
        for _ in range(200):
            status, events = await pool.request_json("GET", "/v1/events")
            kinds = [e["kind"] for e in events["events"]]
            if "replica_respawn" in kinds:
                break
            await asyncio.sleep(0.25)
        lifecycle = [
            f"{e['kind']}({e.get('replica', '?')})"
            for e in events["events"]
            if e["kind"].startswith("replica_")
        ]
        print(f"  lifecycle events: {lifecycle}")

        respawned = router.manager.handle(owner)
        print(
            f"  replica {owner} is back: pid {respawned.pid}, "
            f"generation {respawned.generation}"
        )
        await show("estimate on the respawned owner", "POST", "/v1/estimate", {
            "kernel": "atax", "directives": directives_to_json(spaces["atax"][1])
        })
        stats = (await pool.request_json("GET", "/v1/cluster"))[1]["stats"]
        print(f"  router stats: {stats}")
    finally:
        await pool.aclose()


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--serve", action="store_true", help="keep serving for curl")
    parser.add_argument("--port", type=int, default=8322)
    parser.add_argument("--replicas", type=int, default=2)
    args = parser.parse_args()

    config = DatasetConfig(kernel_size=6, designs_per_kernel=10)
    with tempfile.TemporaryDirectory() as tmp:
        registry_dir = Path(tmp) / "registry"
        train_and_save(config, registry_dir)

        spec = ReplicaSpec(
            registry_dir=registry_dir, model_name=MODEL_NAME, dataset_config=config
        )
        manager = ReplicaManager(spec, num_replicas=args.replicas)
        router = ClusterRouter(
            manager,
            config=ClusterConfig(health_interval_s=0.25, fail_threshold=2),
            port=args.port if args.serve else 0,
        )
        host, port = await router.start()
        ports = [h.port for h in manager.handles()]
        print(f"\n{args.replicas} replicas up on ports {ports}")
        print(f"Router serving http://{host}:{port} (same /v1/* API + /v1/cluster)")

        try:
            if args.serve:
                print("Press Ctrl-C to stop.")
                try:
                    await router.serve_forever()
                except (KeyboardInterrupt, asyncio.CancelledError):
                    pass
            else:
                await demo(router, config)
        finally:
            await router.aclose(close_manager=True)
        print("\nRouter and replicas drained and closed.")


if __name__ == "__main__":
    asyncio.run(main())
