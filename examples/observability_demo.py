"""Observability demo: tracing, metrics, logs and events through the wire.

The script trains a small PowerGear, stands the full serving stack up in one
process — service → async gateway → stdlib HTTP server, with a two-worker
featurisation pool and request coalescing on — configures structured JSON
logging to stderr, then drives mixed load and shows every observability
surface the runtime grows:

1. a tagged single estimate (``X-Request-ID`` honoured and echoed) and a
   design-space batch, plus a burst of concurrent singles for the coalescer;
2. ``GET /v1/traces`` — the request's span tree, printed as an indented
   waterfall (gateway admission → coalesce → batch flush → featurisation
   with worker pids → cache lookups → forward);
3. ``GET /metrics`` twice — the JSON snapshot's real p50/p95/p99 latency
   quantiles, then the Prometheus text exposition a scraper would ingest
   (``Accept: text/plain``);
4. ``GET /v1/events`` + ``/healthz`` — the supervisor event timeline and
   per-worker heartbeat ages.

Run with:  python examples/observability_demo.py
"""

from __future__ import annotations

import asyncio
import sys

from repro import DatasetConfig, DatasetGenerator, PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.obs import configure_json_logging
from repro.runtime import RuntimeConfig
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import (
    GatewayHTTPServer,
    directives_to_json,
    request_json,
    request_raw,
)
from repro.serve import PowerEstimationService

DATASET = DatasetConfig(kernel_size=6, designs_per_kernel=10)


def train() -> PowerGear:
    print("Training a small PowerGear (atax, dynamic power)...")
    dataset = DatasetGenerator(DATASET).generate(["atax"])
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=16, num_layers=2),
            training=TrainingConfig(epochs=30, batch_size=16),
            ensemble=None,
        )
    ).fit(dataset.samples)


def print_span(span: dict, depth: int = 0) -> None:
    pad = "  " * depth
    attrs = ", ".join(f"{k}={v}" for k, v in span["attributes"].items())
    print(
        f"    {pad}{span['name']:<{24 - 2 * min(depth, 8)}s}"
        f" {span['duration_ms']:8.2f} ms  pid={span['pid']}"
        + (f"  [{attrs}]" if attrs else "")
    )
    for child in span["children"]:
        print_span(child, depth + 1)


async def demo(host: str, port: int) -> None:
    generator = DatasetGenerator(DATASET)
    space = list(
        generator.design_space_for(polybench_kernel("atax", DATASET.kernel_size))
    )

    # -- 1. mixed load ------------------------------------------------------
    print("\n[1] Driving mixed load...")
    status, headers, _ = await request_raw(
        host, port, "POST", "/v1/estimate",
        {"kernel": "atax", "directives": directives_to_json(space[1])},
        headers={"X-Request-ID": "demo-tagged-request"},
    )
    print(f"    estimate -> {status}, X-Request-ID echoed: {headers['x-request-id']}")

    batch = {
        "requests": [
            {"kernel": "atax", "directives": directives_to_json(d)} for d in space
        ]
    }
    status, payload = await request_json(host, port, "POST", "/v1/estimate_many", batch)
    print(f"    estimate_many -> {status} ({len(payload['responses'])} designs)")

    singles = [
        request_json(
            host, port, "POST", "/v1/estimate",
            {"kernel": "atax", "directives": directives_to_json(d)},
        )
        for d in space[:16]
    ]
    results = await asyncio.gather(*singles)
    print(f"    burst of {len(results)} concurrent singles (coalesced) done")

    # -- 2. the trace tree --------------------------------------------------
    print("\n[2] GET /v1/traces — the tagged request's span waterfall:")
    _, traces = await request_json(host, port, "GET", "/v1/traces?limit=50")
    tagged = next(
        t for t in traces["traces"] if t["request_id"] == "demo-tagged-request"
    )
    print(f"    trace {tagged['trace_id']} ({tagged['num_spans']} spans)")
    print_span(tagged["root"])

    # -- 3. metrics: JSON quantiles, then the Prometheus scrape -------------
    print("\n[3] GET /metrics — real latency quantiles from the histograms:")
    _, metrics = await request_json(host, port, "GET", "/metrics")
    for endpoint, snap in metrics["latency"]["request"].items():
        print(
            f"    {endpoint:<16s} count={snap['count']:<4d} "
            f"p50={snap['p50'] * 1e3:7.2f} ms  p95={snap['p95'] * 1e3:7.2f} ms  "
            f"p99={snap['p99'] * 1e3:7.2f} ms"
        )
    hits = metrics["runtime"]["cache"]["predictions"]
    print(f"    prediction cache: {hits['hits']} hits / {hits['misses']} misses")

    print("\n    Prometheus exposition (Accept: text/plain), first lines:")
    _, _, prom = await request_raw(
        host, port, "GET", "/metrics", headers={"Accept": "text/plain"}
    )
    interesting = [
        line
        for line in prom.decode().splitlines()
        if line.startswith(("repro_request_seconds_count", "repro_cache_requests",
                            "repro_coalesced", "repro_http_requests_total"))
    ]
    for line in interesting[:12]:
        print(f"      {line}")

    # -- 4. events + heartbeats --------------------------------------------
    print("\n[4] GET /v1/events + /healthz — timeline and worker heartbeats:")
    _, events = await request_json(host, port, "GET", "/v1/events")
    if events["events"]:
        for event in events["events"][-5:]:
            print(f"    event: {event}")
    else:
        print("    (no pool lifecycle events — an untroubled run)")
    _, health = await request_json(host, port, "GET", "/healthz")
    beats = health["pools"].get("featurisation", {}).get("heartbeats", {})
    for pid, entry in beats.items():
        print(f"    worker {pid}: last heartbeat {entry['age_s'] * 1e3:.0f} ms ago")


def main() -> None:
    print("Structured JSON logs go to stderr (one line per request):")
    configure_json_logging(stream=sys.stderr)

    model = train()
    service = PowerEstimationService(
        model,
        generator=DatasetGenerator(DATASET),
        runtime=RuntimeConfig(
            num_workers=2,
            min_designs_per_worker=1,
            coalesce_window_ms=5.0,
        ),
    )

    async def run() -> None:
        gateway = AsyncPowerGateway(service)
        server = GatewayHTTPServer(gateway)
        host, port = await server.start()
        print(f"Serving on http://{host}:{port}")
        try:
            await demo(host, port)
        finally:
            await server.aclose()
            await gateway.aclose()

    try:
        asyncio.run(run())
    finally:
        service.close()
    print("\nDone.")


if __name__ == "__main__":
    main()
