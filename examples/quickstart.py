"""Quickstart: estimate FPGA power for an unseen HLS design with PowerGear.

The example walks through the whole flow of Fig. 1 at a small scale:

1. generate design spaces for a few PolyBench kernels and run the HLS
   substrate, activity tracing, graph construction and "on-board" measurement
   to build a training set;
2. train PowerGear (the HEC-GNN estimator) on all kernels except one;
3. predict total and dynamic power for the held-out kernel's design points and
   compare against the measured labels — no RTL implementation or measurement
   is needed for the new designs, which is the point of the paper;
4. save the fitted estimator as a versioned registry artifact, reload it from
   disk and verify the reloaded model reproduces the predictions exactly —
   the durable-artifact flow the serving layer (``repro.serve``) builds on.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import DatasetConfig, DatasetGenerator, PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.serve import ModelRegistry
from repro.utils.metrics import mape


def main() -> None:
    # ------------------------------------------------------------------ data
    print("Generating HLS design spaces and measuring ground-truth power...")
    config = DatasetConfig(kernel_size=8, designs_per_kernel=25)
    generator = DatasetGenerator(config)
    dataset = generator.generate(["atax", "mvt", "bicg", "gemm"])
    print(f"  {len(dataset)} design points, average graph size "
          f"{dataset.average_num_nodes():.0f} nodes")

    # Hold one application out entirely (the paper's transferability protocol).
    train, test = dataset.leave_one_out("gemm")
    print(f"  training on {sorted(train.kernels())}, testing on ['gemm']")

    # ----------------------------------------------------------------- train
    models: dict[str, PowerGear] = {}
    for target in ("dynamic", "total"):
        model = PowerGear(
            PowerGearConfig(
                target=target,
                gnn=GNNConfig(hidden_dim=32, num_layers=3),
                training=TrainingConfig(
                    epochs=120, batch_size=32, learning_rate=2e-3, target=target
                ),
                ensemble=None,  # set EnsembleConfig() for the paper's full ensemble
            )
        )
        print(f"\nTraining PowerGear for {target} power "
              f"({model.config.training.epochs} epochs)...")
        model.fit(train.samples)
        models[target] = model

        # ------------------------------------------------------------- infer
        predictions = model.predict(test.samples)
        targets = test.targets(target)
        error = mape(targets, predictions)
        print(f"  {target} power MAPE on the unseen kernel: {error:.2f}%")
        worst = int(np.argmax(np.abs(predictions - targets) / targets))
        print(f"  example: design '{test[worst].directives}' measured "
              f"{targets[worst]:.3f} W, predicted {predictions[worst]:.3f} W")

    # ------------------------------------------------------- durable artifact
    # Serving deployments never keep models in process memory only: the model
    # registry turns a fitted estimator into a versioned on-disk artifact that
    # loads back bit-exactly (see repro.serve for the full serving stack).
    with tempfile.TemporaryDirectory(prefix="powergear-registry-") as root:
        registry = ModelRegistry(root)
        artifact = registry.save(
            models["dynamic"], "quickstart-dynamic", metadata={"held_out": "gemm"}
        )
        print(f"\nSaved the dynamic-power model to {artifact.path}")
        print(f"  fingerprint {artifact.fingerprint[:16]}…")

        reloaded = registry.load("quickstart-dynamic")
        in_memory = models["dynamic"].predict(test.samples)
        from_disk = reloaded.predict(test.samples)
        assert np.array_equal(in_memory, from_disk)
        print("  reloaded from disk: predictions identical to the in-memory model")


if __name__ == "__main__":
    main()
