"""Quickstart: estimate FPGA power for an unseen HLS design with PowerGear.

The example walks through the whole flow of Fig. 1 at a small scale:

1. generate design spaces for a few PolyBench kernels and run the HLS
   substrate, activity tracing, graph construction and "on-board" measurement
   to build a training set;
2. train PowerGear (the HEC-GNN estimator) on all kernels except one;
3. predict total and dynamic power for the held-out kernel's design points and
   compare against the measured labels — no RTL implementation or measurement
   is needed for the new designs, which is the point of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DatasetConfig, DatasetGenerator, PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.utils.metrics import mape


def main() -> None:
    # ------------------------------------------------------------------ data
    print("Generating HLS design spaces and measuring ground-truth power...")
    config = DatasetConfig(kernel_size=8, designs_per_kernel=25)
    generator = DatasetGenerator(config)
    dataset = generator.generate(["atax", "mvt", "bicg", "gemm"])
    print(f"  {len(dataset)} design points, average graph size "
          f"{dataset.average_num_nodes():.0f} nodes")

    # Hold one application out entirely (the paper's transferability protocol).
    train, test = dataset.leave_one_out("gemm")
    print(f"  training on {sorted(train.kernels())}, testing on ['gemm']")

    # ----------------------------------------------------------------- train
    for target in ("dynamic", "total"):
        model = PowerGear(
            PowerGearConfig(
                target=target,
                gnn=GNNConfig(hidden_dim=32, num_layers=3),
                training=TrainingConfig(
                    epochs=120, batch_size=32, learning_rate=2e-3, target=target
                ),
                ensemble=None,  # set EnsembleConfig() for the paper's full ensemble
            )
        )
        print(f"\nTraining PowerGear for {target} power "
              f"({model.config.training.epochs} epochs)...")
        model.fit(train.samples)

        # ------------------------------------------------------------- infer
        predictions = model.predict(test.samples)
        targets = test.targets(target)
        error = mape(targets, predictions)
        print(f"  {target} power MAPE on the unseen kernel: {error:.2f}%")
        worst = int(np.argmax(np.abs(predictions - targets) / targets))
        print(f"  example: design '{test[worst].directives}' measured "
              f"{targets[worst]:.3f} W, predicted {predictions[worst]:.3f} W")


if __name__ == "__main__":
    main()
