"""Gateway demo: the estimation service as an async HTTP micro-service.

The script trains a small PowerGear on two PolyBench kernels, saves it
through the model registry, then stands the whole serving stack up in one
process — service → async gateway → stdlib HTTP server — and exercises every
endpoint through the wire:

1. ``GET /v1/models`` — the registry's manifest index;
2. ``POST /v1/estimate`` — one design point, sent as JSON directives;
3. ``POST /v1/estimate_many`` — a design-space sweep in one batch request;
4. 64 concurrent single-design requests — the asyncio client floods the
   gateway and the micro-batcher coalesces them into packed forward passes
   (visible in the printed ``GET /metrics`` snapshot);
5. a malformed design point — the structured ``400`` error body.

Run with:           python examples/gateway_server.py
Keep serving with:  python examples/gateway_server.py --serve
                    (then e.g.  curl -s localhost:8321/healthz
                     or         curl -s -X POST localhost:8321/v1/estimate \\
                                  -d '{"kernel": "atax", "directives": \\
                                       {"loops": {"i0": {"unroll": 2}}}}')
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile

from repro import DatasetConfig, DatasetGenerator, PowerGear, PowerGearConfig
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import TrainingConfig
from repro.kernels.polybench import polybench_kernel
from repro.runtime import RuntimeConfig
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import GatewayHTTPServer, directives_to_json, request_json
from repro.serve import ModelRegistry, PowerEstimationService


def train(config: DatasetConfig) -> PowerGear:
    print("Training a small PowerGear (atax + mvt, dynamic power)...")
    dataset = DatasetGenerator(config).generate(["atax", "mvt"])
    return PowerGear(
        PowerGearConfig(
            target="dynamic",
            gnn=GNNConfig(hidden_dim=16, num_layers=2),
            training=TrainingConfig(epochs=30, batch_size=16),
            ensemble=None,
        )
    ).fit(dataset.samples)


async def demo(server: GatewayHTTPServer, config: DatasetConfig) -> None:
    host, port = server.host, server.port

    async def show(title: str, method: str, path: str, body=None):
        status, payload = await request_json(host, port, method, path, body)
        print(f"\n{method} {path}  ->  {status}")
        print(f"  {json.dumps(payload)[:200]}")
        return payload

    await show("health", "GET", "/healthz")
    await show("models", "GET", "/v1/models")

    generator = DatasetGenerator(config)
    space = list(generator.design_space_for(polybench_kernel("atax", config.kernel_size)))
    point = {"kernel": "atax", "directives": directives_to_json(space[1])}
    await show("estimate", "POST", "/v1/estimate", point)

    batch = {
        "requests": [
            {"kernel": "atax", "directives": directives_to_json(d)} for d in space
        ]
    }
    payload = await show("estimate_many", "POST", "/v1/estimate_many", batch)
    print(f"  ({len(payload['responses'])} designs estimated in one batch)")

    print("\nFlooding the gateway with 64 concurrent single-design requests...")
    requests = [
        {"kernel": "atax", "directives": directives_to_json(space[i % len(space)])}
        for i in range(64)
    ]
    responses = await asyncio.gather(
        *(request_json(host, port, "POST", "/v1/estimate", r) for r in requests)
    )
    assert all(status == 200 for status, _ in responses)
    metrics = await show("metrics", "GET", "/metrics")
    coalescer = metrics["runtime"]["coalescer"]
    print(
        f"  coalescer: {coalescer['items']} singles packed into "
        f"{coalescer['batches']} flushes (largest {coalescer['largest_batch']})"
    )

    await show("malformed", "POST", "/v1/estimate", {"kernel": "atax", "directives": {"loops": {"i0": {"unroll": -1}}}})


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--serve", action="store_true", help="keep serving for curl")
    parser.add_argument("--port", type=int, default=8321)
    args = parser.parse_args()

    config = DatasetConfig(kernel_size=6, designs_per_kernel=10)
    model = train(config)
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.save(model, "powergear-dynamic")
        service = PowerEstimationService(
            model,
            generator=DatasetGenerator(config),
            runtime=RuntimeConfig(coalesce_window_ms=5.0, coalesce_max_batch=16),
        )
        gateway = AsyncPowerGateway(service)
        server = GatewayHTTPServer(
            gateway, port=args.port if args.serve else 0, registry=registry
        )
        host, port = await server.start()
        print(f"\nServing http://{host}:{port} (estimate / estimate_many / explore / models)")

        if args.serve:
            print("Press Ctrl-C to stop.")
            try:
                await server.serve_forever()
            except (KeyboardInterrupt, asyncio.CancelledError):
                pass
        else:
            await demo(server, config)
        await server.aclose(close_gateway=True)
        print("\nServer drained and closed.")


if __name__ == "__main__":
    asyncio.run(main())
