"""Kernel specification language.

The paper compiles PolyBench C kernels with Vivado HLS.  We express the same
kernels as small loop-nest specifications — arrays, perfectly or imperfectly
nested counted loops, and assignment statements over affine array references —
which the HLS front end (:mod:`repro.hls.frontend`) lowers into IR while
applying the design directives.

The expression language is intentionally tiny: array references indexed by
loop variables or constants, floating point constants, and binary arithmetic.
That is sufficient for every PolyBench kernel used in the paper (atax, bicg,
gemm, gesummv, 2mm, 3mm, mvt, syrk, syr2k) and for the synthetic loop-pattern
kernels used to diversify training data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


# --------------------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Ref:
    """Reference to ``array[index...]`` where each index is a loop variable name
    or an integer constant."""

    array: str
    index: tuple[Union[str, int], ...]

    def __post_init__(self) -> None:
        if not self.array:
            raise ValueError("array name must be non-empty")

    @property
    def rank(self) -> int:
        return len(self.index)


@dataclass(frozen=True)
class Const:
    """Floating-point literal (e.g. the ``alpha`` / ``beta`` scaling factors)."""

    value: float


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic over expressions; ``op`` is one of ``+ - * /``."""

    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unsupported operator {self.op!r}")


Expr = Union[Ref, Const, BinOp]


def add(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("+", lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("-", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("*", lhs, rhs)


def div(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("/", lhs, rhs)


# --------------------------------------------------------------------------- statements


@dataclass(frozen=True)
class Assign:
    """``target = expr``; accumulation is expressed by referencing the target in
    ``expr`` (e.g. ``C[i,j] = C[i,j] + alpha * A[i,k] * B[k,j]``)."""

    target: Ref
    expr: Expr


@dataclass
class Loop:
    """A counted loop ``for var in range(trip)`` containing statements and/or
    nested loops.  ``name`` doubles as the key design directives refer to."""

    var: str
    trip: int
    body: list[Union["Loop", Assign]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.trip <= 0:
            raise ValueError(f"loop trip count must be positive, got {self.trip}")
        if not self.var:
            raise ValueError("loop variable name must be non-empty")

    @property
    def innermost(self) -> bool:
        return not any(isinstance(item, Loop) for item in self.body)

    def nested_loops(self) -> list["Loop"]:
        """All loops in this subtree, including self, in nesting order."""
        loops = [self]
        for item in self.body:
            if isinstance(item, Loop):
                loops.extend(item.nested_loops())
        return loops


# --------------------------------------------------------------------------- arrays / kernels


@dataclass(frozen=True)
class ArraySpec:
    """Declaration of a kernel array: name, static shape and dataflow direction."""

    name: str
    shape: tuple[int, ...]
    direction: str = "in"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out", "inout"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if not self.shape or any(d <= 0 for d in self.shape):
            raise ValueError(f"array shape must be positive, got {self.shape}")

    @property
    def num_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count


@dataclass
class KernelSpec:
    """A complete kernel: arrays plus a list of top-level loops."""

    name: str
    arrays: list[ArraySpec]
    body: list[Loop]
    description: str = ""

    def array(self, name: str) -> ArraySpec:
        for spec in self.arrays:
            if spec.name == name:
                return spec
        raise KeyError(f"kernel {self.name!r} has no array {name!r}")

    def all_loops(self) -> list[Loop]:
        loops: list[Loop] = []
        for loop in self.body:
            loops.extend(loop.nested_loops())
        return loops

    def innermost_loops(self) -> list[Loop]:
        return [loop for loop in self.all_loops() if loop.innermost]

    def loop_names(self) -> list[str]:
        return [loop.var for loop in self.all_loops()]

    def validate(self) -> None:
        """Check that all referenced arrays exist and indices use in-scope loop vars."""
        array_names = {spec.name for spec in self.arrays}

        def check_expr(expr: Expr, in_scope: set[str]) -> None:
            if isinstance(expr, Ref):
                if expr.array not in array_names:
                    raise ValueError(
                        f"kernel {self.name!r}: unknown array {expr.array!r}"
                    )
                expected_rank = len(self.array(expr.array).shape)
                if expr.rank != expected_rank:
                    raise ValueError(
                        f"kernel {self.name!r}: array {expr.array!r} expects "
                        f"{expected_rank} indices, got {expr.rank}"
                    )
                for index in expr.index:
                    if isinstance(index, str) and index not in in_scope:
                        raise ValueError(
                            f"kernel {self.name!r}: index variable {index!r} "
                            "is not an enclosing loop variable"
                        )
            elif isinstance(expr, BinOp):
                check_expr(expr.lhs, in_scope)
                check_expr(expr.rhs, in_scope)

        def visit(items: list, in_scope: set[str]) -> None:
            for item in items:
                if isinstance(item, Loop):
                    if item.var in in_scope:
                        raise ValueError(
                            f"kernel {self.name!r}: loop variable {item.var!r} shadows "
                            "an enclosing loop"
                        )
                    visit(item.body, in_scope | {item.var})
                else:
                    check_expr(item.target, in_scope)
                    check_expr(item.expr, in_scope)

        visit(self.body, set())
