"""PolyBench kernel specifications.

The paper evaluates PowerGear on nine PolyBench kernels: atax, bicg, gemm,
gesummv, 2mm, 3mm, mvt, syrk and syr2k.  Each function below builds the
corresponding :class:`~repro.kernels.spec.KernelSpec` with a configurable
problem size ``n`` (the paper uses full PolyBench sizes on a real board; the
default here is kept small so that activity simulation over the whole design
space stays laptop-friendly — see EXPERIMENTS.md).

Loop names are unique within a kernel so that design directives can address
individual loops (``i0``, ``j0`` for the first nest, ``i1``, ``j1`` for the
second, ...).
"""

from __future__ import annotations

from typing import Callable

from repro.kernels.spec import ArraySpec, Assign, Const, KernelSpec, Loop, Ref, add, mul

DEFAULT_SIZE = 8

ALPHA = 1.5
BETA = 1.2


def _acc(target: Ref, term) -> Assign:
    """``target = target + term``."""
    return Assign(target, add(target, term))


def atax(n: int = DEFAULT_SIZE) -> KernelSpec:
    """``y = A^T (A x)`` via the temporary ``tmp = A x``."""
    a = lambda i, j: Ref("A", (i, j))
    x = lambda j: Ref("x", (j,))
    y = lambda j: Ref("y", (j,))
    tmp = lambda i: Ref("tmp", (i,))
    body = [
        Loop("j0", n, [Assign(y("j0"), Const(0.0))]),
        Loop(
            "i1",
            n,
            [
                Assign(tmp("i1"), Const(0.0)),
                Loop("j1", n, [_acc(tmp("i1"), mul(a("i1", "j1"), x("j1")))]),
                Loop("j2", n, [_acc(y("j2"), mul(a("i1", "j2"), tmp("i1")))]),
            ],
        ),
    ]
    return KernelSpec(
        name="atax",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("x", (n,), "in"),
            ArraySpec("y", (n,), "out"),
            ArraySpec("tmp", (n,), "inout"),
        ],
        body=body,
        description="matrix transpose times vector product",
    )


def bicg(n: int = DEFAULT_SIZE) -> KernelSpec:
    """BiCG sub-kernel: ``s = A^T r`` and ``q = A p``."""
    a = lambda i, j: Ref("A", (i, j))
    body = [
        Loop("j0", n, [Assign(Ref("s", ("j0",)), Const(0.0))]),
        Loop(
            "i1",
            n,
            [
                Assign(Ref("q", ("i1",)), Const(0.0)),
                Loop(
                    "j1",
                    n,
                    [
                        _acc(Ref("s", ("j1",)), mul(Ref("r", ("i1",)), a("i1", "j1"))),
                        _acc(Ref("q", ("i1",)), mul(a("i1", "j1"), Ref("p", ("j1",)))),
                    ],
                ),
            ],
        ),
    ]
    return KernelSpec(
        name="bicg",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("r", (n,), "in"),
            ArraySpec("p", (n,), "in"),
            ArraySpec("s", (n,), "out"),
            ArraySpec("q", (n,), "out"),
        ],
        body=body,
        description="BiCG sub-kernel of BiCGStab linear solver",
    )


def gemm(n: int = DEFAULT_SIZE) -> KernelSpec:
    """``C = alpha * A * B + beta * C``."""
    c = lambda: Ref("C", ("i0", "j0"))
    body = [
        Loop(
            "i0",
            n,
            [
                Loop(
                    "j0",
                    n,
                    [
                        Assign(c(), mul(c(), Const(BETA))),
                        Loop(
                            "k0",
                            n,
                            [
                                _acc(
                                    c(),
                                    mul(
                                        mul(Const(ALPHA), Ref("A", ("i0", "k0"))),
                                        Ref("B", ("k0", "j0")),
                                    ),
                                )
                            ],
                        ),
                    ],
                )
            ],
        )
    ]
    return KernelSpec(
        name="gemm",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("B", (n, n), "in"),
            ArraySpec("C", (n, n), "inout"),
        ],
        body=body,
        description="general matrix-matrix multiplication",
    )


def gesummv(n: int = DEFAULT_SIZE) -> KernelSpec:
    """``y = alpha * A * x + beta * B * x``."""
    body = [
        Loop(
            "i0",
            n,
            [
                Assign(Ref("tmp", ("i0",)), Const(0.0)),
                Assign(Ref("y", ("i0",)), Const(0.0)),
                Loop(
                    "j0",
                    n,
                    [
                        _acc(
                            Ref("tmp", ("i0",)),
                            mul(Ref("A", ("i0", "j0")), Ref("x", ("j0",))),
                        ),
                        _acc(
                            Ref("y", ("i0",)),
                            mul(Ref("B", ("i0", "j0")), Ref("x", ("j0",))),
                        ),
                    ],
                ),
                Assign(
                    Ref("y", ("i0",)),
                    add(
                        mul(Const(ALPHA), Ref("tmp", ("i0",))),
                        mul(Const(BETA), Ref("y", ("i0",))),
                    ),
                ),
            ],
        )
    ]
    return KernelSpec(
        name="gesummv",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("B", (n, n), "in"),
            ArraySpec("x", (n,), "in"),
            ArraySpec("y", (n,), "out"),
            ArraySpec("tmp", (n,), "inout"),
        ],
        body=body,
        description="scalar, vector and matrix multiplication",
    )


def two_mm(n: int = DEFAULT_SIZE) -> KernelSpec:
    """``D = alpha * A * B * C + beta * D`` via ``tmp = alpha * A * B``."""
    body = [
        Loop(
            "i0",
            n,
            [
                Loop(
                    "j0",
                    n,
                    [
                        Assign(Ref("tmp", ("i0", "j0")), Const(0.0)),
                        Loop(
                            "k0",
                            n,
                            [
                                _acc(
                                    Ref("tmp", ("i0", "j0")),
                                    mul(
                                        mul(Const(ALPHA), Ref("A", ("i0", "k0"))),
                                        Ref("B", ("k0", "j0")),
                                    ),
                                )
                            ],
                        ),
                    ],
                )
            ],
        ),
        Loop(
            "i1",
            n,
            [
                Loop(
                    "j1",
                    n,
                    [
                        Assign(
                            Ref("D", ("i1", "j1")),
                            mul(Ref("D", ("i1", "j1")), Const(BETA)),
                        ),
                        Loop(
                            "k1",
                            n,
                            [
                                _acc(
                                    Ref("D", ("i1", "j1")),
                                    mul(Ref("tmp", ("i1", "k1")), Ref("C", ("k1", "j1"))),
                                )
                            ],
                        ),
                    ],
                )
            ],
        ),
    ]
    return KernelSpec(
        name="2mm",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("B", (n, n), "in"),
            ArraySpec("C", (n, n), "in"),
            ArraySpec("D", (n, n), "inout"),
            ArraySpec("tmp", (n, n), "inout"),
        ],
        body=body,
        description="two chained matrix multiplications",
    )


def three_mm(n: int = DEFAULT_SIZE) -> KernelSpec:
    """``G = (A * B) * (C * D)`` via temporaries ``E`` and ``F``."""

    def matmul_nest(dst: str, lhs: str, rhs: str, suffix: str) -> Loop:
        i, j, k = f"i{suffix}", f"j{suffix}", f"k{suffix}"
        return Loop(
            i,
            n,
            [
                Loop(
                    j,
                    n,
                    [
                        Assign(Ref(dst, (i, j)), Const(0.0)),
                        Loop(
                            k,
                            n,
                            [_acc(Ref(dst, (i, j)), mul(Ref(lhs, (i, k)), Ref(rhs, (k, j))))],
                        ),
                    ],
                )
            ],
        )

    body = [
        matmul_nest("E", "A", "B", "0"),
        matmul_nest("F", "C", "D", "1"),
        matmul_nest("G", "E", "F", "2"),
    ]
    return KernelSpec(
        name="3mm",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("B", (n, n), "in"),
            ArraySpec("C", (n, n), "in"),
            ArraySpec("D", (n, n), "in"),
            ArraySpec("E", (n, n), "inout"),
            ArraySpec("F", (n, n), "inout"),
            ArraySpec("G", (n, n), "out"),
        ],
        body=body,
        description="three chained matrix multiplications",
    )


def mvt(n: int = DEFAULT_SIZE) -> KernelSpec:
    """``x1 += A y1`` and ``x2 += A^T y2``."""
    body = [
        Loop(
            "i0",
            n,
            [
                Loop(
                    "j0",
                    n,
                    [
                        _acc(
                            Ref("x1", ("i0",)),
                            mul(Ref("A", ("i0", "j0")), Ref("y1", ("j0",))),
                        )
                    ],
                )
            ],
        ),
        Loop(
            "i1",
            n,
            [
                Loop(
                    "j1",
                    n,
                    [
                        _acc(
                            Ref("x2", ("i1",)),
                            mul(Ref("A", ("j1", "i1")), Ref("y2", ("j1",))),
                        )
                    ],
                )
            ],
        ),
    ]
    return KernelSpec(
        name="mvt",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("x1", (n,), "inout"),
            ArraySpec("x2", (n,), "inout"),
            ArraySpec("y1", (n,), "in"),
            ArraySpec("y2", (n,), "in"),
        ],
        body=body,
        description="matrix-vector product and transpose product",
    )


def syrk(n: int = DEFAULT_SIZE) -> KernelSpec:
    """Symmetric rank-k update ``C = alpha * A * A^T + beta * C``."""
    body = [
        Loop(
            "i0",
            n,
            [
                Loop(
                    "j0",
                    n,
                    [
                        Assign(
                            Ref("C", ("i0", "j0")),
                            mul(Ref("C", ("i0", "j0")), Const(BETA)),
                        ),
                        Loop(
                            "k0",
                            n,
                            [
                                _acc(
                                    Ref("C", ("i0", "j0")),
                                    mul(
                                        mul(Const(ALPHA), Ref("A", ("i0", "k0"))),
                                        Ref("A", ("j0", "k0")),
                                    ),
                                )
                            ],
                        ),
                    ],
                )
            ],
        )
    ]
    return KernelSpec(
        name="syrk",
        arrays=[ArraySpec("A", (n, n), "in"), ArraySpec("C", (n, n), "inout")],
        body=body,
        description="symmetric rank-k matrix update",
    )


def syr2k(n: int = DEFAULT_SIZE) -> KernelSpec:
    """Symmetric rank-2k update ``C = alpha*A*B^T + alpha*B*A^T + beta*C``."""
    body = [
        Loop(
            "i0",
            n,
            [
                Loop(
                    "j0",
                    n,
                    [
                        Assign(
                            Ref("C", ("i0", "j0")),
                            mul(Ref("C", ("i0", "j0")), Const(BETA)),
                        ),
                        Loop(
                            "k0",
                            n,
                            [
                                Assign(
                                    Ref("C", ("i0", "j0")),
                                    add(
                                        Ref("C", ("i0", "j0")),
                                        add(
                                            mul(
                                                mul(Const(ALPHA), Ref("A", ("i0", "k0"))),
                                                Ref("B", ("j0", "k0")),
                                            ),
                                            mul(
                                                mul(Const(ALPHA), Ref("B", ("i0", "k0"))),
                                                Ref("A", ("j0", "k0")),
                                            ),
                                        ),
                                    ),
                                )
                            ],
                        ),
                    ],
                )
            ],
        )
    ]
    return KernelSpec(
        name="syr2k",
        arrays=[
            ArraySpec("A", (n, n), "in"),
            ArraySpec("B", (n, n), "in"),
            ArraySpec("C", (n, n), "inout"),
        ],
        body=body,
        description="symmetric rank-2k matrix update",
    )


POLYBENCH_KERNELS: dict[str, Callable[[int], KernelSpec]] = {
    "atax": atax,
    "bicg": bicg,
    "gemm": gemm,
    "gesummv": gesummv,
    "2mm": two_mm,
    "3mm": three_mm,
    "mvt": mvt,
    "syrk": syrk,
    "syr2k": syr2k,
}


def polybench_names() -> list[str]:
    """Names of the nine evaluated PolyBench kernels, in the paper's order."""
    return ["atax", "bicg", "gemm", "gesummv", "2mm", "3mm", "mvt", "syrk", "syr2k"]


def polybench_kernel(name: str, size: int = DEFAULT_SIZE) -> KernelSpec:
    """Build the PolyBench kernel ``name`` with problem size ``size``."""
    if name not in POLYBENCH_KERNELS:
        raise KeyError(
            f"unknown PolyBench kernel {name!r}; available: {sorted(POLYBENCH_KERNELS)}"
        )
    kernel = POLYBENCH_KERNELS[name](size)
    kernel.validate()
    return kernel
