"""Design-space generation: pragma sweeps over a kernel.

The paper builds ~500 design points per kernel "by applying loop pipelining,
loop unrolling and buffer partitioning".  :func:`generate_design_space`
enumerates the cross product of

* per-innermost-loop unroll factors (divisors of the trip count),
* per-innermost-loop pipelining on/off, and
* per-array partition factors for the arrays accessed in innermost loops,

and, if the product exceeds the requested number of points, draws a
reproducible random subset that always includes the unoptimised baseline
design (which the metadata scaling factors are normalised against).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.kernels.spec import KernelSpec
from repro.utils.rng import spawn_rng


@dataclass
class DesignSpace:
    """A kernel together with the design points to evaluate."""

    kernel: KernelSpec
    points: list[DesignDirectives] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def baseline(self) -> DesignDirectives:
        for point in self.points:
            if point.is_baseline:
                return point
        raise ValueError("design space does not contain the baseline point")


def _divisor_factors(trip: int, factors: tuple[int, ...]) -> list[int]:
    valid = sorted({f for f in factors if f <= trip and trip % f == 0})
    return valid or [1]


def partitioned_array_names(kernel: KernelSpec) -> list[str]:
    """Arrays eligible for partitioning directives (the 2-D matrices)."""
    return [spec.name for spec in kernel.arrays if len(spec.shape) >= 2]


def baseline_directives(kernel: KernelSpec) -> DesignDirectives:
    """The unoptimised baseline design point of ``kernel``'s design space."""
    return DesignDirectives.from_dicts(
        {loop.var: LoopPragmas() for loop in kernel.innermost_loops()},
        {name: ArrayPartition() for name in partitioned_array_names(kernel)},
    )


def generate_design_space(
    kernel: KernelSpec,
    max_points: int = 60,
    unroll_factors: tuple[int, ...] = (1, 2, 4, 8),
    partition_factors: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
) -> DesignSpace:
    """Generate up to ``max_points`` design points for ``kernel``.

    The baseline (all defaults) is always the first point.  The remaining
    points are drawn without replacement from the full pragma cross product.
    """
    if max_points < 1:
        raise ValueError("max_points must be >= 1")

    innermost = kernel.innermost_loops()
    loop_options: list[list[LoopPragmas]] = []
    for loop in innermost:
        options = [
            LoopPragmas(unroll_factor=factor, pipeline=pipeline)
            for factor in _divisor_factors(loop.trip, unroll_factors)
            for pipeline in (False, True)
        ]
        loop_options.append(options)

    # Partition only the arrays that matter for memory bandwidth: the 2-D
    # arrays (matrices), which dominate port pressure in these kernels.
    partitioned_arrays = partitioned_array_names(kernel)
    array_options: list[list[ArrayPartition]] = [
        [ArrayPartition(factor=f) for f in sorted(set(partition_factors))]
        for _ in partitioned_arrays
    ]

    loop_names = [loop.var for loop in innermost]

    def build_point(loop_choice, array_choice) -> DesignDirectives:
        return DesignDirectives.from_dicts(
            {name: pragmas for name, pragmas in zip(loop_names, loop_choice)},
            {name: part for name, part in zip(partitioned_arrays, array_choice)},
        )

    total_combinations = 1
    for options in loop_options:
        total_combinations *= len(options)
    for options in array_options:
        total_combinations *= len(options)

    baseline = baseline_directives(kernel)

    points: list[DesignDirectives] = [baseline]
    seen = {baseline}

    if total_combinations <= max_points * 4:
        # Small space: enumerate it and subsample deterministically if needed.
        all_points = [
            build_point(loop_choice, array_choice)
            for loop_choice in itertools.product(*loop_options)
            for array_choice in itertools.product(*array_options)
        ]
        rng = spawn_rng(seed, "design_space", kernel.name)
        rng.shuffle(all_points)
        for point in all_points:
            if len(points) >= max_points:
                break
            if point not in seen:
                points.append(point)
                seen.add(point)
    else:
        rng = spawn_rng(seed, "design_space", kernel.name)
        attempts = 0
        while len(points) < max_points and attempts < max_points * 50:
            attempts += 1
            loop_choice = [options[int(rng.integers(len(options)))] for options in loop_options]
            array_choice = [
                options[int(rng.integers(len(options)))] for options in array_options
            ]
            point = build_point(loop_choice, array_choice)
            if point not in seen:
                points.append(point)
                seen.add(point)

    return DesignSpace(kernel=kernel, points=points)
