"""Synthetic loop-pattern kernels.

The paper augments the PolyBench training data with "synthetic datasets to
increase the diversity of loop patterns in training".  These generators build
parametric kernels with controllable arithmetic-intensity, loop depth and
dataflow shape: elementwise chains, reductions, stencils and outer products.
They exercise the same HLS / graph-construction / power pipeline as the
PolyBench kernels and can be mixed into training sets via the dataset
generator.
"""

from __future__ import annotations

from repro.kernels.spec import ArraySpec, Assign, BinOp, Const, KernelSpec, Loop, Ref, add, mul
from repro.utils.rng import new_rng

DEFAULT_SIZE = 8


def elementwise_chain(size: int = DEFAULT_SIZE, depth: int = 3, name: str = "syn_chain") -> KernelSpec:
    """``out[i] = (((a[i] op b[i]) op b[i]) ...)`` with ``depth`` chained ops."""
    if depth < 1:
        raise ValueError("chain depth must be >= 1")
    expr = mul(Ref("a", ("i0",)), Ref("b", ("i0",)))
    for level in range(1, depth):
        op = "+" if level % 2 else "*"
        expr = BinOp(op, expr, Ref("b", ("i0",)))
    body = [Loop("i0", size, [Assign(Ref("out", ("i0",)), expr)])]
    return KernelSpec(
        name=name,
        arrays=[
            ArraySpec("a", (size,), "in"),
            ArraySpec("b", (size,), "in"),
            ArraySpec("out", (size,), "out"),
        ],
        body=body,
        description=f"elementwise arithmetic chain of depth {depth}",
    )


def reduction(size: int = DEFAULT_SIZE, name: str = "syn_reduce") -> KernelSpec:
    """Dot-product style reduction ``acc[0] += a[i] * b[i]``."""
    body = [
        Loop("z0", 1, [Assign(Ref("acc", ("z0",)), Const(0.0))]),
        Loop(
            "i0",
            size,
            [
                Assign(
                    Ref("acc", (0,)),
                    add(Ref("acc", (0,)), mul(Ref("a", ("i0",)), Ref("b", ("i0",)))),
                )
            ],
        ),
    ]
    return KernelSpec(
        name=name,
        arrays=[
            ArraySpec("a", (size,), "in"),
            ArraySpec("b", (size,), "in"),
            ArraySpec("acc", (1,), "out"),
        ],
        body=body,
        description="dot-product reduction",
    )


def stencil_1d(size: int = DEFAULT_SIZE, name: str = "syn_stencil") -> KernelSpec:
    """Three-point weighted stencil over a 1-D array (interior points only)."""
    if size < 3:
        raise ValueError("stencil requires size >= 3")
    # Interior points are addressed by an offset loop: out[i+1] uses in[i], in[i+1], in[i+2].
    # The spec language only supports plain loop-variable indices, so the kernel
    # uses three shifted copies of the input prepared by the testbench.
    body = [
        Loop(
            "i0",
            size,
            [
                Assign(
                    Ref("out", ("i0",)),
                    add(
                        mul(Const(0.25), Ref("left", ("i0",))),
                        add(
                            mul(Const(0.5), Ref("center", ("i0",))),
                            mul(Const(0.25), Ref("right", ("i0",))),
                        ),
                    ),
                )
            ],
        )
    ]
    return KernelSpec(
        name=name,
        arrays=[
            ArraySpec("left", (size,), "in"),
            ArraySpec("center", (size,), "in"),
            ArraySpec("right", (size,), "in"),
            ArraySpec("out", (size,), "out"),
        ],
        body=body,
        description="three-point 1-D stencil",
    )


def outer_product(size: int = DEFAULT_SIZE, name: str = "syn_outer") -> KernelSpec:
    """Rank-1 update ``C[i][j] += a[i] * b[j]``."""
    body = [
        Loop(
            "i0",
            size,
            [
                Loop(
                    "j0",
                    size,
                    [
                        Assign(
                            Ref("C", ("i0", "j0")),
                            add(Ref("C", ("i0", "j0")), mul(Ref("a", ("i0",)), Ref("b", ("j0",)))),
                        )
                    ],
                )
            ],
        )
    ]
    return KernelSpec(
        name=name,
        arrays=[
            ArraySpec("a", (size,), "in"),
            ArraySpec("b", (size,), "in"),
            ArraySpec("C", (size, size), "inout"),
        ],
        body=body,
        description="rank-1 outer-product update",
    )


_GENERATORS = {
    "chain": elementwise_chain,
    "reduce": reduction,
    "stencil": stencil_1d,
    "outer": outer_product,
}


def synthetic_names() -> list[str]:
    return sorted(_GENERATORS)


def synthetic_kernel(pattern: str, size: int = DEFAULT_SIZE, **kwargs) -> KernelSpec:
    """Build a synthetic kernel of the given ``pattern``."""
    if pattern not in _GENERATORS:
        raise KeyError(f"unknown synthetic pattern {pattern!r}; available: {synthetic_names()}")
    kernel = _GENERATORS[pattern](size, **kwargs)
    kernel.validate()
    return kernel


def random_synthetic_suite(count: int, size: int = DEFAULT_SIZE, seed: int = 0) -> list[KernelSpec]:
    """A reproducible mix of synthetic kernels used to diversify training data."""
    rng = new_rng(seed)
    patterns = synthetic_names()
    suite: list[KernelSpec] = []
    for index in range(count):
        pattern = patterns[int(rng.integers(len(patterns)))]
        if pattern == "chain":
            depth = int(rng.integers(2, 6))
            suite.append(elementwise_chain(size, depth=depth, name=f"syn_chain_{index}"))
        else:
            suite.append(synthetic_kernel(pattern, size, name=f"syn_{pattern}_{index}"))
    return suite
