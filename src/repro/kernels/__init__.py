"""Kernel specifications: PolyBench kernels, synthetic kernels and design spaces."""

from repro.kernels.spec import (
    ArraySpec,
    Assign,
    BinOp,
    Const,
    KernelSpec,
    Loop,
    Ref,
)
from repro.kernels.polybench import POLYBENCH_KERNELS, polybench_kernel, polybench_names
from repro.kernels.synthetic import synthetic_kernel, synthetic_names
from repro.kernels.design_space import DesignSpace, generate_design_space

__all__ = [
    "ArraySpec",
    "Assign",
    "BinOp",
    "Const",
    "KernelSpec",
    "Loop",
    "Ref",
    "POLYBENCH_KERNELS",
    "polybench_kernel",
    "polybench_names",
    "synthetic_kernel",
    "synthetic_names",
    "DesignSpace",
    "generate_design_space",
]
