"""Leave-one-application-out evaluation harness (Tables I and II).

The paper's transferability protocol: for each of the nine PolyBench kernels,
train on the other eight and evaluate the mean absolute percentage error on
the held-out kernel.  The harness runs that protocol for

* PowerGear (the HEC-GNN ensemble) and its ablation variants (Table II),
* the node-centric GNN baselines (GCN, GraphSAGE, GraphConv, GINE),
* HL-Pow (histograms + GBDT), and
* the calibrated Vivado-like estimator,

and also aggregates the per-kernel runtime speedups of Table I's last column.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.baselines.hlpow import HLPowConfig, HLPowModel
from repro.gnn.base import PowerGNN
from repro.gnn.baseline_convs import GCNModel, GINEModel, GraphConvModel, GraphSAGEModel
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig
from repro.gnn.hecgnn import HECGNN
from repro.gnn.trainer import Trainer, TrainingConfig
from repro.graph.dataset import FeatureScaler, GraphDataset, GraphSample
from repro.power.vivado import VivadoCalibration
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.utils.metrics import mape


@dataclass
class EvaluationConfig:
    """Shared settings of one evaluation run."""

    target: str = "dynamic"
    gnn: GNNConfig = field(default_factory=GNNConfig)
    training: TrainingConfig = field(default_factory=lambda: TrainingConfig(epochs=120))
    ensemble: EnsembleConfig | None = field(default_factory=EnsembleConfig)
    hlpow: HLPowConfig = field(default_factory=HLPowConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.training.target != self.target:
            self.training = replace(self.training, target=self.target)


class GraphModelEstimator:
    """Adapter giving every GNN model class the fit/predict interface."""

    def __init__(
        self,
        model_class: type[PowerGNN],
        gnn_config: GNNConfig,
        training_config: TrainingConfig,
        scale_features: bool = True,
    ) -> None:
        self.model_class = model_class
        self.gnn_config = gnn_config
        self.training_config = training_config
        self.scale_features = scale_features
        self.scaler: FeatureScaler | None = None
        self.model: PowerGNN | None = None

    def _prepare(self, samples: list[GraphSample]) -> list[GraphSample]:
        if not self.scale_features:
            return samples
        if self.scaler is None:
            raise RuntimeError("estimator has not been fitted")
        return self.scaler.transform(samples)

    def fit(self, samples: list[GraphSample]) -> "GraphModelEstimator":
        if self.scale_features:
            self.scaler = FeatureScaler().fit(samples)
        prepared = self._prepare(samples)
        reference = prepared[0].graph
        self.model = self.model_class(
            reference.node_feature_dim,
            reference.edge_feature_dim,
            reference.metadata_dim,
            self.gnn_config,
        )
        Trainer(self.training_config).fit(self.model, prepared)
        return self

    def predict(self, samples: list[GraphSample]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator has not been fitted")
        prepared = self._prepare(samples)
        return np.maximum(self.model.predict([s.graph for s in prepared]), 1e-9)


class VivadoEstimatorAdapter:
    """Calibrated Vivado-like estimator with the common fit/predict interface."""

    def __init__(self, target: str) -> None:
        if target not in ("total", "dynamic"):
            raise ValueError("the Vivado baseline supports total or dynamic power")
        self.target = target
        self.calibration = VivadoCalibration()

    @staticmethod
    def _raw(samples: list[GraphSample]) -> tuple[np.ndarray, np.ndarray]:
        raw_total = np.array([s.vivado_total_power for s in samples])
        raw_dynamic = np.array([s.vivado_dynamic_power for s in samples])
        return raw_total, raw_dynamic

    def fit(self, samples: list[GraphSample]) -> "VivadoEstimatorAdapter":
        raw_total, raw_dynamic = self._raw(samples)
        measured_total = np.array([s.total_power for s in samples])
        measured_dynamic = np.array([s.dynamic_power for s in samples])
        self.calibration.fit(raw_total, measured_total, raw_dynamic, measured_dynamic)
        return self

    def predict(self, samples: list[GraphSample]) -> np.ndarray:
        raw_total, raw_dynamic = self._raw(samples)
        if self.target == "total":
            return np.maximum(self.calibration.calibrate_total(raw_total), 1e-9)
        return np.maximum(self.calibration.calibrate_dynamic(raw_dynamic), 1e-9)


class HLPowAdapter:
    """HL-Pow with the common interface (target bound at construction)."""

    def __init__(self, target: str, config: HLPowConfig) -> None:
        self.target = target
        self.model = HLPowModel(config)

    def fit(self, samples: list[GraphSample]) -> "HLPowAdapter":
        self.model.fit(samples, target=self.target)
        return self

    def predict(self, samples: list[GraphSample]) -> np.ndarray:
        return self.model.predict(samples)


def _powergear_builder(config: EvaluationConfig):
    return PowerGear(
        PowerGearConfig(
            target=config.target,
            gnn=config.gnn,
            training=config.training,
            ensemble=config.ensemble,
        )
    )


def _single_hecgnn_builder(gnn_config_transform: Callable[[GNNConfig], GNNConfig]):
    def build(config: EvaluationConfig):
        return GraphModelEstimator(
            HECGNN, gnn_config_transform(config.gnn), config.training
        )

    return build


#: Table I model registry: name -> builder(config) -> estimator with fit/predict.
MODEL_BUILDERS: dict[str, Callable[[EvaluationConfig], object]] = {
    "powergear": _powergear_builder,
    "vivado": lambda config: VivadoEstimatorAdapter(config.target),
    "hlpow": lambda config: HLPowAdapter(config.target, config.hlpow),
    "gcn": lambda config: GraphModelEstimator(GCNModel, config.gnn, config.training),
    "graphsage": lambda config: GraphModelEstimator(GraphSAGEModel, config.gnn, config.training),
    "graphconv": lambda config: GraphModelEstimator(GraphConvModel, config.gnn, config.training),
    "gine": lambda config: GraphModelEstimator(GINEModel, config.gnn, config.training),
}

#: Table II variant registry: name -> builder(config) -> estimator.
ABLATION_VARIANTS: dict[str, Callable[[EvaluationConfig], object]] = {
    "w/o opt.": _single_hecgnn_builder(lambda c: c.unoptimised()),
    "w/o e.f.": _single_hecgnn_builder(lambda c: c.without_edge_features()),
    "w/o dir.": _single_hecgnn_builder(lambda c: c.without_directionality()),
    "w/o hetr.": _single_hecgnn_builder(lambda c: c.without_heterogeneity()),
    "w/o md.": _single_hecgnn_builder(lambda c: c.without_metadata()),
    "sgl.": _single_hecgnn_builder(lambda c: c),
    "prop.": _powergear_builder,
}


@dataclass
class LeaveOneOutResult:
    """Per-kernel errors of one model under the leave-one-out protocol."""

    model_name: str
    target: str
    per_kernel_error: dict[str, float]

    @property
    def average_error(self) -> float:
        return float(np.mean(list(self.per_kernel_error.values())))


class LeaveOneOutEvaluator:
    """Runs the leave-one-application-out protocol on a generated dataset."""

    def __init__(self, dataset: GraphDataset, config: EvaluationConfig | None = None) -> None:
        if not len(dataset):
            raise ValueError("the evaluation dataset is empty")
        self.dataset = dataset
        self.config = config or EvaluationConfig()

    def _builder(self, model_name: str) -> Callable[[EvaluationConfig], object]:
        if model_name in MODEL_BUILDERS:
            return MODEL_BUILDERS[model_name]
        if model_name in ABLATION_VARIANTS:
            return ABLATION_VARIANTS[model_name]
        raise KeyError(
            f"unknown model {model_name!r}; available: "
            f"{sorted(MODEL_BUILDERS) + sorted(ABLATION_VARIANTS)}"
        )

    def evaluate_model(
        self, model_name: str, kernels: list[str] | None = None
    ) -> LeaveOneOutResult:
        """Evaluate one model on every (or the given) held-out kernels."""
        builder = self._builder(model_name)
        kernels = kernels or self.dataset.kernels()
        per_kernel: dict[str, float] = {}
        for kernel in kernels:
            train, test = self.dataset.leave_one_out(kernel)
            estimator = builder(self.config)
            estimator.fit(train.samples)
            predictions = estimator.predict(test.samples)
            targets = test.targets(self.config.target)
            per_kernel[kernel] = mape(targets, predictions)
        return LeaveOneOutResult(model_name, self.config.target, per_kernel)

    def evaluate_models(
        self, model_names: list[str], kernels: list[str] | None = None
    ) -> dict[str, LeaveOneOutResult]:
        return {name: self.evaluate_model(name, kernels) for name in model_names}

    # ------------------------------------------------------------- Table I extras

    def dataset_properties(self) -> dict[str, dict[str, float]]:
        """The dataset-properties columns of Table I (#samples, average #nodes)."""
        properties: dict[str, dict[str, float]] = {}
        for kernel in self.dataset.kernels():
            subset = self.dataset.by_kernel(kernel)
            properties[kernel] = {
                "num_samples": float(len(subset)),
                "avg_nodes": subset.average_num_nodes(),
            }
        return properties

    def runtime_speedups(self) -> dict[str, float]:
        """Average Vivado-flow / PowerGear-flow runtime ratio per kernel."""
        speedups: dict[str, float] = {}
        for kernel in self.dataset.kernels():
            subset = self.dataset.by_kernel(kernel)
            ratios = [
                s.vivado_flow_seconds / s.powergear_flow_seconds
                for s in subset
                if s.powergear_flow_seconds > 0
            ]
            speedups[kernel] = float(np.mean(ratios)) if ratios else float("nan")
        return speedups
