"""End-to-end PowerGear flow: dataset generation, training/inference, evaluation."""

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.flow.evaluation import (
    LeaveOneOutEvaluator,
    EvaluationConfig,
    MODEL_BUILDERS,
    ABLATION_VARIANTS,
)

__all__ = [
    "DatasetConfig",
    "DatasetGenerator",
    "PowerGear",
    "PowerGearConfig",
    "LeaveOneOutEvaluator",
    "EvaluationConfig",
    "MODEL_BUILDERS",
    "ABLATION_VARIANTS",
]
