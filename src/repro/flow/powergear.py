"""The PowerGear estimator: scaler + HEC-GNN (optionally ensembled).

This is the user-facing API of the reproduction:

>>> from repro import PowerGear, PowerGearConfig
>>> model = PowerGear(PowerGearConfig(target="dynamic"))
>>> model.fit(train_samples)
>>> predictions = model.predict(test_samples)

``fit`` standardises features on the training samples, then trains either a
single HEC-GNN ("sgl." in Table II) or the full k-fold x seeds ensemble
("prop."), depending on the configuration.  ``predict`` applies the same
scaler and averages member predictions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.gnn.base import PowerGNN
from repro.gnn.config import GNNConfig
from repro.gnn.ensemble import EnsembleConfig, EnsembleRegressor
from repro.gnn.hecgnn import HECGNN
from repro.gnn.trainer import Trainer, TrainingConfig
from repro.graph.dataset import FeatureScaler, GraphSample
from repro.utils.metrics import mape


@dataclass
class PowerGearConfig:
    """Configuration of the end-to-end PowerGear estimator."""

    target: str = "dynamic"
    gnn: GNNConfig = field(default_factory=GNNConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    ensemble: EnsembleConfig | None = field(default_factory=EnsembleConfig)
    scale_features: bool = True

    def __post_init__(self) -> None:
        if self.target not in ("total", "dynamic", "static"):
            raise ValueError(f"unknown target {self.target!r}")
        # Keep the trainer's target consistent with the top-level target.
        if self.training.target != self.target:
            self.training = replace(self.training, target=self.target)

    @staticmethod
    def paper(target: str = "dynamic") -> "PowerGearConfig":
        """The published configuration (hidden 128, 10-fold x 3-seed ensemble)."""
        return PowerGearConfig(
            target=target,
            gnn=GNNConfig.paper(),
            training=TrainingConfig.paper(target),
            ensemble=EnsembleConfig.paper(),
        )

    def single_model(self) -> "PowerGearConfig":
        """The ``sgl.`` variant of Table II (no ensemble)."""
        return PowerGearConfig(
            target=self.target,
            gnn=self.gnn,
            training=self.training,
            ensemble=None,
            scale_features=self.scale_features,
        )

    # ------------------------------------------------------------- (de)serialise

    def to_dict(self) -> dict:
        """JSON-serialisable representation (registry manifests, fingerprints)."""
        return {
            "target": self.target,
            "scale_features": self.scale_features,
            "gnn": asdict(self.gnn),
            "training": asdict(self.training),
            "ensemble": asdict(self.ensemble) if self.ensemble is not None else None,
        }

    @staticmethod
    def from_dict(payload: dict) -> "PowerGearConfig":
        """Inverse of :meth:`to_dict`."""
        ensemble = payload.get("ensemble")
        return PowerGearConfig(
            target=payload["target"],
            scale_features=payload["scale_features"],
            gnn=GNNConfig(**payload["gnn"]),
            training=TrainingConfig(**payload["training"]),
            ensemble=EnsembleConfig(
                folds=ensemble["folds"], seeds=tuple(ensemble["seeds"])
            )
            if ensemble is not None
            else None,
        )


class PowerGear:
    """Scaler + HEC-GNN (ensemble) power estimator."""

    #: Floor applied to every prediction (a power estimate is never <= 0).
    MIN_PREDICTION = 1e-9

    @classmethod
    def clamp_predictions(cls, predictions: np.ndarray) -> np.ndarray:
        """The shared finalisation of every predict path (serial and pooled)."""
        return np.maximum(predictions, cls.MIN_PREDICTION)

    def __init__(self, config: PowerGearConfig | None = None) -> None:
        self.config = config or PowerGearConfig()
        self.scaler: FeatureScaler | None = None
        self.model: PowerGNN | None = None
        self.ensemble: EnsembleRegressor | None = None
        self._dims: tuple[int, int, int] | None = None

    # ------------------------------------------------------------------ fitting

    def _prepare(self, samples: list[GraphSample]) -> list[GraphSample]:
        if self.config.scale_features:
            if self.scaler is None:
                raise RuntimeError("scaler has not been fitted")
            return self.scaler.transform(samples)
        return samples

    def prepare_samples(self, samples: list[GraphSample]) -> list[GraphSample]:
        """Apply the fitted feature scaling exactly as the predict paths do.

        Public so out-of-process forward engines (the pooled forward of
        :class:`~repro.runtime.pool.ForwardPool`) can reproduce
        :meth:`predict_batch`'s preprocessing bit for bit before packing and
        sharding the forward itself.
        """
        return self._prepare(samples)

    def _model_factory(self, gnn_config: GNNConfig) -> HECGNN:
        assert self._dims is not None
        node_dim, edge_dim, meta_dim = self._dims
        return HECGNN(node_dim, edge_dim, meta_dim, gnn_config)

    def fit(self, samples: list[GraphSample]) -> "PowerGear":
        """Train on ``samples`` (unscaled graphs as produced by the dataset generator)."""
        if len(samples) < 4:
            raise ValueError("PowerGear needs at least four training samples")
        if self.config.scale_features:
            self.scaler = FeatureScaler().fit(samples)
        prepared = self._prepare(samples)
        reference = prepared[0].graph
        self._dims = (
            reference.node_feature_dim,
            reference.edge_feature_dim,
            reference.metadata_dim,
        )

        if self.config.ensemble is not None:
            self.ensemble = EnsembleRegressor(
                model_factory=self._model_factory,
                model_config=self.config.gnn,
                training_config=self.config.training,
                ensemble_config=self.config.ensemble,
            ).fit(prepared)
            self.model = None
        else:
            self.model = self._model_factory(self.config.gnn)
            Trainer(self.config.training).fit(self.model, prepared)
            self.ensemble = None
        return self

    # ---------------------------------------------------------------- inference

    def predict(self, samples: list[GraphSample]) -> np.ndarray:
        """Predict the configured power target for every sample, in watts."""
        if self.ensemble is None and self.model is None:
            raise RuntimeError("PowerGear has not been fitted")
        prepared = self._prepare(samples)
        if self.ensemble is not None:
            predictions = self.ensemble.predict(prepared)
        else:
            predictions = self.model.predict([s.graph for s in prepared])
        return self.clamp_predictions(predictions)

    def predict_batch(
        self, samples: list[GraphSample], batch_size: int | None = None
    ) -> np.ndarray:
        """Batched prediction: identical to :meth:`predict` but vectorised.

        All graphs (or chunks of ``batch_size`` graphs) are packed into one
        block-diagonal mega-graph so the whole ensemble runs a single forward
        pass per member instead of one per sample.  Predictions match
        :meth:`predict` to floating-point round-off (<< 1e-8).
        """
        if self.ensemble is None and self.model is None:
            raise RuntimeError("PowerGear has not been fitted")
        if not samples:
            return np.zeros(0)
        prepared = self._prepare(samples)
        if self.ensemble is not None:
            predictions = self.ensemble.predict_batch(prepared, batch_size=batch_size)
        else:
            predictions = self.model.predict(
                [s.graph for s in prepared],
                batch_size=batch_size if batch_size is not None else len(prepared),
            )
        return self.clamp_predictions(predictions)

    def fingerprint(self) -> str:
        """Stable hex digest of the full configuration, scaler and weights.

        Two ``PowerGear`` instances with identical configuration and
        parameters produce identical fingerprints, which is what the serving
        cache uses to key predictions and what the registry stores to verify
        artifact integrity.  The configuration is part of the digest because
        ablation switches (``directed``, ``heterogeneous``, …) change
        predictions without changing any weight shape.
        """
        if self.ensemble is None and self.model is None:
            raise RuntimeError("PowerGear has not been fitted")
        digest = hashlib.sha256()
        digest.update(json.dumps(self.config.to_dict(), sort_keys=True).encode("utf-8"))
        if self.scaler is not None:
            for block in (
                self.scaler.node_mean,
                self.scaler.node_std,
                self.scaler.edge_mean,
                self.scaler.edge_std,
                self.scaler.meta_mean,
                self.scaler.meta_std,
            ):
                digest.update(b"/")
                if block is not None:
                    digest.update(np.ascontiguousarray(block, dtype=np.float64).tobytes())
        models = (
            [member.model for member in self.ensemble.members]
            if self.ensemble is not None
            else [self.model]
        )
        for model in models:
            for parameter in model.parameters():
                digest.update(b"|")
                digest.update(
                    np.ascontiguousarray(parameter.data, dtype=np.float64).tobytes()
                )
        return digest.hexdigest()

    def evaluate(self, samples: list[GraphSample]) -> float:
        """MAPE (percent) against the ground-truth labels of ``samples``."""
        predictions = self.predict(samples)
        targets = np.array([s.target(self.config.target) for s in samples])
        return mape(targets, predictions)
