"""Dataset generation: design spaces -> HLS -> graphs -> power labels.

For every design point of every kernel, the generator runs the full training-
data pipeline of Fig. 1:

1. lower the kernel under the design point's directives (HLS front end),
2. schedule / bind / report (HLS back end),
3. simulate switching activity on the testbench stimulus,
4. run the graph construction flow to obtain the heterogeneous power graph,
5. obtain the "on-board measurement" label from the ground-truth power model,
6. obtain the Vivado-like baseline estimate and the flow runtimes.

Because the IR (and therefore the activity profile) depends only on the loop
pragmas — not on array partitioning — lowered designs and activity profiles
are cached per loop-pragma configuration, which speeds up full design-space
sweeps several-fold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.activity.simulator import ActivityProfile, simulate_activity
from repro.activity.stimuli import StimulusGenerator
from repro.graph.construction import GraphConstructionConfig, GraphConstructor
from repro.graph.dataset import GraphDataset, GraphSample
from repro.hls.binding import Binder
from repro.hls.frontend import HLSFrontend, LoweredDesign
from repro.hls.fsmd import build_fsmd
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.pragmas import DesignDirectives
from repro.hls.report import HLSReport, HLSResult, TARGET_CLOCK_NS, _achieved_clock_ns
from repro.hls.resources import ResourceEstimator
from repro.hls.scheduling import Scheduler
from repro.kernels.design_space import (
    DesignSpace,
    baseline_directives,
    generate_design_space,
)
from repro.kernels.polybench import polybench_kernel, polybench_names
from repro.kernels.spec import KernelSpec
from repro.power.ground_truth import GroundTruthPowerModel
from repro.power.runtime import RuntimeModel
from repro.power.vivado import VivadoPowerEstimator
from repro.utils.rng import derive_seed


@dataclass
class DatasetConfig:
    """Configuration of the dataset generator.

    The paper uses ~500 design points per kernel generated with Vivado HLS on
    full-size PolyBench; the defaults here are laptop-sized (see
    EXPERIMENTS.md) and every knob can be raised toward the paper's scale.
    """

    kernel_size: int = 8
    designs_per_kernel: int = 60
    unroll_factors: tuple[int, ...] = (1, 2, 4, 8)
    partition_factors: tuple[int, ...] = (1, 2, 4)
    stimulus_profile: str = "uniform"
    stimulus_seed: int = 7
    measurement_seed: int = 11
    measurement_noise: bool = True
    graph_config: GraphConstructionConfig = field(default_factory=GraphConstructionConfig)
    seed: int = 0


class DatasetGenerator:
    """Generates :class:`GraphDataset` objects for kernels and design spaces."""

    def __init__(
        self,
        config: DatasetConfig | None = None,
        library: OperatorLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self.config = config or DatasetConfig()
        self.library = library
        self.frontend = HLSFrontend()
        self.scheduler = Scheduler(library)
        self.binder = Binder(library)
        self.resource_estimator = ResourceEstimator(library)
        self.graph_constructor = GraphConstructor(self.config.graph_config)
        self.ground_truth = GroundTruthPowerModel(
            seed=self.config.measurement_seed, noise=self.config.measurement_noise
        )
        self.vivado = VivadoPowerEstimator()
        self.runtime_model = RuntimeModel()
        #: Per-kernel (stimuli, lowered_cache, profile_cache, baseline_report)
        #: memoised across :meth:`featurise` calls (the serving path).
        self._serving_state: dict[str, tuple] = {}

    # ------------------------------------------------------------------ public

    def design_space_for(self, kernel: KernelSpec) -> DesignSpace:
        return generate_design_space(
            kernel,
            max_points=self.config.designs_per_kernel,
            unroll_factors=self.config.unroll_factors,
            partition_factors=self.config.partition_factors,
            seed=self.config.seed,
        )

    def generate_kernel(self, kernel: KernelSpec | str) -> GraphDataset:
        """Generate the dataset of one kernel's design space."""
        if isinstance(kernel, str):
            kernel = polybench_kernel(kernel, self.config.kernel_size)
        design_space = self.design_space_for(kernel)
        return self.generate_from_design_space(kernel, design_space)

    def generate_from_design_space(
        self, kernel: KernelSpec, design_space: DesignSpace
    ) -> GraphDataset:
        stimuli = StimulusGenerator(
            seed=derive_seed(self.config.stimulus_seed, kernel.name),
            profile=self.config.stimulus_profile,
        ).for_kernel(kernel)

        lowered_cache: dict[tuple, LoweredDesign] = {}
        profile_cache: dict[tuple, ActivityProfile] = {}

        baseline_report: HLSReport | None = None
        dataset = GraphDataset()
        for directives in design_space:
            sample = self._generate_sample(
                kernel,
                directives,
                stimuli,
                lowered_cache,
                profile_cache,
                baseline_report,
            )
            if directives.is_baseline or baseline_report is None:
                baseline_report = sample.extras["report"]
            dataset.add(sample)
        return dataset

    def featurise(
        self,
        kernel: KernelSpec | str,
        directives_list: list[DesignDirectives],
    ) -> list[GraphSample]:
        """Featurise specific design points of one kernel (the serving path).

        Runs the same pipeline as :meth:`generate_from_design_space` — HLS,
        activity tracing, graph construction, labels — for an explicit list of
        directives.  Deterministic: featurising the same ``(kernel,
        directives)`` twice produces identical samples, which is what lets the
        serving cache treat that pair as a content address.
        """
        if isinstance(kernel, str):
            kernel = polybench_kernel(kernel, self.config.kernel_size)
        state = self._serving_state.get(kernel.name)
        if state is None:
            # The stimuli, the baseline report and the lowering / activity
            # caches are deterministic per (kernel, config); memoise them on
            # the generator so a stream of single-design featurisation
            # requests does not re-run the baseline HLS flow every time.
            stimuli = StimulusGenerator(
                seed=derive_seed(self.config.stimulus_seed, kernel.name),
                profile=self.config.stimulus_profile,
            ).for_kernel(kernel)
            lowered_cache: dict[tuple, LoweredDesign] = {}
            profile_cache: dict[tuple, ActivityProfile] = {}
            baseline_design = self._lowered_design(
                kernel, baseline_directives(kernel), lowered_cache
            )
            baseline_report = self._run_backend(baseline_design).report
            state = (stimuli, lowered_cache, profile_cache, baseline_report)
            self._serving_state[kernel.name] = state
        stimuli, lowered_cache, profile_cache, baseline_report = state
        return [
            self._generate_sample(
                kernel, directives, stimuli, lowered_cache, profile_cache, baseline_report
            )
            for directives in directives_list
        ]

    def generate(self, kernel_names: list[str] | None = None) -> GraphDataset:
        """Generate the combined dataset of several (default: all nine) kernels."""
        names = kernel_names or polybench_names()
        combined = GraphDataset()
        for name in names:
            combined.extend(self.generate_kernel(name).samples)
        return combined

    # --------------------------------------------------------------- internals

    @staticmethod
    def _loop_pragma_key(kernel: KernelSpec, directives: DesignDirectives) -> tuple:
        return tuple(
            (loop.var, directives.pragmas_for_loop(loop.var).unroll_factor)
            for loop in kernel.all_loops()
        )

    def _lowered_design(
        self,
        kernel: KernelSpec,
        directives: DesignDirectives,
        lowered_cache: dict[tuple, LoweredDesign],
    ) -> LoweredDesign:
        """Lower (or reuse) the IR for this design point's unroll configuration."""
        key = self._loop_pragma_key(kernel, directives)
        cached = lowered_cache.get(key)
        if cached is None:
            cached = self.frontend.lower(kernel, directives)
            lowered_cache[key] = cached
        # Pipeline / partition directives do not change the IR: reuse the
        # cached function and re-attach this design point's directives.
        design = LoweredDesign(
            kernel=kernel,
            directives=directives,
            function=cached.function,
            array_partitions={
                array.name: directives.partition_for_array(array.name)
                for array in kernel.arrays
            },
            loop_pragmas={
                loop.var: directives.pragmas_for_loop(loop.var)
                for loop in kernel.all_loops()
            },
        )
        for region in design.function.loops:
            region.pragmas = directives.pragmas_for_loop(region.name)
        return design

    def _activity_profile(
        self,
        kernel: KernelSpec,
        directives: DesignDirectives,
        design: LoweredDesign,
        stimuli,
        profile_cache: dict[tuple, ActivityProfile],
    ) -> ActivityProfile:
        key = self._loop_pragma_key(kernel, directives)
        cached = profile_cache.get(key)
        if cached is None:
            cached = simulate_activity(design, stimuli)
            profile_cache[key] = cached
        return cached

    def _run_backend(self, design: LoweredDesign) -> HLSResult:
        schedule = self.scheduler.schedule(design)
        binding = self.binder.bind(design, schedule)
        fsmd = build_fsmd(design, schedule)
        resources = self.resource_estimator.estimate(design, binding, fsmd)
        report = HLSReport(
            kernel_name=design.kernel.name,
            directives=design.directives,
            latency_cycles=schedule.total_latency,
            target_clock_ns=TARGET_CLOCK_NS,
            achieved_clock_ns=_achieved_clock_ns(
                design, resources, self.library, TARGET_CLOCK_NS
            ),
            resources=resources,
            fsm_states=fsmd.num_states,
        )
        return HLSResult(design, schedule, binding, fsmd, report)

    def _config_vector(self, kernel: KernelSpec, directives: DesignDirectives) -> list[float]:
        """Numeric encoding of the directive configuration (used by the DSE explorer)."""
        vector: list[float] = []
        for loop in kernel.all_loops():
            pragmas = directives.pragmas_for_loop(loop.var)
            vector.append(float(np.log2(pragmas.unroll_factor)))
            vector.append(1.0 if pragmas.pipeline else 0.0)
        for array in kernel.arrays:
            vector.append(float(np.log2(directives.partition_for_array(array.name).factor)))
        return vector

    def _generate_sample(
        self,
        kernel: KernelSpec,
        directives: DesignDirectives,
        stimuli,
        lowered_cache,
        profile_cache,
        baseline_report: HLSReport | None,
    ) -> GraphSample:
        design = self._lowered_design(kernel, directives, lowered_cache)
        hls_result = self._run_backend(design)
        profile = self._activity_profile(
            kernel, directives, design, stimuli, profile_cache
        )
        graph = self.graph_constructor.build(
            hls_result, profile, baseline_report=baseline_report
        )
        measurement = self.ground_truth.measure(hls_result, profile)
        vivado_estimate = self.vivado.estimate(hls_result, profile)
        runtimes = self.runtime_model.runtimes(hls_result)
        return GraphSample(
            graph=graph,
            kernel=kernel.name,
            directives=directives.describe(),
            total_power=measurement.total,
            dynamic_power=measurement.dynamic,
            static_power=measurement.static,
            latency_cycles=hls_result.report.latency_cycles,
            vivado_total_power=vivado_estimate.total,
            vivado_dynamic_power=vivado_estimate.dynamic,
            vivado_flow_seconds=runtimes.vivado_flow_seconds,
            powergear_flow_seconds=runtimes.powergear_flow_seconds,
            is_baseline=directives.is_baseline,
            extras={
                "report": hls_result.report,
                "config_vector": self._config_vector(kernel, directives),
                "num_instructions": len(design.function.instructions),
            },
        )


# ----------------------------------------------------- multi-process serving

#: Per-process generator used by the featurisation worker pool.  Workers keep
#: one generator alive across tasks so the per-kernel serving state (stimuli,
#: baseline report, lowering / activity caches) warms up once per process.
_WORKER_GENERATOR: DatasetGenerator | None = None


@dataclass(frozen=True)
class FeaturisationTask:
    """One picklable unit of pooled featurisation work.

    Everything in here — the kernel name and the directive tuples — is a plain
    frozen dataclass of primitives, so tasks cross process boundaries under
    any multiprocessing start method.
    """

    kernel: str
    directives: tuple[DesignDirectives, ...]


def featurisation_worker_init(config: DatasetConfig) -> None:
    """Process-pool initializer: build this worker's generator once."""
    global _WORKER_GENERATOR
    _WORKER_GENERATOR = DatasetGenerator(config)


def run_featurisation_task(task: FeaturisationTask) -> list[GraphSample]:
    """Execute one task in a pool worker (or inline, for the serial fallback).

    Featurisation is a pure function of ``(config, kernel, directives)`` —
    stimuli, measurement noise and placement capacitances are all keyed by
    content, never drawn from sequential RNG state — so a worker's samples are
    bitwise-identical to the serial path's regardless of how the design list
    was sharded across processes.
    """
    if _WORKER_GENERATOR is None:
        raise RuntimeError(
            "featurisation worker is not initialised "
            "(pool must be created with featurisation_worker_init)"
        )
    return _WORKER_GENERATOR.featurise(task.kernel, list(task.directives))


def run_featurisation_task_with_meta(task: FeaturisationTask):
    """Like :func:`run_featurisation_task`, plus a span payload for tracing.

    Returns ``(samples, payload)`` where ``payload`` is the picklable span
    dict of :func:`repro.obs.trace.span_payload` — worker pid, wall-clock
    start, duration — so the parent can graft worker-side timing into the
    live request trace and refresh the worker's heartbeat.  The samples are
    the *same objects* the untimed variant returns (the pool's bitwise
    contract is untouched; the payload is pure side data).
    """
    import time as _time

    from repro.obs.trace import span_payload

    wall_start = _time.time()
    clock_start = _time.perf_counter()
    samples = run_featurisation_task(task)
    return samples, span_payload(
        "featurise.shard",
        wall_start,
        _time.perf_counter() - clock_start,
        kernel=task.kernel,
        designs=len(task.directives),
    )
