"""Self-healing worker pools: supervised lifecycle over the process pools.

The pools in :mod:`repro.runtime.pool` are deliberately dumb about faults: a
worker SIGKILLed by the OOM killer surfaces as a :class:`WorkerCrashError`
and the pool object is permanently broken.  Before this layer existed the
service answered that with a one-strike policy — retire the pool forever and
run serial for the rest of the process lifetime.  :class:`SupervisedPool`
replaces that with a supervised lifecycle:

* **restart-on-crash** — a crashed pool is torn down and rebuilt through its
  factory, with exponential backoff between restarts and a hard budget
  (``max_restarts``); the batch that observed the crash retries on the fresh
  pool, so a transient fault costs one restart, not the request.  When the
  budget is exhausted the supervisor *retires* (degrade-to-serial, exactly
  the old policy — but only after the budget, never on the first strike).
* **restart-budget decay** — with ``restart_budget_decay_s > 0``, every full
  decay window of fault-free operation refunds one consumed restart, so a
  long-lived pool is only ever retired by faults *clustered in time*, never
  by the same number of transient faults spread over weeks.  Refunds are
  claimed lazily on batch success (no timer thread) and are visible in
  :meth:`health` as ``budget_refunds``.
* **queue-depth autoscaling** — every batch reports its design count on
  admission; when the designs in flight exceed
  ``scale_up_queue_per_worker × size`` the pool grows (doubling, capped at
  ``max_workers``), and after ``scale_down_patience`` consecutive
  low-pressure batches it shrinks one worker toward ``min_workers``.  The
  up-threshold sits strictly above the down-threshold, so bursty traffic
  cannot make the size oscillate batch to batch (hysteresis).
* **health snapshots** — :meth:`health` reports state / size / queue depth /
  restart counters / last fault; the service threads it through
  ``runtime_stats()`` and the HTTP ``/metrics`` + ``/healthz`` endpoints
  (a pool in backoff turns health *degraded*, never dead).

Determinism contract: the supervisor never touches a batch's decomposition.
A batch runs wholly on the one pool generation it acquired — resizes and
restarts start a *new* generation for subsequent batches while in-flight
batches finish (and drain-close) the old one — every retry re-runs the whole
batch on one pool, and both pools' merges are bitwise-identical to serial at
*any* worker count.  So supervised results equal serial results under every
crash/resize interleaving.

The supervisor is generic over a ``factory(num_workers) -> pool`` callable;
the only protocol it needs from the pool object is ``close()``.  Batches are
submitted as ``run(batch_fn, cost=...)`` where ``batch_fn(pool)`` performs
the pool call — so one implementation supervises both the featurisation
:class:`~repro.runtime.pool.WorkerPool` and the
:class:`~repro.runtime.pool.ForwardPool`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.runtime.pool import WorkerCrashError

__all__ = [
    "PoolClosedError",
    "PoolRetiredError",
    "SupervisedPool",
    "WorkerCrashError",
]


class PoolRetiredError(RuntimeError):
    """The restart budget is exhausted; the pool is permanently serial."""


class PoolClosedError(RuntimeError):
    """Submission through a supervisor whose :meth:`SupervisedPool.close` ran."""


class SupervisedPool:
    """Crash-supervised, queue-depth-autoscaled lifecycle around one pool.

    Thread-safe: concurrent batches share one pool generation; a crash is
    recovered exactly once per generation (concurrent observers of the same
    crash retry on the new generation without consuming extra budget), and
    the backoff sleep serialises recoveries without blocking healthy traffic
    or health reads.
    """

    def __init__(
        self,
        factory: Callable[[int], object],
        *,
        min_workers: int,
        max_workers: int,
        start_workers: int | None = None,
        max_restarts: int = 3,
        restart_budget_decay_s: float = 0.0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        scale_up_queue_per_worker: float = 4.0,
        scale_down_queue_per_worker: float = 1.0,
        scale_down_patience: int = 4,
        min_designs_per_worker: int = 1,
        name: str = "pool",
        on_fault: Callable[[BaseException], None] | None = None,
        on_restart: Callable[[], None] | None = None,
        observer: object | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_workers < 2:
            raise ValueError("a supervised pool needs at least 2 workers")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if restart_budget_decay_s < 0:
            raise ValueError("restart_budget_decay_s must be >= 0")
        if backoff_base_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")
        if scale_up_queue_per_worker <= scale_down_queue_per_worker:
            raise ValueError(
                "scale_up_queue_per_worker must exceed scale_down_queue_per_worker "
                "(the gap is the hysteresis band)"
            )
        if scale_down_queue_per_worker <= 0:
            raise ValueError("scale_down_queue_per_worker must be > 0")
        if scale_down_patience < 1:
            raise ValueError("scale_down_patience must be >= 1")
        if min_designs_per_worker < 1:
            raise ValueError("min_designs_per_worker must be >= 1")
        start = min_workers if start_workers is None else start_workers
        self.factory = factory
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.max_restarts = max_restarts
        self.restart_budget_decay_s = restart_budget_decay_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.scale_up_queue_per_worker = scale_up_queue_per_worker
        self.scale_down_queue_per_worker = scale_down_queue_per_worker
        self.scale_down_patience = scale_down_patience
        self.min_designs_per_worker = min_designs_per_worker
        self.name = name
        self._on_fault = on_fault
        self._on_restart = on_restart
        # Duck-typed observability sink (repro.obs.Observability): anything
        # with pool_event(kind, pool=..., **fields).  Every lifecycle
        # transition reports through it — crash, restart, retire, scale_up,
        # scale_down — feeding the event timeline, the pool-event counters
        # and the structured log in one call.  Always best-effort: a broken
        # observer must never break recovery.
        self._observer = observer
        self._sleep = sleep
        self._clock = clock
        # _state_lock guards every counter below and is never held across a
        # pool build, a pool close or a backoff sleep; _restart_lock
        # serialises recoveries (and is the only lock held while sleeping).
        self._state_lock = threading.Lock()
        self._restart_lock = threading.Lock()
        self._state = "ok"  # ok | backoff | retired | closed
        self._size = min(max(start, min_workers), max_workers)
        self._target_size = self._size
        self._generation = 0
        self._pools: dict[int, object] = {}
        self._in_flight: dict[int, int] = {}
        self._queue_depth = 0
        self._idle_streak = 0
        self._restarts = 0
        self._budget_refunds = 0
        # Start of the current fault-free observation window; reset by every
        # consumed restart and advanced by every refund.
        self._budget_anchor = clock()
        self._scale_ups = 0
        self._scale_downs = 0
        self._batches = 0
        self._retried_batches = 0
        self._last_fault: str | None = None

    # ------------------------------------------------------------------ public

    @property
    def size(self) -> int:
        """Worker count new pool generations are built with."""
        with self._state_lock:
            return self._size

    @property
    def retired(self) -> bool:
        with self._state_lock:
            return self._state == "retired"

    @property
    def closed(self) -> bool:
        with self._state_lock:
            return self._state == "closed"

    def should_parallelise(self, num_designs: int) -> bool:
        """Whether a batch is big enough to amortise the IPC of sharding.

        Deliberately measured against the *floor* size, not the current one:
        if the threshold grew with the pool, medium batches would stop being
        admitted after a scale-up — starving the queue-depth signal, so a
        grown pool could never shrink back while those same batches run
        serial forever.  Any batch worth pooling at the floor stays pooled
        at every size (``shard_evenly`` just hands out fewer, larger shards
        than workers when the batch is small).
        """
        return num_designs >= self.min_workers * self.min_designs_per_worker

    def run(self, batch_fn: Callable[[object], object], *, cost: int = 1):
        """Run one batch through the supervised pool; restart on crashes.

        ``batch_fn(pool)`` must perform one complete pool batch (a
        ``featurise`` or ``predict_batch`` call); ``cost`` is the batch's
        design count, the unit queue depth and autoscaling reason about.

        Raises :class:`PoolRetiredError` once the restart budget is
        exhausted and :class:`PoolClosedError` after :meth:`close`; every
        other exception from ``batch_fn`` propagates unchanged (task-level
        errors are the caller's problem and never consume restart budget).
        """
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self._admit(cost)
        try:
            while True:
                generation, pool = self._acquire()
                try:
                    result = batch_fn(pool)
                except WorkerCrashError as fault:
                    self._finish(generation)
                    self._recover(generation, fault)
                    continue
                except BaseException:
                    self._finish(generation)
                    raise
                self._finish(generation)
                with self._state_lock:
                    self._batches += 1
                    if self._state == "backoff":
                        # The restarted pool proved itself: healthy again.
                        self._state = "ok"
                    refunded = self._refund_budget_locked()
                    remaining = self._restarts
                if refunded:
                    self._emit("budget_refund", refunded=refunded, restarts=remaining)
                return result
        finally:
            with self._state_lock:
                self._queue_depth -= cost

    def health(self) -> dict:
        """Point-in-time health snapshot (JSON-safe, lock-consistent).

        Includes per-worker heartbeats when the current pool generation keeps
        a heartbeat book (both process pools do): ``pid -> {last_seen,
        age_s}``, stamped passively by traced shard results and actively by
        :meth:`probe`.
        """
        with self._state_lock:
            pool = self._pools.get(self._generation)
            snapshot = {
                "name": self.name,
                "state": self._state,
                "size": self._size,
                "target_size": self._target_size,
                "min_workers": self.min_workers,
                "max_workers": self.max_workers,
                "queue_depth": self._queue_depth,
                "in_flight_batches": sum(self._in_flight.values()),
                "restarts": self._restarts,
                "max_restarts": self.max_restarts,
                "restart_budget_decay_s": self.restart_budget_decay_s,
                "budget_refunds": self._budget_refunds,
                "last_fault": self._last_fault,
                "scale_ups": self._scale_ups,
                "scale_downs": self._scale_downs,
                "batches": self._batches,
                "retried_batches": self._retried_batches,
            }
        heartbeats = getattr(pool, "heartbeats", None)
        if callable(heartbeats):
            now = time.time()
            snapshot["heartbeats"] = {
                str(pid): {"last_seen": seen, "age_s": max(now - seen, 0.0)}
                for pid, seen in sorted(heartbeats().items())
            }
        return snapshot

    def probe(self) -> dict[int, float]:
        """Actively heartbeat-probe the current pool generation.

        Best-effort by design: returns ``{}`` when there is no live pool,
        the pool has no probe, or the probe itself faults (a broken pool is
        the *next batch's* recovery to run, not the prober's).
        """
        with self._state_lock:
            pool = self._pools.get(self._generation)
        probe = getattr(pool, "probe", None)
        if not callable(probe):
            return {}
        try:
            return probe()
        except Exception:
            return {}

    def retire(self, reason: str) -> None:
        """Retire the pool from outside the crash path.  Idempotent.

        For persistent *non-crash* failures the caller observes (e.g. a pool
        whose construction-time validation raises deterministically on every
        batch): further :meth:`run` calls fast-fail with
        :class:`PoolRetiredError` instead of re-paying the doomed setup, and
        health reports ``retired`` with ``reason`` as the last fault.
        """
        stale: list[object] = []
        with self._state_lock:
            if self._state in ("closed", "retired"):
                return
            self._state = "retired"
            self._last_fault = reason
            for generation in list(self._pools):
                if not self._in_flight.get(generation):
                    stale.append(self._pools.pop(generation))
            # Stragglers still in flight drain-close theirs via _finish.
            self._generation += 1
            restarts = self._restarts
        for pool in stale:
            self._close_quietly(pool)
        self._emit("retire", reason=reason, restarts=restarts)

    def close(self) -> None:
        """Stop supervising and close every live pool generation.  Idempotent.

        In-flight batches on a closed pool raise the pool's own closed-pool
        error (a plain ``RuntimeError``), which the service already treats as
        a shutdown race and answers on the serial path.
        """
        with self._state_lock:
            if self._state == "closed":
                return
            self._state = "closed"
            pools = list(self._pools.values())
            self._pools.clear()
            self._in_flight.clear()
        for pool in pools:
            self._close_quietly(pool)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _admit(self, cost: int) -> None:
        """Count the batch into the queue and make the autoscale decision.

        The decision only moves ``_target_size``; the actual resize happens
        at the next batch admission (see :meth:`_acquire`), never under a
        running batch — in-flight batches keep the pool they acquired.
        """
        with self._state_lock:
            if self._state == "closed":
                raise PoolClosedError(f"{self.name} supervisor is closed")
            if self._state == "retired":
                raise PoolRetiredError(
                    f"{self.name} pool is retired after {self._restarts} restarts"
                )
            self._queue_depth += cost
            depth = self._queue_depth
            if self.max_workers == self.min_workers:
                return
            size = self._target_size
            if depth > size * self.scale_up_queue_per_worker:
                if size < self.max_workers:
                    # Grow fast (doubling): a queued burst should reach a
                    # useful size in O(log) batches, not one worker at a time.
                    self._target_size = min(self.max_workers, size * 2)
                self._idle_streak = 0
            elif depth <= size * self.scale_down_queue_per_worker:
                self._idle_streak += 1
                if self._idle_streak >= self.scale_down_patience:
                    # Shrink slowly (one worker after a patience streak):
                    # the asymmetry plus the threshold gap is the hysteresis.
                    if size > self.min_workers:
                        self._target_size = size - 1
                    self._idle_streak = 0
            else:
                self._idle_streak = 0

    def _acquire(self) -> tuple[int, object]:
        """Hand out the current pool generation, applying pending resizes.

        A resize starts a new pool generation for *subsequent* batches;
        batches already in flight finish on the generation they acquired
        (the last one out drain-closes it in :meth:`_finish`).  Every
        batch's shards therefore run on exactly one pool — the "resize at
        shard boundaries, never mid-batch" contract — and a resize decided
        under sustained overlapping traffic still lands at the very next
        admission instead of waiting for a full traffic gap.
        """
        stale = None
        resize: tuple[str, int, int] | None = None
        with self._state_lock:
            if self._state == "closed":
                raise PoolClosedError(f"{self.name} supervisor is closed")
            if self._state == "retired":
                raise PoolRetiredError(
                    f"{self.name} pool is retired after {self._restarts} restarts"
                )
            if self._target_size != self._size:
                if self._target_size > self._size:
                    self._scale_ups += 1
                    resize = ("scale_up", self._size, self._target_size)
                else:
                    self._scale_downs += 1
                    resize = ("scale_down", self._size, self._target_size)
                self._size = self._target_size
                if not self._in_flight.get(self._generation):
                    stale = self._pools.pop(self._generation, None)
                self._generation += 1
            generation = self._generation
            pool = self._pools.get(generation)
            if pool is None:
                # Build under the lock: pool constructors are cheap by
                # contract (worker processes spawn lazily on first use), and
                # racing builders would leak a pool's worth of processes.
                pool = self.factory(self._size)
                self._pools[generation] = pool
            self._in_flight[generation] = self._in_flight.get(generation, 0) + 1
        if stale is not None:
            self._close_quietly(stale)
        if resize is not None:
            kind, old_size, new_size = resize
            self._emit(kind, from_workers=old_size, to_workers=new_size)
        return generation, pool

    def _finish(self, generation: int) -> None:
        """Release a batch's hold on its generation; drain stale pools."""
        stale = None
        with self._state_lock:
            remaining = self._in_flight.get(generation, 1) - 1
            if remaining <= 0:
                self._in_flight.pop(generation, None)
                if generation != self._generation:
                    # Last batch off a replaced generation closes it.
                    stale = self._pools.pop(generation, None)
            else:
                self._in_flight[generation] = remaining
        if stale is not None:
            self._close_quietly(stale)

    def _recover(self, generation: int, fault: WorkerCrashError) -> None:
        """Handle one observed crash: restart within budget or retire.

        Exactly one observer per generation consumes budget; concurrent
        batches that crashed off the same broken pool serialise behind the
        restart lock (so they also wait out the backoff) and then retry on
        the new generation for free.
        """
        with self._restart_lock:
            stale = None
            with self._state_lock:
                if self._state == "closed":
                    raise PoolClosedError(f"{self.name} supervisor is closed") from fault
                if generation != self._generation:
                    return  # Another observer already recovered this crash.
                self._last_fault = f"{type(fault).__name__}: {fault}"
                if self._restarts >= self.max_restarts:
                    self._state = "retired"
                    # Bump the generation so concurrent batches still draining
                    # off the broken pool close it on their way out (_finish);
                    # _acquire can never hand the dead generation out again.
                    if not self._in_flight.get(generation):
                        stale = self._pools.pop(generation, None)
                    self._generation += 1
                    retire = True
                else:
                    retire = False
                    self._restarts += 1
                    self._retried_batches += 1
                    self._budget_anchor = self._clock()
                    self._state = "backoff"
                    if not self._in_flight.get(generation):
                        stale = self._pools.pop(generation, None)
                    self._generation += 1
                    delay = min(
                        self.backoff_base_s * (2 ** (self._restarts - 1)),
                        self.backoff_max_s,
                    )
            if stale is not None:
                self._close_quietly(stale)
            self._emit("crash", fault=str(fault), generation=generation)
            if self._on_fault is not None:
                try:
                    self._on_fault(fault)
                except Exception:
                    pass
            if retire:
                self._emit("retire", reason=self._last_fault, restarts=self._restarts)
                raise PoolRetiredError(
                    f"{self.name} pool retired after {self._restarts} restarts "
                    f"(last fault: {self._last_fault})"
                ) from fault
            self._emit("restart", restarts=self._restarts, backoff_s=delay)
            if self._on_restart is not None:
                try:
                    self._on_restart()
                except Exception:
                    pass
            if delay > 0:
                self._sleep(delay)

    def _refund_budget_locked(self) -> int:
        """Refund restart budget earned by sustained fault-free operation.

        Called on every batch success under ``_state_lock``.  Each full
        ``restart_budget_decay_s`` window elapsed since the last consumed
        restart (or last refund) returns one restart to the budget — a long
        fault-free stretch may refund several at once, which is exactly the
        schedule: N windows of proven health undo N old faults.  No refund
        while in backoff: the restarted pool must prove itself (flip the
        state back to ``ok`` above) before its uptime starts counting.
        """
        if (
            self.restart_budget_decay_s <= 0
            or not self._restarts
            or self._state != "ok"
        ):
            return 0
        now = self._clock()
        refunded = 0
        while self._restarts and now - self._budget_anchor >= self.restart_budget_decay_s:
            self._restarts -= 1
            self._budget_refunds += 1
            self._budget_anchor += self.restart_budget_decay_s
            refunded += 1
        return refunded

    def _emit(self, kind: str, **fields) -> None:
        """Report one lifecycle event through the observer, best-effort."""
        if self._observer is None:
            return
        try:
            self._observer.pool_event(kind, pool=self.name, **fields)
        except Exception:
            pass

    @staticmethod
    def _close_quietly(pool) -> None:
        try:
            pool.close()
        except Exception:
            pass
