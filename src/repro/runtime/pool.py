"""Multi-process featurisation pool with a deterministic merge.

Per-kernel featurisation — HLS lowering, scheduling/binding, activity
simulation, graph construction, labelling — dominates the cost of serving an
uncached design and is embarrassingly parallel: every design point is a pure
function of ``(dataset config, kernel, directives)``.  :class:`WorkerPool`
shards a featurisation batch into contiguous, balanced slices
(:func:`repro.serve.batching.shard_evenly`), runs each slice in a worker
process, and concatenates the results in shard order, so pooled output is
**bitwise-identical** to the serial path's — same floats, same graphs, same
content addresses.

Each worker process owns one :class:`~repro.flow.dataset_gen.DatasetGenerator`
built from the same :class:`~repro.flow.dataset_gen.DatasetConfig` as the
service's, created once by the pool initializer and kept alive across tasks,
so per-kernel serving state (stimuli, baseline report, lowering / activity
caches) warms up once per process rather than once per request.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field

from repro.flow.dataset_gen import (
    DatasetConfig,
    FeaturisationTask,
    featurisation_worker_init,
    run_featurisation_task,
)
from repro.graph.dataset import GraphSample
from repro.hls.pragmas import DesignDirectives


def shard_evenly(count: int, shards: int) -> list[slice]:
    """Split ``range(count)`` into at most ``shards`` contiguous, balanced slices.

    Shard sizes differ by at most one and earlier shards get the remainder, so
    the decomposition is a pure function of ``(count, shards)``: the worker
    pool relies on this to merge pooled results back into the exact order the
    serial path would have produced.  Empty shards are never returned; fewer
    than ``shards`` slices come back when ``count < shards``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, count)
    slices: list[slice] = []
    start = 0
    for index in range(shards):
        size = count // shards + (1 if index < count % shards else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def default_start_method() -> str:
    """``fork`` where the platform offers it, ``spawn`` otherwise."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class PoolStats:
    """Bookkeeping of one pool's lifetime."""

    batches: int = 0
    designs: int = 0
    shards: int = 0

    def as_dict(self) -> dict:
        return {"batches": self.batches, "designs": self.designs, "shards": self.shards}


@dataclass
class WorkerPool:
    """Shards featurisation batches across worker processes."""

    config: DatasetConfig
    num_workers: int = 2
    start_method: str | None = None
    min_designs_per_worker: int = 2
    stats: PoolStats = field(default_factory=PoolStats)

    def __post_init__(self) -> None:
        if self.num_workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        if self.min_designs_per_worker < 1:
            raise ValueError("min_designs_per_worker must be >= 1")
        self._pool = None
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ public

    def should_parallelise(self, num_designs: int) -> bool:
        """Whether a batch is big enough to amortise the IPC of sharding."""
        return num_designs >= self.num_workers * self.min_designs_per_worker

    def featurise(
        self, kernel: str, directives_list: list[DesignDirectives]
    ) -> list[GraphSample]:
        """Featurise one kernel's design list across the pool, in order.

        The merge is deterministic: shard ``i`` covers a contiguous slice of
        ``directives_list`` and results are concatenated in shard order, so
        the returned list is element-for-element the one the serial path
        produces.
        """
        if not directives_list:
            return []
        pool = self._ensure_pool()
        shards = shard_evenly(len(directives_list), self.num_workers)
        tasks = [
            FeaturisationTask(kernel=kernel, directives=tuple(directives_list[part]))
            for part in shards
        ]
        with self._lock:
            self.stats.batches += 1
            self.stats.designs += len(directives_list)
            self.stats.shards += len(tasks)
        merged: list[GraphSample] = []
        for shard_samples in pool.map(run_featurisation_task, tasks):
            merged.extend(shard_samples)
        return merged

    def close(self) -> None:
        """Drain in-flight work, stop the workers, refuse further batches.

        Idempotent.  Uses graceful shutdown (``close`` + ``join``) rather than
        ``terminate`` so a concurrent ``featurise`` finishes instead of dying
        mid-task.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _ensure_pool(self):
        # Locked check-then-act: concurrent cold featurise calls must share
        # one process pool, not each spawn their own (the loser's worker
        # processes would never be terminated).
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot featurise through a closed WorkerPool")
            if self._pool is None:
                context = multiprocessing.get_context(
                    self.start_method or default_start_method()
                )
                self._pool = context.Pool(
                    processes=self.num_workers,
                    initializer=featurisation_worker_init,
                    initargs=(self.config,),
                )
            return self._pool
