"""Multi-process worker pools with deterministic merges.

Two pools live here, both built on the same contiguous-shard decomposition
(:func:`shard_evenly` — canonical in this module, re-exported through
``repro.runtime`` and, for the serving layer, ``repro.serve.batching``):

* :class:`WorkerPool` shards **featurisation** — HLS lowering,
  scheduling/binding, activity simulation, graph construction, labelling;
  the dominant cost of serving an uncached design, and embarrassingly
  parallel because every design point is a pure function of ``(dataset
  config, kernel, directives)``.  Results concatenate in shard order, so
  pooled output is **bitwise-identical** to the serial path's — same floats,
  same graphs, same content addresses.
* :class:`ForwardPool` shards the **packed mega-graph forward itself** across
  ensemble members: each worker computes a contiguous member slice of the
  ``(num_members, num_graphs)`` prediction stack on read-only
  **shared-memory parameter blocks** (:mod:`repro.runtime.shm`), and the
  parent concatenates shard stacks in member order before averaging — so
  pooled predictions are bitwise-identical to
  :meth:`repro.flow.powergear.PowerGear.predict_batch`.

Worker warm-up happens **once per process, never per task**:

* featurisation workers build one
  :class:`~repro.flow.dataset_gen.DatasetGenerator` from the service's
  :class:`~repro.flow.dataset_gen.DatasetConfig` in the pool initializer and
  keep it alive across tasks, so per-kernel serving state (stimuli, baseline
  report, lowering / activity caches) warms once per process;
* forward workers attach the shared parameter segment and rebuild every
  member model around zero-copy read-only views in their initializer, so a
  task carries only the packed graph and a member slice — **no per-task
  weight pickling**, one physical copy of the ensemble machine-wide.

Both pools run their workers on :class:`concurrent.futures.ProcessPoolExecutor`
rather than ``multiprocessing.Pool``: a worker that dies abruptly (SIGKILLed
by the OOM killer, segfaulted) surfaces as a typed :class:`WorkerCrashError`
on the in-flight batch instead of hanging ``map`` forever, which is what lets
the supervision layer (:mod:`repro.runtime.supervisor`) detect crashes and
restart the pool within a bounded budget.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.flow.dataset_gen import (
    DatasetConfig,
    FeaturisationTask,
    featurisation_worker_init,
    run_featurisation_task,
    run_featurisation_task_with_meta,
)
from repro.graph.dataset import GraphSample
from repro.graph.hetero_graph import HeteroGraph
from repro.hls.pragmas import DesignDirectives
from repro.runtime.shm import (
    ParameterBlockSpec,
    SharedParameterBlock,
    attach_parameter_block,
)


class WorkerCrashError(RuntimeError):
    """A pool worker process died abruptly (SIGKILL, segfault) mid-lifetime.

    Raised by the pools when the underlying executor reports
    :class:`~concurrent.futures.process.BrokenProcessPool`: the batch that was
    in flight is lost, the executor is permanently broken, and the pool object
    must be replaced.  This is the one failure the supervision layer treats as
    restartable — task-level exceptions (bad kernels, malformed directives)
    propagate unchanged and never consume restart budget.
    """


def shard_evenly(count: int, shards: int) -> list[slice]:
    """Split ``range(count)`` into at most ``shards`` contiguous, balanced slices.

    Shard sizes differ by at most one and earlier shards get the remainder, so
    the decomposition is a pure function of ``(count, shards)``: the worker
    pool relies on this to merge pooled results back into the exact order the
    serial path would have produced.  Empty shards are never returned; fewer
    than ``shards`` slices come back when ``count < shards``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, count)
    slices: list[slice] = []
    start = 0
    for index in range(shards):
        size = count // shards + (1 if index < count % shards else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def default_start_method() -> str:
    """``fork`` where the platform offers it, ``spawn`` otherwise."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class PoolStats:
    """Bookkeeping of one pool's lifetime."""

    batches: int = 0
    designs: int = 0
    shards: int = 0

    def as_dict(self) -> dict:
        return {"batches": self.batches, "designs": self.designs, "shards": self.shards}


class HeartbeatBook:
    """Thread-safe ``pid -> last-seen wall clock`` map of one pool's workers.

    Heartbeats are *passive* by default — every traced shard result carries
    its worker's pid, and the pool stamps the book when it unpacks them — with
    an active :meth:`WorkerPool.probe` for operators who want liveness proof
    on an idle pool.  The book lives per pool instance (not per supervisor),
    so a restarted pool starts clean instead of advertising dead pids.
    """

    __slots__ = ("_lock", "_seen")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seen: dict[int, float] = {}

    def record(self, pids, now: float | None = None) -> None:
        stamp = time.time() if now is None else now
        with self._lock:
            for pid in pids:
                self._seen[int(pid)] = stamp

    def snapshot(self) -> dict[int, float]:
        with self._lock:
            return dict(self._seen)


def _heartbeat_probe(_: int) -> int:
    """No-op pool task whose only output is the executing worker's pid.

    The tiny sleep makes concurrent probe tasks overlap, spreading them
    across idle workers — a best-effort census, not a guarantee that every
    worker answered.
    """
    time.sleep(0.002)
    return os.getpid()


@dataclass
class WorkerPool:
    """Shards featurisation batches across worker processes."""

    config: DatasetConfig
    num_workers: int = 2
    start_method: str | None = None
    min_designs_per_worker: int = 2
    stats: PoolStats = field(default_factory=PoolStats)
    #: Optional :class:`repro.obs.trace.Tracer`; when set, shards run the
    #: meta-carrying task variant so worker spans (with pids) graft into the
    #: live trace and the heartbeat book stays current.
    tracer: object | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        if self.min_designs_per_worker < 1:
            raise ValueError("min_designs_per_worker must be >= 1")
        self._pool = None
        self._closed = False
        self._lock = threading.Lock()
        self.heartbeat_book = HeartbeatBook()

    # ------------------------------------------------------------------ public

    def should_parallelise(self, num_designs: int) -> bool:
        """Whether a batch is big enough to amortise the IPC of sharding."""
        return num_designs >= self.num_workers * self.min_designs_per_worker

    def featurise(
        self, kernel: str, directives_list: list[DesignDirectives]
    ) -> list[GraphSample]:
        """Featurise one kernel's design list across the pool, in order.

        The merge is deterministic: shard ``i`` covers a contiguous slice of
        ``directives_list`` and results are concatenated in shard order, so
        the returned list is element-for-element the one the serial path
        produces.

        Raises :class:`WorkerCrashError` when a worker process died mid-batch
        (the executor is then permanently broken and the pool must be
        replaced — the supervisor's job, not this class's).
        """
        if not directives_list:
            return []
        pool = self._ensure_pool()
        shards = shard_evenly(len(directives_list), self.num_workers)
        tasks = [
            FeaturisationTask(kernel=kernel, directives=tuple(directives_list[part]))
            for part in shards
        ]
        traced = self.tracer is not None
        worker_fn = run_featurisation_task_with_meta if traced else run_featurisation_task
        try:
            shard_results = list(pool.map(worker_fn, tasks))
        except BrokenProcessPool as fault:
            raise WorkerCrashError(
                "a featurisation worker died mid-batch; the pool is broken"
            ) from fault
        if traced:
            payloads = [payload for _, payload in shard_results]
            shard_results = [samples for samples, _ in shard_results]
            self.heartbeat_book.record(p["pid"] for p in payloads)
            self.tracer.attach_payloads(payloads)
        # Counted on success only: a crashed batch the supervisor retries on
        # a fresh pool (same injected stats object) must not double-count —
        # retries are visible in the supervisor's own retried_batches.
        with self._lock:
            self.stats.batches += 1
            self.stats.designs += len(directives_list)
            self.stats.shards += len(tasks)
        merged: list[GraphSample] = []
        for shard_samples in shard_results:
            merged.extend(shard_samples)
        return merged

    def heartbeats(self) -> dict[int, float]:
        """``pid -> last-seen wall clock`` of the workers (passive + probed)."""
        return self.heartbeat_book.snapshot()

    def probe(self) -> dict[int, float]:
        """Actively ping the pool; stamps and returns the heartbeat book.

        Best-effort census: probe tasks overlap via a short sleep so idle
        workers each pick one up, but the executor does not guarantee every
        worker answers.  Raises :class:`WorkerCrashError` on a broken pool.
        """
        pool = self._ensure_pool()
        try:
            pids = set(pool.map(_heartbeat_probe, range(self.num_workers * 2)))
        except BrokenProcessPool as fault:
            raise WorkerCrashError(
                "a featurisation worker died during a heartbeat probe"
            ) from fault
        self.heartbeat_book.record(pids)
        return self.heartbeat_book.snapshot()

    def close(self) -> None:
        """Drain in-flight work, stop the workers, refuse further batches.

        Idempotent.  Uses graceful shutdown (``shutdown(wait=True)`` without
        cancelling futures) so a concurrent ``featurise`` finishes instead of
        dying mid-task.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _ensure_pool(self):
        # Locked check-then-act: concurrent cold featurise calls must share
        # one process pool, not each spawn their own (the loser's worker
        # processes would never be terminated).
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot featurise through a closed WorkerPool")
            if self._pool is None:
                context = multiprocessing.get_context(
                    self.start_method or default_start_method()
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    mp_context=context,
                    initializer=featurisation_worker_init,
                    initargs=(self.config,),
                )
            return self._pool


# ------------------------------------------------------------ pooled forward

#: Per-process state of one forward worker: the member models (weights are
#: zero-copy views into the shared segment) and the segment handle keeping
#: those views alive.  Built once by :func:`forward_worker_init`.
_FORWARD_MODELS: list | None = None
_FORWARD_SHM = None


@dataclass(frozen=True)
class ForwardTask:
    """One shard of pooled prediction: a packed graph × a member slice.

    The graph is already scaled, ablation-transformed and packed by the
    parent (so every shard of one chunk sees byte-identical inputs); the
    member slice is contiguous, matching :func:`shard_evenly`.  Deliberately
    weight-free: parameters live in the shared segment, not in task pickles.
    """

    chunk_id: int
    member_start: int
    member_stop: int
    graph: HeteroGraph


def forward_worker_init(
    spec: ParameterBlockSpec,
    model_type: type,
    member_configs: tuple,
    dims: tuple[int, int, int],
    backend: str,
) -> None:
    """Process-pool initializer: attach the segment, rebuild the members.

    Each member model is constructed from its config (cheap — the freshly
    initialised weights are immediately replaced) and its parameters rebound
    to read-only views of the shared block, positionally: identical
    construction code yields identical ``parameters()`` traversal order.
    """
    global _FORWARD_MODELS, _FORWARD_SHM
    from repro.backend import set_default_backend

    set_default_backend(backend)
    shm, views = attach_parameter_block(spec)
    node_dim, edge_dim, meta_dim = dims
    models = []
    for config, member_views in zip(member_configs, views):
        model = model_type(node_dim, edge_dim, meta_dim, config)
        parameters = model.parameters()
        if len(parameters) != len(member_views):
            raise RuntimeError(
                "shared parameter block disagrees with the rebuilt model "
                f"({len(member_views)} blocks vs {len(parameters)} parameters)"
            )
        for parameter, view in zip(parameters, member_views):
            if parameter.data.shape != view.shape:
                raise RuntimeError("shared parameter shape mismatch")
            parameter.data = view
        models.append(model)
    _FORWARD_MODELS = models
    _FORWARD_SHM = shm


def run_forward_task(task: ForwardTask) -> np.ndarray:
    """Execute one shard: the member slice's stacked predictions, in order.

    The forward is deterministic numpy (whatever backend the worker pinned,
    the kernels are bitwise-identical by contract), so the returned
    ``(shard_members, num_graphs)`` block equals the same rows of the serial
    member stack bit for bit.
    """
    if _FORWARD_MODELS is None:
        raise RuntimeError(
            "forward worker is not initialised "
            "(pool must be created with forward_worker_init)"
        )
    from repro.gnn.base import GraphBatch
    from repro.gnn.ensemble import stack_member_predictions

    # The exact shard unit the serial path runs (EnsembleRegressor
    # .predict_members); sharing it is what makes the pooled merge
    # bitwise-identical by construction.
    return stack_member_predictions(
        _FORWARD_MODELS[task.member_start : task.member_stop],
        GraphBatch.from_graph(task.graph),
    )


def run_forward_task_with_meta(task: ForwardTask):
    """Like :func:`run_forward_task`, plus a span payload for tracing.

    Returns ``(stack, payload)`` where the payload is the picklable span dict
    of :func:`repro.obs.trace.span_payload` — the parent grafts it into the
    live trace (worker pid and all) and stamps the heartbeat book from it.
    The stack itself is byte-identical to the untraced variant's.
    """
    from repro.obs.trace import span_payload

    wall_start = time.time()
    clock_start = time.perf_counter()
    stack = run_forward_task(task)
    return stack, span_payload(
        "forward.shard",
        wall_start,
        time.perf_counter() - clock_start,
        chunk=task.chunk_id,
        members=task.member_stop - task.member_start,
    )


@dataclass
class ForwardPoolStats:
    """Bookkeeping of one forward pool's lifetime."""

    batches: int = 0
    designs: int = 0
    shards: int = 0
    member_forwards: int = 0
    shared_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "designs": self.designs,
            "shards": self.shards,
            "member_forwards": self.member_forwards,
            "shared_bytes": self.shared_bytes,
        }


class ForwardPool:
    """Shards a fitted ensemble's packed forward across worker processes.

    Bound to one fitted :class:`~repro.flow.powergear.PowerGear` (the shared
    segment is a snapshot of its weights at construction).  The parent
    prepares each chunk exactly as the serial
    :meth:`~repro.flow.powergear.PowerGear.predict_batch` would — scaler,
    ablation transforms, block-diagonal pack — then fans the member axis out
    with :func:`shard_evenly` and concatenates shard stacks in member order,
    so pooled predictions are bitwise-identical to serial ones.

    IPC cost model: weights never travel (shared segment), but each chunk's
    packed graph is pickled once per member shard — ``num_workers`` copies
    per chunk.  That is why the pool only pays off when the member forwards
    dominate (``forward_min_members``); publishing the packed batch itself
    through shared memory is the next step if graph payloads ever dominate.
    """

    def __init__(
        self,
        model,
        num_workers: int = 2,
        start_method: str | None = None,
        backend: str = "numpy",
        stats: ForwardPoolStats | None = None,
        tracer: object | None = None,
    ) -> None:
        if num_workers < 2:
            raise ValueError("a forward pool needs at least 2 workers")
        if model.ensemble is None or not model.ensemble.members:
            raise ValueError("the forward pool requires a fitted ensemble model")
        self.model = model
        self.num_workers = num_workers
        self.start_method = start_method
        self.backend = backend
        # An injected stats object survives pool rebuilds: the supervisor
        # passes one so lifetime counters aggregate across restarts/resizes.
        self.stats = stats if stats is not None else ForwardPoolStats()
        self.tracer = tracer
        self.heartbeat_book = HeartbeatBook()
        self._pool = None
        self._block: SharedParameterBlock | None = None
        self._closed = False
        self._lock = threading.Lock()

    @property
    def num_members(self) -> int:
        return len(self.model.ensemble.members)

    # ------------------------------------------------------------------ public

    def predict_batch(self, samples: list, batch_size: int | None = None) -> np.ndarray:
        """Pooled equivalent of ``PowerGear.predict_batch`` (bitwise-identical).

        Preprocessing is shared code, not a re-implementation: the scaler runs
        through ``PowerGear.prepare_samples``, chunk boundaries and graph
        preparation come from ``EnsembleRegressor.iter_prepared_chunks`` and
        the final clamp is ``PowerGear.clamp_predictions`` — only the member
        axis fan-out/merge is pool-specific.
        """
        if not samples:
            return np.zeros(0)
        pool = self._ensure_pool()
        prepared = self.model.prepare_samples(samples)
        graphs = [sample.graph for sample in prepared]
        shards = shard_evenly(self.num_members, self.num_workers)

        chunks: list[tuple[int, int]] = []
        tasks: list[ForwardTask] = []
        for chunk_id, (start, length, packed) in enumerate(
            self.model.ensemble.iter_prepared_chunks(graphs, batch_size)
        ):
            chunks.append((start, length))
            tasks.extend(
                ForwardTask(
                    chunk_id=chunk_id,
                    member_start=part.start,
                    member_stop=part.stop,
                    graph=packed,
                )
                for part in shards
            )
        traced = self.tracer is not None
        worker_fn = run_forward_task_with_meta if traced else run_forward_task
        try:
            shard_stacks = list(pool.map(worker_fn, tasks))
        except BrokenProcessPool as fault:
            raise WorkerCrashError(
                "a forward worker died mid-batch; the pool is broken"
            ) from fault
        if traced:
            payloads = [payload for _, payload in shard_stacks]
            shard_stacks = [stack for stack, _ in shard_stacks]
            self.heartbeat_book.record(p["pid"] for p in payloads)
            self.tracer.attach_payloads(payloads)
        # Counted on success only (see WorkerPool.featurise): supervised
        # retries must not double-count the lifetime throughput counters.
        with self._lock:
            self.stats.batches += 1
            self.stats.designs += len(graphs)
            self.stats.shards += len(tasks)
            self.stats.member_forwards += len(chunks) * self.num_members
        outputs = np.zeros(len(graphs))
        for chunk_id, (start, length) in enumerate(chunks):
            stack = np.concatenate(
                shard_stacks[chunk_id * len(shards) : (chunk_id + 1) * len(shards)]
            )
            outputs[start : start + length] = stack.mean(axis=0)
        return type(self.model).clamp_predictions(outputs)

    def heartbeats(self) -> dict[int, float]:
        """``pid -> last-seen wall clock`` of the workers (passive + probed)."""
        return self.heartbeat_book.snapshot()

    def probe(self) -> dict[int, float]:
        """Actively ping the pool; stamps and returns the heartbeat book."""
        pool = self._ensure_pool()
        try:
            pids = set(pool.map(_heartbeat_probe, range(self.num_workers * 2)))
        except BrokenProcessPool as fault:
            raise WorkerCrashError(
                "a forward worker died during a heartbeat probe"
            ) from fault
        self.heartbeat_book.record(pids)
        return self.heartbeat_book.snapshot()

    def close(self) -> None:
        """Drain in-flight work, stop the workers, release the shared segment."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            block, self._block = self._block, None
        if pool is not None:
            pool.shutdown(wait=True)
        if block is not None:
            block.unlink()

    def __enter__(self) -> "ForwardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _ensure_pool(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot predict through a closed ForwardPool")
            if self._pool is None:
                members = self.model.ensemble.members
                reference = members[0].model
                dims = (
                    reference.node_feature_dim,
                    reference.edge_feature_dim,
                    reference.metadata_dim,
                )
                configs = tuple(member.model.config for member in members)
                # Validate the rebuild contract HERE, in the parent: an
                # exception inside an executor initializer only surfaces
                # later as an opaque BrokenProcessPool — which the supervisor
                # would misread as a worker crash and burn restart budget on.
                # Rebuilding one member up front turns any construction/
                # traversal-order divergence into an immediate RuntimeError
                # the service's serial fallback catches.
                rebuilt = type(reference)(*dims, configs[0])
                expected = [p.data.shape for p in members[0].model.parameters()]
                actual = [p.data.shape for p in rebuilt.parameters()]
                if expected != actual:
                    raise RuntimeError(
                        "member models do not rebuild with identical parameter "
                        f"shapes ({actual} vs {expected}); cannot share weights"
                    )
                block = SharedParameterBlock.create(
                    [
                        [parameter.data for parameter in member.model.parameters()]
                        for member in members
                    ]
                )
                context = multiprocessing.get_context(
                    self.start_method or default_start_method()
                )
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.num_workers,
                        mp_context=context,
                        initializer=forward_worker_init,
                        initargs=(block.spec, type(reference), configs, dims, self.backend),
                    )
                except Exception:
                    # Pool construction failed (spawn pickling, fd/process
                    # limits): release the segment instead of leaking an
                    # ensemble-sized /dev/shm allocation per retried request.
                    block.unlink()
                    raise
                self._block = block
                self.stats.shared_bytes = block.nbytes
            return self._pool
