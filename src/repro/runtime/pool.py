"""Multi-process worker pools with deterministic merges.

Two pools live here, both built on the same contiguous-shard decomposition
(:func:`shard_evenly` — canonical in this module, re-exported through
``repro.runtime`` and, for the serving layer, ``repro.serve.batching``):

* :class:`WorkerPool` shards **featurisation** — HLS lowering,
  scheduling/binding, activity simulation, graph construction, labelling;
  the dominant cost of serving an uncached design, and embarrassingly
  parallel because every design point is a pure function of ``(dataset
  config, kernel, directives)``.  Results concatenate in shard order, so
  pooled output is **bitwise-identical** to the serial path's — same floats,
  same graphs, same content addresses.
* :class:`ForwardPool` shards the **packed mega-graph forward itself** along
  one of two axes: across ensemble **members** (each worker computes a
  contiguous member slice of the ``(num_members, num_graphs)`` prediction
  stack) or across the pack's **graphs** (each worker forwards all members
  over a contiguous union of the batch's deterministic *forward segments* —
  the lever for large batches on shallow or single-model flows).  Weights
  live in read-only **shared-memory parameter blocks** and each chunk's
  packed arrays in a **shared array bundle** (:mod:`repro.runtime.shm`), so
  tasks carry only slice bounds; the parent concatenates shard stacks along
  the sharded axis before averaging — so pooled predictions are
  bitwise-identical to :meth:`repro.flow.powergear.PowerGear.predict_batch`
  (the serial forward is itself segmented, so both sides run identical
  per-segment GEMM shapes — see
  :func:`repro.gnn.base.segment_boundaries`).

Worker warm-up happens **once per process, never per task**:

* featurisation workers build one
  :class:`~repro.flow.dataset_gen.DatasetGenerator` from the service's
  :class:`~repro.flow.dataset_gen.DatasetConfig` in the pool initializer and
  keep it alive across tasks, so per-kernel serving state (stimuli, baseline
  report, lowering / activity caches) warms once per process;
* forward workers attach the shared parameter segment and rebuild every
  member model around zero-copy read-only views in their initializer, and
  attach each chunk's array bundle once on first use — a task carries only
  a segment spec and slice bounds, **no per-task weight or batch pickling**,
  one physical copy of the ensemble and of each packed batch machine-wide.

Both pools run their workers on :class:`concurrent.futures.ProcessPoolExecutor`
rather than ``multiprocessing.Pool``: a worker that dies abruptly (SIGKILLed
by the OOM killer, segfaulted) surfaces as a typed :class:`WorkerCrashError`
on the in-flight batch instead of hanging ``map`` forever, which is what lets
the supervision layer (:mod:`repro.runtime.supervisor`) detect crashes and
restart the pool within a bounded budget.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.flow.dataset_gen import (
    DatasetConfig,
    FeaturisationTask,
    featurisation_worker_init,
    run_featurisation_task,
    run_featurisation_task_with_meta,
)
from repro.gnn.base import forward_segment_nodes, segment_boundaries
from repro.graph.dataset import GraphSample
from repro.graph.hetero_graph import HeteroGraph
from repro.hls.pragmas import DesignDirectives
from repro.runtime.shm import (
    ArrayBundleSpec,
    ParameterBlockSpec,
    SharedArrayBundle,
    SharedParameterBlock,
    attach_array_bundle,
    attach_parameter_block,
)


class WorkerCrashError(RuntimeError):
    """A pool worker process died abruptly (SIGKILL, segfault) mid-lifetime.

    Raised by the pools when the underlying executor reports
    :class:`~concurrent.futures.process.BrokenProcessPool`: the batch that was
    in flight is lost, the executor is permanently broken, and the pool object
    must be replaced.  This is the one failure the supervision layer treats as
    restartable — task-level exceptions (bad kernels, malformed directives)
    propagate unchanged and never consume restart budget.
    """


def shard_evenly(count: int, shards: int) -> list[slice]:
    """Split ``range(count)`` into at most ``shards`` contiguous, balanced slices.

    Shard sizes differ by at most one and earlier shards get the remainder, so
    the decomposition is a pure function of ``(count, shards)``: the worker
    pool relies on this to merge pooled results back into the exact order the
    serial path would have produced.  Empty shards are never returned; fewer
    than ``shards`` slices come back when ``count < shards``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, count)
    slices: list[slice] = []
    start = 0
    for index in range(shards):
        size = count // shards + (1 if index < count % shards else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def default_start_method() -> str:
    """``fork`` where the platform offers it, ``spawn`` otherwise."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class PoolStats:
    """Bookkeeping of one pool's lifetime."""

    batches: int = 0
    designs: int = 0
    shards: int = 0

    def as_dict(self) -> dict:
        return {"batches": self.batches, "designs": self.designs, "shards": self.shards}


class HeartbeatBook:
    """Thread-safe ``pid -> last-seen wall clock`` map of one pool's workers.

    Heartbeats are *passive* by default — every traced shard result carries
    its worker's pid, and the pool stamps the book when it unpacks them — with
    an active :meth:`WorkerPool.probe` for operators who want liveness proof
    on an idle pool.  The book lives per pool instance (not per supervisor),
    so a restarted pool starts clean instead of advertising dead pids.
    """

    __slots__ = ("_lock", "_seen")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seen: dict[int, float] = {}

    def record(self, pids, now: float | None = None) -> None:
        stamp = time.time() if now is None else now
        with self._lock:
            for pid in pids:
                self._seen[int(pid)] = stamp

    def snapshot(self) -> dict[int, float]:
        with self._lock:
            return dict(self._seen)


def _heartbeat_probe(_: int) -> int:
    """No-op pool task whose only output is the executing worker's pid.

    The tiny sleep makes concurrent probe tasks overlap, spreading them
    across idle workers — a best-effort census, not a guarantee that every
    worker answered.
    """
    time.sleep(0.002)
    return os.getpid()


@dataclass
class WorkerPool:
    """Shards featurisation batches across worker processes."""

    config: DatasetConfig
    num_workers: int = 2
    start_method: str | None = None
    min_designs_per_worker: int = 2
    stats: PoolStats = field(default_factory=PoolStats)
    #: Optional :class:`repro.obs.trace.Tracer`; when set, shards run the
    #: meta-carrying task variant so worker spans (with pids) graft into the
    #: live trace and the heartbeat book stays current.
    tracer: object | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        if self.min_designs_per_worker < 1:
            raise ValueError("min_designs_per_worker must be >= 1")
        self._pool = None
        self._closed = False
        self._lock = threading.Lock()
        self.heartbeat_book = HeartbeatBook()

    # ------------------------------------------------------------------ public

    def should_parallelise(self, num_designs: int) -> bool:
        """Whether a batch is big enough to amortise the IPC of sharding."""
        return num_designs >= self.num_workers * self.min_designs_per_worker

    def featurise(
        self, kernel: str, directives_list: list[DesignDirectives]
    ) -> list[GraphSample]:
        """Featurise one kernel's design list across the pool, in order.

        The merge is deterministic: shard ``i`` covers a contiguous slice of
        ``directives_list`` and results are concatenated in shard order, so
        the returned list is element-for-element the one the serial path
        produces.

        Raises :class:`WorkerCrashError` when a worker process died mid-batch
        (the executor is then permanently broken and the pool must be
        replaced — the supervisor's job, not this class's).
        """
        if not directives_list:
            return []
        pool = self._ensure_pool()
        shards = shard_evenly(len(directives_list), self.num_workers)
        tasks = [
            FeaturisationTask(kernel=kernel, directives=tuple(directives_list[part]))
            for part in shards
        ]
        traced = self.tracer is not None
        worker_fn = run_featurisation_task_with_meta if traced else run_featurisation_task
        try:
            shard_results = list(pool.map(worker_fn, tasks))
        except BrokenProcessPool as fault:
            raise WorkerCrashError(
                "a featurisation worker died mid-batch; the pool is broken"
            ) from fault
        if traced:
            payloads = [payload for _, payload in shard_results]
            shard_results = [samples for samples, _ in shard_results]
            self.heartbeat_book.record(p["pid"] for p in payloads)
            self.tracer.attach_payloads(payloads)
        # Counted on success only: a crashed batch the supervisor retries on
        # a fresh pool (same injected stats object) must not double-count —
        # retries are visible in the supervisor's own retried_batches.
        with self._lock:
            self.stats.batches += 1
            self.stats.designs += len(directives_list)
            self.stats.shards += len(tasks)
        merged: list[GraphSample] = []
        for shard_samples in shard_results:
            merged.extend(shard_samples)
        return merged

    def heartbeats(self) -> dict[int, float]:
        """``pid -> last-seen wall clock`` of the workers (passive + probed)."""
        return self.heartbeat_book.snapshot()

    def probe(self) -> dict[int, float]:
        """Actively ping the pool; stamps and returns the heartbeat book.

        Best-effort census: probe tasks overlap via a short sleep so idle
        workers each pick one up, but the executor does not guarantee every
        worker answers.  Raises :class:`WorkerCrashError` on a broken pool.
        """
        pool = self._ensure_pool()
        try:
            pids = set(pool.map(_heartbeat_probe, range(self.num_workers * 2)))
        except BrokenProcessPool as fault:
            raise WorkerCrashError(
                "a featurisation worker died during a heartbeat probe"
            ) from fault
        self.heartbeat_book.record(pids)
        return self.heartbeat_book.snapshot()

    def close(self) -> None:
        """Drain in-flight work, stop the workers, refuse further batches.

        Idempotent.  Uses graceful shutdown (``shutdown(wait=True)`` without
        cancelling futures) so a concurrent ``featurise`` finishes instead of
        dying mid-task.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _ensure_pool(self):
        # Locked check-then-act: concurrent cold featurise calls must share
        # one process pool, not each spawn their own (the loser's worker
        # processes would never be terminated).
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot featurise through a closed WorkerPool")
            if self._pool is None:
                context = multiprocessing.get_context(
                    self.start_method or default_start_method()
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    mp_context=context,
                    initializer=featurisation_worker_init,
                    initargs=(self.config,),
                )
            return self._pool


# ------------------------------------------------------------ pooled forward

#: Per-process state of one forward worker: the member models (weights are
#: zero-copy views into the shared segment) and the segment handle keeping
#: those views alive.  Built once by :func:`forward_worker_init`.
_FORWARD_MODELS: list | None = None
_FORWARD_SHM = None
#: The worker's current batch-bundle attachment, ``(shm_name, handle,
#: views)``: one packed chunk's arrays stay mapped across every shard task
#: that references them, and re-map only when a task names a new segment.
_FORWARD_BUNDLE: tuple | None = None
#: The :class:`~repro.gnn.base.GraphBatch` built from the current bundle and
#: slice bounds, ``(key, batch)``: member shards of one chunk reuse the same
#: relation bookkeeping instead of re-deriving it per task.
_FORWARD_BATCH: tuple | None = None


@dataclass(frozen=True)
class ForwardTask:
    """One shard of pooled prediction: slice bounds into a shared batch.

    The packed chunk is already scaled, ablation-transformed and packed by
    the parent, and its arrays live in a :class:`SharedArrayBundle` segment —
    the task itself carries only the tiny picklable spec plus contiguous
    slice bounds along both shard axes (a member range and a graph range;
    graph ranges always start and end on the batch's deterministic forward
    segment boundaries).  Deliberately payload-free: neither weights nor the
    packed batch are ever pickled per task.
    """

    chunk_id: int
    bundle: ArrayBundleSpec
    member_start: int
    member_stop: int
    graph_start: int
    graph_stop: int


def forward_worker_init(
    spec: ParameterBlockSpec,
    model_type: type,
    member_configs: tuple,
    dims: tuple[int, int, int],
    backend: str,
) -> None:
    """Process-pool initializer: attach the segment, rebuild the members.

    Each member model is constructed from its config (cheap — the freshly
    initialised weights are immediately replaced) and its parameters rebound
    to read-only views of the shared block, positionally: identical
    construction code yields identical ``parameters()`` traversal order.
    """
    global _FORWARD_MODELS, _FORWARD_SHM
    import atexit

    from repro.backend import set_default_backend

    # Drop the batch views before the interpreter tears the mmap down:
    # SharedMemory.__del__ raises (and noisily ignores) BufferError when
    # numpy views still reference the buffer at shutdown.
    atexit.register(_release_forward_bundle)
    set_default_backend(backend)
    shm, views = attach_parameter_block(spec)
    node_dim, edge_dim, meta_dim = dims
    models = []
    for config, member_views in zip(member_configs, views):
        model = model_type(node_dim, edge_dim, meta_dim, config)
        parameters = model.parameters()
        if len(parameters) != len(member_views):
            raise RuntimeError(
                "shared parameter block disagrees with the rebuilt model "
                f"({len(member_views)} blocks vs {len(parameters)} parameters)"
            )
        for parameter, view in zip(parameters, member_views):
            if parameter.data.shape != view.shape:
                raise RuntimeError("shared parameter shape mismatch")
            parameter.data = view
        models.append(model)
    _FORWARD_MODELS = models
    _FORWARD_SHM = shm


def _release_forward_bundle() -> None:
    """Worker-exit hook: drop batch views, then close the bundle mapping."""
    global _FORWARD_BUNDLE, _FORWARD_BATCH
    _FORWARD_BATCH = None
    bundle, _FORWARD_BUNDLE = _FORWARD_BUNDLE, None
    if bundle is not None:
        _, shm, views = bundle
        views.clear()
        del bundle, views
        try:
            shm.close()
        except BufferError:  # pragma: no cover - an external view survived
            pass


def _attached_bundle_views(spec: ArrayBundleSpec) -> dict[str, np.ndarray]:
    """The worker's views of the task's bundle, attaching on segment change.

    A worker holds exactly one bundle attachment at a time: shard tasks of
    one chunk all name the same segment (cache hit), and the first task of
    the next chunk rolls the attachment over.  Closing the previous handle is
    best-effort — live views exported to a still-referenced batch raise
    ``BufferError``, which leaves a bounded leak until process exit rather
    than a crash.
    """
    global _FORWARD_BUNDLE, _FORWARD_BATCH
    if _FORWARD_BUNDLE is not None and _FORWARD_BUNDLE[0] == spec.shm_name:
        return _FORWARD_BUNDLE[2]
    _FORWARD_BATCH = None
    if _FORWARD_BUNDLE is not None:
        previous, _FORWARD_BUNDLE = _FORWARD_BUNDLE, None
        _, previous_shm, previous_views = previous
        previous_views.clear()
        del previous, previous_views
        try:
            previous_shm.close()
        except BufferError:  # pragma: no cover - views outlive the rollover
            pass
    shm, views = attach_array_bundle(spec)
    _FORWARD_BUNDLE = (spec.shm_name, shm, views)
    return views


def _task_batch(task: ForwardTask):
    """Build (or reuse) the :class:`GraphBatch` for one task's slice bounds.

    The chunk's arrays are wrapped into a zero-copy :class:`GraphBatch` over
    the shared views, and the task's graph range is cut out of it with
    :meth:`~repro.gnn.base.GraphBatch.slice_graphs` — the *same* slicing
    code the serial segmented forward runs, which is what makes the worker's
    per-segment computations byte-identical to the serial path's.  Graph
    ranges are unions of whole forward segments, so re-segmenting the slice
    inside ``predict_prepared`` reproduces exactly the interior boundaries
    the serial forward uses (the segment rule is Markovian).
    """
    global _FORWARD_BATCH
    key = (task.bundle.shm_name, task.graph_start, task.graph_stop)
    if _FORWARD_BATCH is not None and _FORWARD_BATCH[0] == key:
        return _FORWARD_BATCH[1]
    from repro.gnn.base import GraphBatch
    from repro.nn.tensor import Tensor

    views = _attached_bundle_views(task.bundle)
    num_graphs = int(views["metadata"].shape[0])
    full = GraphBatch(
        node_features=Tensor(views["node_features"]),
        edge_features=Tensor(views["edge_features"]),
        edge_index=views["edge_index"],
        edge_types=views["edge_types"],
        batch=views["batch"],
        metadata=Tensor(views["metadata"]),
        num_nodes=int(views["node_features"].shape[0]),
        num_graphs=num_graphs,
    )
    batch = full.slice_graphs(task.graph_start, task.graph_stop)
    _FORWARD_BATCH = (key, batch)
    return batch


def run_forward_task(task: ForwardTask) -> np.ndarray:
    """Execute one shard: the member slice's stacked predictions, in order.

    The forward is deterministic numpy (whatever backend the worker pinned,
    the kernels are bitwise-identical by contract), so the returned
    ``(shard_members, shard_graphs)`` block equals the same rows and columns
    of the serial member stack bit for bit — whichever axis was sharded.
    """
    if _FORWARD_MODELS is None:
        raise RuntimeError(
            "forward worker is not initialised "
            "(pool must be created with forward_worker_init)"
        )
    from repro.gnn.ensemble import stack_member_predictions

    # The exact shard unit the serial path runs (EnsembleRegressor
    # .predict_members); sharing it is what makes the pooled merge
    # bitwise-identical by construction.
    return stack_member_predictions(
        _FORWARD_MODELS[task.member_start : task.member_stop],
        _task_batch(task),
    )


def run_forward_task_with_meta(task: ForwardTask):
    """Like :func:`run_forward_task`, plus a span payload for tracing.

    Returns ``(stack, payload)`` where the payload is the picklable span dict
    of :func:`repro.obs.trace.span_payload` — the parent grafts it into the
    live trace (worker pid and all) and stamps the heartbeat book from it.
    The stack itself is byte-identical to the untraced variant's.
    """
    from repro.obs.trace import span_payload

    wall_start = time.time()
    clock_start = time.perf_counter()
    stack = run_forward_task(task)
    return stack, span_payload(
        "forward.shard",
        wall_start,
        time.perf_counter() - clock_start,
        chunk=task.chunk_id,
        members=task.member_stop - task.member_start,
        graphs=task.graph_stop - task.graph_start,
    )


@dataclass
class ForwardPoolStats:
    """Bookkeeping of one forward pool's lifetime."""

    batches: int = 0
    designs: int = 0
    shards: int = 0
    member_forwards: int = 0
    shared_bytes: int = 0
    #: Axis the most recent batch sharded over (``members`` / ``graphs``; a
    #: mixed multi-chunk batch reports the last chunk's choice).
    shard_axis: str = ""
    #: Bytes of packed-batch arrays published through shared memory for the
    #: most recent batch (a gauge, like ``shared_bytes`` for the weights).
    shared_batch_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "designs": self.designs,
            "shards": self.shards,
            "member_forwards": self.member_forwards,
            "shared_bytes": self.shared_bytes,
            "shard_axis": self.shard_axis,
            "shared_batch_bytes": self.shared_batch_bytes,
        }


class ForwardPool:
    """Shards a fitted model's packed forward across worker processes.

    Bound to one fitted :class:`~repro.flow.powergear.PowerGear` (the shared
    segment is a snapshot of its weights at construction).  The parent
    prepares each chunk exactly as the serial
    :meth:`~repro.flow.powergear.PowerGear.predict_batch` would — scaler,
    ablation transforms, block-diagonal pack — publishes the packed arrays
    through a per-chunk :class:`SharedArrayBundle`, then fans one axis out
    with :func:`shard_evenly`:

    * ``members`` — each worker forwards a contiguous member slice over the
      whole pack; shard stacks concatenate along axis 0 (member order).
    * ``graphs`` — each worker forwards *all* members over a contiguous
      union of the pack's deterministic forward segments; shard stacks
      concatenate along axis 1 (graph order).  This is what parallelises
      large batches on small ensembles — including single-model flows,
      which have no member axis at all.  Graph-axis parallelism is bounded
      by the pack's segment count (``REPRO_FORWARD_SEGMENT_NODES`` nodes
      per segment), because shard cuts anywhere else would change the BLAS
      GEMM shapes and break bitwise reproducibility.

    Either merge rebuilds the serial ``(members, graphs)`` stack bit for
    bit, so pooled predictions are bitwise-identical to serial ones: the
    serial inference forward runs the same per-segment computations in the
    same order (:meth:`repro.gnn.base.PowerGNN.predict_prepared`).

    IPC cost model: nothing heavy travels in task pickles — weights live in
    the parameter segment and each chunk's packed arrays in the chunk's
    bundle segment; a task is a spec plus slice bounds (a few hundred
    bytes).  ``shard_axis="auto"`` prefers the member axis when the ensemble
    is deep enough (``min_members``) and falls back to the graph axis for
    batches of at least ``min_graphs`` designs.
    """

    def __init__(
        self,
        model,
        num_workers: int = 2,
        start_method: str | None = None,
        backend: str = "numpy",
        stats: ForwardPoolStats | None = None,
        tracer: object | None = None,
        shard_axis: str = "auto",
        min_members: int = 8,
        min_graphs: int = 8,
    ) -> None:
        if num_workers < 2:
            raise ValueError("a forward pool needs at least 2 workers")
        if shard_axis not in ("auto", "members", "graphs"):
            raise ValueError("shard_axis must be auto, members or graphs")
        ensemble = getattr(model, "ensemble", None)
        if (ensemble is None or not ensemble.members) and getattr(
            model, "model", None
        ) is None:
            raise ValueError("the forward pool requires a fitted model")
        self.model = model
        self.num_workers = num_workers
        self.start_method = start_method
        self.backend = backend
        self.shard_axis = shard_axis
        self.min_members = min_members
        self.min_graphs = min_graphs
        # An injected stats object survives pool rebuilds: the supervisor
        # passes one so lifetime counters aggregate across restarts/resizes.
        self.stats = stats if stats is not None else ForwardPoolStats()
        self.tracer = tracer
        self.heartbeat_book = HeartbeatBook()
        self._pool = None
        self._block: SharedParameterBlock | None = None
        self._closed = False
        self._lock = threading.Lock()

    @property
    def num_members(self) -> int:
        ensemble = getattr(self.model, "ensemble", None)
        return len(ensemble.members) if ensemble is not None else 1

    def serves(self, model) -> bool:
        """Whether this pool's shared weights are ``model``'s weights.

        The pool is bound to exactly one fitted model — the shared
        parameter segment snapshots its weights — so under a deployment
        plan only design points resolved onto that model (the service's
        ambient default) may ride the pooled forward; any other artifact
        takes the serial path.  Identity, not fingerprint equality: a
        reloaded model object with equal weights is still a different
        binding and must not assume this pool's segment.
        """
        return model is self.model

    def _member_models(self) -> list:
        """The forward models in member order (a single-model flow has one)."""
        ensemble = getattr(self.model, "ensemble", None)
        if ensemble is not None:
            return [member.model for member in ensemble.members]
        return [self.model.model]

    def _model_fingerprint(self) -> str | None:
        """The bound model's content fingerprint, for segment provenance."""
        fingerprint = getattr(self.model, "fingerprint", None)
        if callable(fingerprint):
            try:
                return fingerprint()
            except Exception:  # noqa: BLE001 - provenance only, never fatal
                return None
        return None

    # ------------------------------------------------------------------ public

    def predict_batch(self, samples: list, batch_size: int | None = None) -> np.ndarray:
        """Pooled equivalent of ``PowerGear.predict_batch`` (bitwise-identical).

        Preprocessing is shared code, not a re-implementation: the scaler runs
        through ``PowerGear.prepare_samples``, chunk boundaries and graph
        preparation come from ``EnsembleRegressor.iter_prepared_chunks`` and
        the final clamp is ``PowerGear.clamp_predictions`` — only the member
        axis fan-out/merge is pool-specific.
        """
        if not samples:
            return np.zeros(0)
        pool = self._ensure_pool()
        prepared = self.model.prepare_samples(samples)
        graphs = [sample.graph for sample in prepared]

        chunks: list[tuple[int, int, str, int]] = []
        tasks: list[ForwardTask] = []
        bundles: list[SharedArrayBundle] = []
        try:
            for chunk_id, (start, length, packed) in enumerate(
                self._iter_chunks(graphs, batch_size)
            ):
                axis = self._choose_axis(packed.num_graphs)
                bundle, chunk_tasks = self._chunk_tasks(chunk_id, packed, axis)
                bundles.append(bundle)
                chunks.append((start, length, axis, len(chunk_tasks)))
                tasks.extend(chunk_tasks)
            traced = self.tracer is not None
            worker_fn = run_forward_task_with_meta if traced else run_forward_task
            try:
                shard_stacks = list(pool.map(worker_fn, tasks))
            except BrokenProcessPool as fault:
                raise WorkerCrashError(
                    "a forward worker died mid-batch; the pool is broken"
                ) from fault
        finally:
            # The owner unlinks every chunk bundle whether the batch
            # succeeded or died: attached workers keep their mappings valid
            # (unlink only removes the name), so nothing is yanked mid-task,
            # and /dev/shm never accretes batch-sized segments.
            for bundle in bundles:
                bundle.unlink()
        if traced:
            payloads = [payload for _, payload in shard_stacks]
            shard_stacks = [stack for stack, _ in shard_stacks]
            self.heartbeat_book.record(p["pid"] for p in payloads)
            self.tracer.attach_payloads(payloads)
        # Counted on success only (see WorkerPool.featurise): supervised
        # retries must not double-count the lifetime throughput counters.
        with self._lock:
            self.stats.batches += 1
            self.stats.designs += len(graphs)
            self.stats.shards += len(tasks)
            self.stats.member_forwards += sum(
                task.member_stop - task.member_start for task in tasks
            )
            if chunks:
                self.stats.shard_axis = chunks[-1][2]
            self.stats.shared_batch_bytes = sum(
                bundle.nbytes for bundle in bundles
            )
        outputs = np.zeros(len(graphs))
        cursor = 0
        for start, length, axis, num_shards in chunks:
            stacks = shard_stacks[cursor : cursor + num_shards]
            cursor += num_shards
            # Contiguous-shard merge: member shards stack along the member
            # axis, graph shards along the graph axis — either way the
            # result is the serial (members, graphs) stack, bit for bit.
            stack = np.concatenate(stacks, axis=0 if axis == "members" else 1)
            outputs[start : start + length] = stack.mean(axis=0)
        return type(self.model).clamp_predictions(outputs)

    # ------------------------------------------------------------- sharding

    def _iter_chunks(self, graphs: list, batch_size: int | None):
        """Chunk + pack + prepare, matching the serial path for this model.

        Ensemble flows delegate to
        :meth:`~repro.gnn.ensemble.EnsembleRegressor.iter_prepared_chunks`
        (the single source of truth for their chunk boundaries); single-model
        flows mirror the packing ``PowerGNN.predict`` performs.
        """
        ensemble = getattr(self.model, "ensemble", None)
        if ensemble is not None:
            yield from ensemble.iter_prepared_chunks(graphs, batch_size)
            return
        reference = self.model.model
        chunk_size = len(graphs) if batch_size is None else max(1, batch_size)
        for start in range(0, len(graphs), chunk_size):
            chunk = graphs[start : start + chunk_size]
            yield start, len(chunk), reference.prepare_graph(HeteroGraph.pack(chunk))

    def _choose_axis(self, num_graphs: int) -> str:
        """Shard axis for one packed chunk (explicit config wins over auto)."""
        if self.shard_axis != "auto":
            return self.shard_axis
        if self.num_members >= self.min_members:
            return "members"
        if num_graphs >= self.min_graphs:
            return "graphs"
        return "members" if self.num_members > 1 else "graphs"

    def _chunk_tasks(
        self, chunk_id: int, packed: HeteroGraph, axis: str
    ) -> tuple[SharedArrayBundle, list[ForwardTask]]:
        """Publish one packed chunk's arrays and cut its shard tasks."""
        metadata = np.asarray(packed.metadata, dtype=np.float64)
        if metadata.ndim == 1:
            metadata = metadata.reshape(1, -1)
        graph_ids = np.asarray(packed.batch, dtype=np.int64)
        edge_index = np.asarray(packed.edge_index, dtype=np.int64)
        bundle = SharedArrayBundle.create(
            {
                "node_features": np.asarray(packed.node_features, dtype=np.float64),
                "edge_features": np.asarray(packed.edge_features, dtype=np.float64),
                "edge_index": edge_index,
                "edge_types": np.asarray(packed.edge_types, dtype=np.int64),
                "batch": graph_ids,
                "metadata": metadata,
            }
        )
        num_graphs = int(packed.num_graphs)
        tasks: list[ForwardTask] = []
        if axis == "members":
            for part in shard_evenly(self.num_members, self.num_workers):
                tasks.append(
                    ForwardTask(
                        chunk_id=chunk_id,
                        bundle=bundle.spec,
                        member_start=part.start,
                        member_stop=part.stop,
                        graph_start=0,
                        graph_stop=num_graphs,
                    )
                )
            return bundle, tasks
        # Graph axis: shard boundaries must coincide with the batch's
        # deterministic forward-segment boundaries — the serial inference
        # forward runs segment by segment, so handing each worker a union
        # of *whole* segments makes it replay exactly the serial path's
        # per-segment GEMM shapes (BLAS results are shape-dependent, so
        # arbitrary graph cuts would not be bitwise-reproducible).
        boundaries = segment_boundaries(
            np.bincount(graph_ids, minlength=num_graphs), forward_segment_nodes()
        )
        for part in shard_evenly(len(boundaries) - 1, self.num_workers):
            tasks.append(
                ForwardTask(
                    chunk_id=chunk_id,
                    bundle=bundle.spec,
                    member_start=0,
                    member_stop=self.num_members,
                    graph_start=int(boundaries[part.start]),
                    graph_stop=int(boundaries[part.stop]),
                )
            )
        return bundle, tasks

    def heartbeats(self) -> dict[int, float]:
        """``pid -> last-seen wall clock`` of the workers (passive + probed)."""
        return self.heartbeat_book.snapshot()

    def probe(self) -> dict[int, float]:
        """Actively ping the pool; stamps and returns the heartbeat book."""
        pool = self._ensure_pool()
        try:
            pids = set(pool.map(_heartbeat_probe, range(self.num_workers * 2)))
        except BrokenProcessPool as fault:
            raise WorkerCrashError(
                "a forward worker died during a heartbeat probe"
            ) from fault
        self.heartbeat_book.record(pids)
        return self.heartbeat_book.snapshot()

    def close(self) -> None:
        """Drain in-flight work, stop the workers, release the shared segment."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            block, self._block = self._block, None
        if pool is not None:
            pool.shutdown(wait=True)
        if block is not None:
            block.unlink()

    def __enter__(self) -> "ForwardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _ensure_pool(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot predict through a closed ForwardPool")
            if self._pool is None:
                members = self._member_models()
                reference = members[0]
                dims = (
                    reference.node_feature_dim,
                    reference.edge_feature_dim,
                    reference.metadata_dim,
                )
                configs = tuple(model.config for model in members)
                # Validate the rebuild contract HERE, in the parent: an
                # exception inside an executor initializer only surfaces
                # later as an opaque BrokenProcessPool — which the supervisor
                # would misread as a worker crash and burn restart budget on.
                # Rebuilding one member up front turns any construction/
                # traversal-order divergence into an immediate RuntimeError
                # the service's serial fallback catches.
                rebuilt = type(reference)(*dims, configs[0])
                expected = [p.data.shape for p in reference.parameters()]
                actual = [p.data.shape for p in rebuilt.parameters()]
                if expected != actual:
                    raise RuntimeError(
                        "member models do not rebuild with identical parameter "
                        f"shapes ({actual} vs {expected}); cannot share weights"
                    )
                block = SharedParameterBlock.create(
                    [
                        [parameter.data for parameter in model.parameters()]
                        for model in members
                    ],
                    fingerprint=self._model_fingerprint(),
                )
                context = multiprocessing.get_context(
                    self.start_method or default_start_method()
                )
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.num_workers,
                        mp_context=context,
                        initializer=forward_worker_init,
                        initargs=(block.spec, type(reference), configs, dims, self.backend),
                    )
                except Exception:
                    # Pool construction failed (spawn pickling, fd/process
                    # limits): release the segment instead of leaking an
                    # ensemble-sized /dev/shm allocation per retried request.
                    block.unlink()
                    raise
                self._block = block
                self.stats.shared_bytes = block.nbytes
            return self._pool
