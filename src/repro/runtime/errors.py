"""The one error envelope every HTTP front end speaks.

Before this module the gateway server and the cluster router each kept their
own exception → status mapping and emitted ``{"error": {"type", "message"}}``
bodies by hand.  Both now build every failure here, so the wire contract is
defined once:

    {"error": {"type": "<machine-readable>", "message": "<human>",
               "retryable": true|false}}

``retryable`` is the client's policy bit: ``true`` means the same request may
succeed later (backpressure, quota, a closed/restarting service, a timeout),
``false`` means retrying verbatim is pointless (malformed request, unknown
route, an internal fault that will recur).  Typed clients
(:class:`repro.client.PowerClient`) surface it on
:class:`~repro.client.PowerAPIError` so callers build backoff loops without
string-matching messages.
"""

from __future__ import annotations

__all__ = [
    "HTTPError",
    "RETRYABLE_STATUSES",
    "error_payload",
    "http_error_from_exception",
]

#: Statuses whose failures are transient by default: the request was fine,
#: the server's current state (load, shutdown, restart) was not.
RETRYABLE_STATUSES = frozenset({408, 429, 503})


class HTTPError(Exception):
    """A structured error response (status code + machine-readable type).

    ``retryable`` defaults from the status (:data:`RETRYABLE_STATUSES`) and
    can be pinned explicitly where the default is wrong — e.g. a ``503``
    answered because a feature is disabled outright is not retryable.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        *,
        retryable: bool | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.message = message
        self.retryable = (
            retryable if retryable is not None else status in RETRYABLE_STATUSES
        )

    def payload(self) -> dict:
        """The wire body of this failure."""
        return error_payload(
            self.status, self.error_type, self.message, retryable=self.retryable
        )


def error_payload(
    status: int, error_type: str, message: str, *, retryable: bool | None = None
) -> dict:
    """Build the unified envelope without constructing an exception."""
    return {
        "error": {
            "type": error_type,
            "message": message,
            "retryable": (
                retryable if retryable is not None else status in RETRYABLE_STATUSES
            ),
        }
    }


def http_error_from_exception(error: Exception) -> HTTPError:
    """Map a typed lower-layer failure onto the envelope's status space.

    The shared policy of the gateway HTTP server and the cluster router:

    * gateway backpressure → ``429 backpressure`` (retryable);
    * job admission limits (quota / full table) → ``429`` with the error's
      own type (retryable);
    * a closed gateway/service → ``503 closed`` (retryable: a supervisor or
      the cluster tier may bring a replacement up);
    * an unknown job id → ``404 job_not_found``;
    * a deployment plan referencing an artifact the registry lacks →
      ``400 unknown_artifact``;
    * ``KeyError``/``ValueError`` from the service (unknown kernels,
      malformed design points the featuriser rejects) → ``400
      invalid_request``.

    Anything else passes through untouched for the boundary's generic
    500 handling.  Already-typed :class:`HTTPError` instances return as-is.
    """
    # Imported here: gateway imports config only, but errors must stay
    # import-light (the router and the client both pull this module in).
    from repro.runtime.gateway import GatewayBackpressureError, GatewayClosedError

    if isinstance(error, HTTPError):
        return error
    if isinstance(error, GatewayBackpressureError):
        return HTTPError(429, "backpressure", str(error))
    if isinstance(error, GatewayClosedError):
        return HTTPError(503, "closed", str(error))
    job_error = _job_error(error)
    if job_error is not None:
        return job_error
    deploy_error = _deploy_error(error)
    if deploy_error is not None:
        return deploy_error
    if isinstance(error, (KeyError, ValueError)):
        message = str(error).strip("'\"") or type(error).__name__
        return HTTPError(400, "invalid_request", message)
    raise error


def _deploy_error(error: Exception) -> HTTPError | None:
    """Deployment failures, without making errors.py depend on repro.deploy.

    :class:`~repro.deploy.plan.UnknownArtifactError` subclasses ``KeyError``,
    so this check must run before the generic ``400 invalid_request`` branch
    — the typed envelope is what lets clients distinguish "your plan names a
    model that does not exist" from a malformed request body.
    """
    try:
        from repro.deploy.plan import UnknownArtifactError
    except ImportError:  # pragma: no cover - deploy is part of the package
        return None
    if isinstance(error, UnknownArtifactError):
        return HTTPError(400, "unknown_artifact", str(error), retryable=False)
    return None


def _job_error(error: Exception) -> HTTPError | None:
    """Job-subsystem failures, without making errors.py depend on repro.jobs."""
    try:
        from repro.jobs.manager import (
            JobQuotaError,
            JobTableFullError,
            UnknownJobError,
        )
    except ImportError:  # pragma: no cover - jobs is part of the package
        return None
    if isinstance(error, JobQuotaError):
        return HTTPError(429, "job_quota", str(error))
    if isinstance(error, JobTableFullError):
        return HTTPError(429, "job_table_full", str(error))
    if isinstance(error, UnknownJobError):
        message = str(error).strip("'\"") or "unknown job"
        return HTTPError(404, "job_not_found", message)
    return None
