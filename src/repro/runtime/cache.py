"""Persistent, cost-aware second cache tier for the inference cache.

The in-memory :class:`~repro.serve.cache.InferenceCache` dies with the
process, so every service restart re-pays featurisation for the whole working
set.  :class:`PersistentCache` is the disk tier underneath it: a
content-addressed store under one directory, keyed by the *same* addresses the
memory tier already uses (``content_key`` for featurisations,
``sample_key:model_fingerprint`` for predictions), so a restarted service
pointed at the same directory serves its warm set from disk with predictions
identical to the first run's — ``.npz`` serialisation round-trips the graph
arrays bit-for-bit.

Layout::

    <dir>/index.json            # entry metadata + costs + logical recency
    <dir>/samples/<key>.npz     # one featurised GraphSample per entry

Predicted powers are single floats and live in the index itself.

Eviction is **cost-aware, not LRU**: every sample entry records the
featurisation seconds a future hit saves, and when the store exceeds its byte
budget the entries with the *least seconds saved* go first (logical recency
breaks ties).  DSE traffic makes the difference: a frontier neighbourhood of
expensive-to-featurise designs stays resident even when a sweep of cheap
one-off designs floods the cache.

Notes:

* only the JSON-safe subset of ``extras`` survives the disk round trip
  (heavyweight pipeline objects such as HLS reports are dropped, exactly as
  in :meth:`repro.graph.dataset.GraphDataset.save_npz`); the serving path
  never reads them;
* index writes are atomic (temp file + ``os.replace``) and batched: the
  index is rewritten after every ``sync_every`` index touches and on explicit
  :meth:`sync`, which persists pending *mutations* (the service syncs after
  each request batch and on close; pure recency bumps from reads ride the
  backstop instead), so steady traffic does not pay an O(index) JSON dump per
  design.  A crash loses at most the last ``sync_every`` entries' metadata;
  sample files the index does not know about are garbage-collected on the
  next open.
* the directory has exactly one *owner* at a time, claimed by holding a
  kernel advisory lock (``flock``) on ``owner.lock``.  A second cache
  opened on the same directory degrades to **read-only** with a warning:
  it serves hits but never writes samples, never rewrites ``index.json``
  and never garbage-collects — without this, two services sharing a
  directory would GC each other's freshly written (not yet synced)
  samples as strays and last-writer-win each other's index.  ``flock`` is
  kernel-tracked per open file description, so a crashed owner's lock
  releases automatically (no stale-lock staleness probing, no takeover
  races) and two caches in one process still conflict correctly;
  :meth:`close` releases ownership.  The file's content (the owner's pid)
  is informational only, for the read-only warning.
"""

from __future__ import annotations

import fcntl
import json
import os
import threading
import warnings
from pathlib import Path

from repro.graph.dataset import GraphDataset, GraphSample

PERSISTENT_FORMAT_VERSION = 1

INDEX_NAME = "index.json"
SAMPLES_DIR = "samples"
OWNER_LOCK_NAME = "owner.lock"


class PersistentCache:
    """On-disk content-addressed sample/prediction store with cost-aware eviction."""

    def __init__(
        self,
        directory: str | Path,
        *,
        max_bytes: int = 256 * 1024 * 1024,
        max_predictions: int = 1_000_000,
        sync_every: int = 64,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if max_predictions < 1:
            raise ValueError("max_predictions must be >= 1")
        if sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.max_predictions = max_predictions
        self.sync_every = sync_every
        self._lock = threading.RLock()
        self._dirty = 0
        self._touched = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.io_errors = 0
        self.read_only = False
        self._owns_lock = False
        self._lock_fd: int | None = None
        self._acquire_ownership()
        self._index = self._load_index()

    # --------------------------------------------------------------- ownership

    def _acquire_ownership(self) -> None:
        """Claim the directory's advisory owner lock, or degrade to read-only.

        Ownership gates every destructive operation (sample/index writes,
        eviction, stray GC): exactly one process may mutate the store, so
        concurrent openers can still *read* the warm set without clobbering
        the owner's writes.  The claim is a non-blocking ``flock`` held for
        the cache's lifetime: kernel-tracked, so a crashed owner's lock
        releases automatically (no staleness heuristics, no
        delete-and-reclaim races — at most one open file description holds
        it) and the never-unlinked lock file cannot be swapped out from
        under a holder.
        """
        lock_path = self.directory / OWNER_LOCK_NAME
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR)
        except OSError:
            self.io_errors += 1
            self._degrade_to_read_only("its directory is not writable")
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            # Locked by a live owner — possibly this very process, through
            # another cache on the same directory (flock conflicts are per
            # open file description, so same-process openers conflict too).
            owner = self._read_lock_pid(lock_path)
            os.close(fd)
            self._degrade_to_read_only(
                f"it is owned by live process {owner}" if owner
                else "it is owned by another live opener"
            )
            return
        try:
            # Informational only (read-only warnings name the owner); the
            # flock itself is the claim.
            os.ftruncate(fd, 0)
            os.write(fd, str(os.getpid()).encode("utf-8"))
        except OSError:
            self.io_errors += 1
        self._lock_fd = fd
        self._owns_lock = True

    @staticmethod
    def _read_lock_pid(lock_path: Path) -> int:
        try:
            return int(lock_path.read_text(encoding="utf-8").strip() or "0")
        except (OSError, ValueError):
            return 0

    def _degrade_to_read_only(self, reason: str) -> None:
        self.read_only = True
        warnings.warn(
            f"persistent cache at {self.directory} opened read-only because "
            f"{reason}: hits are served, but nothing is written, evicted or "
            "garbage-collected",
            RuntimeWarning,
            stacklevel=4,
        )

    def close(self) -> None:
        """Persist pending mutations, release ownership, become read-only.

        Idempotent.  After close the cache still serves reads (a closed
        service keeps answering on its degraded path) but never writes —
        the released directory may already belong to another process.
        """
        with self._lock:
            if self._dirty and not self.read_only:
                self._save_index()
            if self._owns_lock:
                self._owns_lock = False
                fd, self._lock_fd = self._lock_fd, None
                if fd is not None:
                    try:
                        # Closing the fd releases the flock; the lock file
                        # itself stays (unlink-and-recreate would reopen the
                        # two-owner race this lock exists to prevent).
                        os.close(fd)
                    except OSError:
                        self.io_errors += 1
            self.read_only = True

    # ----------------------------------------------------------------- samples

    def get_sample(self, key: str) -> GraphSample | None:
        """Load one featurised sample from disk (``None`` on miss)."""
        with self._lock:
            entry = self._index["samples"].get(key)
            if entry is None:
                self.misses += 1
                return None
            path = self._sample_path(key)
            try:
                sample = GraphDataset.load_npz(path).samples[0]
            except (OSError, ValueError, KeyError, IndexError, json.JSONDecodeError):
                # A corrupt or missing file is dropped, never served.
                del self._index["samples"][key]
                self._unlink_quietly(path)
                self._mark_dirty()
                self.misses += 1
                return None
            entry["last_used"] = self._tick()
            entry["hits"] = entry.get("hits", 0) + 1
            self._touch()
            self.hits += 1
            return sample

    def put_sample(self, key: str, sample: GraphSample, cost_seconds: float = 0.0) -> None:
        """Write one sample through to disk and evict down to the byte budget.

        Failures degrade gracefully: the entry is simply not cached — a cache
        tier must never turn a successful request into an error.  That covers
        disk trouble (``OSError``: full disk, permissions) *and*
        serialisation trouble (``ValueError``/``TypeError``: ``extras``
        payloads the ``.npz`` JSON sidecar cannot encode, e.g. non-string
        dict keys that slip past the per-value JSON-safety probe).
        """
        with self._lock:
            if self.read_only:
                return
            path = self._sample_path(key)
            staging = path.with_suffix(".tmp.npz")
            try:
                samples_dir = self.directory / SAMPLES_DIR
                samples_dir.mkdir(parents=True, exist_ok=True)
                GraphDataset([sample]).save_npz(staging)
                os.replace(staging, path)
            except (OSError, ValueError, TypeError):
                self.io_errors += 1
                self._unlink_quietly(staging)
                return
            self._index["samples"][key] = {
                "cost_seconds": float(cost_seconds),
                "size_bytes": path.stat().st_size,
                "last_used": self._tick(),
                "hits": 0,
            }
            self._evict_to_budget()
            self._mark_dirty()

    # -------------------------------------------------------------- predictions

    def get_prediction(self, key: str) -> float | None:
        with self._lock:
            entry = self._index["predictions"].get(key)
            if entry is None:
                self.misses += 1
                return None
            entry["last_used"] = self._tick()
            entry["hits"] = entry.get("hits", 0) + 1
            self._touch()
            self.hits += 1
            return float(entry["value"])

    def put_prediction(self, key: str, value: float, cost_seconds: float = 0.0) -> None:
        with self._lock:
            if self.read_only:
                return
            self._index["predictions"][key] = {
                "value": float(value),
                "cost_seconds": float(cost_seconds),
                "last_used": self._tick(),
                "hits": 0,
            }
            predictions = self._index["predictions"]
            overflow = len(predictions) - self.max_predictions
            if overflow > 0:
                victims = sorted(predictions, key=lambda k: self._score(predictions[k]))
                for victim in victims[:overflow]:
                    del predictions[victim]
                    self.evictions += 1
            self._mark_dirty()

    # ------------------------------------------------------------------- stats

    def total_sample_bytes(self) -> int:
        with self._lock:
            return sum(e["size_bytes"] for e in self._index["samples"].values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._index["samples"]) + len(self._index["predictions"])

    def stats(self) -> dict:
        with self._lock:
            requests = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "io_errors": self.io_errors,
                "hit_rate": self.hits / requests if requests else 0.0,
                "samples": len(self._index["samples"]),
                "predictions": len(self._index["predictions"]),
                "sample_bytes": self.total_sample_bytes(),
                "read_only": self.read_only,
            }

    def sync(self) -> None:
        """Persist pending *mutations* (new/removed entries) to the index file.

        Pure recency/hit-counter bumps from reads do not count as pending —
        they persist via the ``sync_every`` backstop — so a read-heavy request
        batch does not pay an O(index) JSON dump on its per-batch sync.
        """
        with self._lock:
            if self._dirty:
                self._save_index()

    # --------------------------------------------------------------- internals

    def _mark_dirty(self) -> None:
        """Caller holds the lock: an entry was added or removed."""
        self._dirty += 1
        self._touch()

    def _touch(self) -> None:
        """Caller holds the lock: bookkeeping changed (recency, counters)."""
        self._touched += 1
        if self._touched >= self.sync_every:
            self._save_index()

    @staticmethod
    def _score(entry: dict) -> tuple[float, int]:
        """Eviction order: least featurisation-seconds saved first, LRU ties."""
        return (float(entry.get("cost_seconds", 0.0)), int(entry.get("last_used", 0)))

    def _evict_to_budget(self) -> None:
        samples = self._index["samples"]
        total = sum(e["size_bytes"] for e in samples.values())
        if total <= self.max_bytes:
            return
        for victim in sorted(samples, key=lambda k: self._score(samples[k])):
            if total <= self.max_bytes:
                break
            total -= samples[victim]["size_bytes"]
            del samples[victim]
            self._unlink_quietly(self._sample_path(victim))
            self.evictions += 1

    def _sample_path(self, key: str) -> Path:
        return self.directory / SAMPLES_DIR / f"{key}.npz"

    def _tick(self) -> int:
        self._index["clock"] += 1
        return self._index["clock"]

    def _load_index(self) -> dict:
        empty = {
            "format_version": PERSISTENT_FORMAT_VERSION,
            "clock": 0,
            "samples": {},
            "predictions": {},
        }
        path = self.directory / INDEX_NAME
        if not path.is_file():
            return empty
        try:
            with open(path, encoding="utf-8") as handle:
                index = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return empty
        if index.get("format_version") != PERSISTENT_FORMAT_VERSION:
            return empty
        for field in ("samples", "predictions"):
            if not isinstance(index.get(field), dict):
                return empty
        index.setdefault("clock", 0)
        # Entries whose backing file vanished (partial copy, manual cleanup)
        # must not be advertised.
        index["samples"] = {
            key: entry
            for key, entry in index["samples"].items()
            if self._sample_path(key).is_file()
        }
        # And sample files the index does not know about (writes after the
        # last sync before a crash, staging leftovers) are garbage, not cache:
        # without an entry they can never be served, so reclaim the bytes.
        # Owner-only: to a read-only opener a stray may simply be the live
        # owner's freshly written, not-yet-synced sample.
        samples_dir = self.directory / SAMPLES_DIR
        if not self.read_only and samples_dir.is_dir():
            known = {f"{key}.npz" for key in index["samples"]}
            for stray in samples_dir.iterdir():
                if stray.name not in known:
                    self._unlink_quietly(stray)
        return index

    def _unlink_quietly(self, path: Path) -> None:
        if self.read_only:
            # Never delete files we do not own: the live owner may still be
            # serving (or about to index) them.
            return
        try:
            path.unlink(missing_ok=True)
        except OSError:
            self.io_errors += 1

    def _save_index(self) -> None:
        """Caller holds the lock.  Best-effort: a failed write keeps the
        pending counters so the next sync retries — cache-tier disk trouble
        must never fail a lookup (reads trigger backstop saves too).
        Owner-only: a read-only opener rewriting ``index.json`` would
        last-writer-win the owner's entries away."""
        if self.read_only:
            self._touched = 0
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / INDEX_NAME
            staging = path.with_suffix(".tmp")
            with open(staging, "w", encoding="utf-8") as handle:
                json.dump(self._index, handle)
            os.replace(staging, path)
        except OSError:
            self.io_errors += 1
            # Reset the touch counter so a read-heavy stretch does not retry
            # the failed dump on every single lookup.
            self._touched = 0
            return
        self._dirty = 0
        self._touched = 0
