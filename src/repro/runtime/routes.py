"""The machine-readable route table both HTTP front ends serve from.

Before the jobs API the gateway server and the cluster router each carried a
hand-maintained ``{path: (method, handler)}`` dict — two copies of the same
public surface that had already drifted once (the router has no
``/v1/traces``).  This module is the single definition: a
:class:`RouteTable` of :class:`Route` entries (method, path pattern, handler
name, request/response schema names), matched with ``{param}`` segments so
``/v1/jobs/{job_id}`` routes without regexes.

Both servers resolve ``Route.name`` against their own bound handlers and
both answer ``GET /v1/routes`` with :meth:`RouteTable.describe` — clients
can discover the surface (and the deprecation pointers) instead of
hard-coding it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.errors import HTTPError

__all__ = ["GATEWAY_ROUTES", "ROUTER_ROUTES", "Route", "RouteTable"]


@dataclass(frozen=True)
class Route:
    """One public endpoint: its wire shape and the handler name serving it."""

    method: str
    pattern: str
    #: Handler name; each server binds it to its own ``_<name>`` method.
    name: str
    #: Schema names are documentation-grade identifiers (they name the JSON
    #: shapes in the README's API reference), not validation hooks.
    request_schema: str | None = None
    response_schema: str | None = None
    #: Set on endpoints kept for compatibility; surfaces in ``/v1/routes``
    #: and as a ``Deprecation`` response header.
    deprecated: bool = False
    successor: str | None = None

    def match(self, path: str) -> dict[str, str] | None:
        """Path params when ``path`` matches this pattern, else ``None``."""
        pattern_parts = self.pattern.split("/")
        path_parts = path.split("/")
        if len(pattern_parts) != len(path_parts):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(pattern_parts, path_parts):
            if expected.startswith("{") and expected.endswith("}"):
                if not actual:
                    return None
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params

    def describe(self) -> dict:
        entry = {
            "method": self.method,
            "path": self.pattern,
            "name": self.name,
            "request_schema": self.request_schema,
            "response_schema": self.response_schema,
        }
        if self.deprecated:
            entry["deprecated"] = True
            entry["successor"] = self.successor
        return entry


class RouteTable:
    """Ordered routes with 404/405-correct matching and metrics labels."""

    def __init__(self, routes: list[Route]) -> None:
        self.routes = list(routes)

    def match(self, method: str, path: str) -> tuple[Route, dict[str, str]]:
        """Resolve ``(method, path)``; raises the structured 404/405.

        A path served under a different method is a 405 naming the expected
        method(s); a path no route serves is a 404 — the distinction the old
        hand-rolled dicts also made.
        """
        allowed: list[str] = []
        for route in self.routes:
            params = route.match(path)
            if params is None:
                continue
            if route.method == method:
                return route, params
            allowed.append(route.method)
        if allowed:
            raise HTTPError(
                405,
                "method_not_allowed",
                f"{path} expects {' or '.join(sorted(set(allowed)))}, got {method}",
            )
        raise HTTPError(404, "not_found", f"no route for {path}")

    def metrics_label(self, path: str | None) -> str:
        """The bounded per-route metrics label: the pattern, or ``"other"``.

        Patterns collapse every ``/v1/jobs/<id>`` onto one label, so a
        scanner minting random paths (or random job ids) cannot mint
        unbounded label children in the registry.
        """
        if path is not None:
            for route in self.routes:
                if route.match(path) is not None:
                    return route.pattern
        return "other"

    def describe(self) -> list[dict]:
        """What ``GET /v1/routes`` serves."""
        return [route.describe() for route in self.routes]


#: The job lifecycle routes, shared verbatim by both servers.
_JOB_ROUTES = [
    Route(
        "POST",
        "/v1/jobs/explore",
        "submit_explore_job",
        request_schema="ExploreJobRequest",
        response_schema="JobSubmitted",
    ),
    Route("GET", "/v1/jobs", "list_jobs", response_schema="JobList"),
    Route("GET", "/v1/jobs/{job_id}", "get_job", response_schema="Job"),
    Route(
        "GET",
        "/v1/jobs/{job_id}/updates",
        "job_updates",
        response_schema="JobUpdates",
    ),
    Route(
        "POST",
        "/v1/jobs/{job_id}/cancel",
        "cancel_job",
        response_schema="Job",
    ),
]

#: The deployment-plan control plane, shared verbatim by both servers: read
#: and replace the live plan, and promote / roll back its canaries.
_DEPLOYMENT_ROUTES = [
    Route(
        "GET",
        "/v1/deployments",
        "get_deployment",
        response_schema="DeploymentView",
    ),
    Route(
        "PUT",
        "/v1/deployments",
        "put_deployment",
        request_schema="DeploymentPlan",
        response_schema="DeploymentView",
    ),
    Route(
        "POST",
        "/v1/deployments/promote",
        "promote_deployment",
        request_schema="DeploymentAction",
        response_schema="DeploymentView",
    ),
    Route(
        "POST",
        "/v1/deployments/rollback",
        "rollback_deployment",
        request_schema="DeploymentAction",
        response_schema="DeploymentView",
    ),
]

#: What one gateway (single replica) serves.
GATEWAY_ROUTES = RouteTable(
    [
        Route(
            "POST",
            "/v1/estimate",
            "estimate",
            request_schema="EstimateRequest",
            response_schema="EstimateResponse",
        ),
        Route(
            "POST",
            "/v1/estimate_many",
            "estimate_many",
            request_schema="EstimateManyRequest",
            response_schema="EstimateManyResponse",
        ),
        Route(
            "POST",
            "/v1/explore",
            "explore",
            request_schema="ExploreRequest",
            response_schema="ExploreReport",
            deprecated=True,
            successor="/v1/jobs/explore",
        ),
        *_JOB_ROUTES,
        *_DEPLOYMENT_ROUTES,
        Route("GET", "/v1/routes", "routes", response_schema="RouteTable"),
        Route("GET", "/v1/models", "models", response_schema="ModelIndex"),
        Route("GET", "/v1/traces", "traces", response_schema="TraceRing"),
        Route("GET", "/v1/events", "events", response_schema="EventLog"),
        Route("GET", "/healthz", "healthz", response_schema="Health"),
        Route("GET", "/metrics", "metrics", response_schema="Metrics"),
    ]
)

#: What the cluster router serves (same dialect, minus per-replica traces,
#: plus the cluster control plane).
ROUTER_ROUTES = RouteTable(
    [
        Route(
            "POST",
            "/v1/estimate",
            "estimate",
            request_schema="EstimateRequest",
            response_schema="EstimateResponse",
        ),
        Route(
            "POST",
            "/v1/estimate_many",
            "estimate_many",
            request_schema="EstimateManyRequest",
            response_schema="EstimateManyResponse",
        ),
        Route(
            "POST",
            "/v1/explore",
            "explore",
            request_schema="ExploreRequest",
            response_schema="ExploreReport",
            deprecated=True,
            successor="/v1/jobs/explore",
        ),
        *_JOB_ROUTES,
        *_DEPLOYMENT_ROUTES,
        Route("GET", "/v1/routes", "routes", response_schema="RouteTable"),
        Route("GET", "/v1/models", "models", response_schema="ModelIndex"),
        Route("GET", "/v1/cluster", "cluster", response_schema="ClusterView"),
        Route("GET", "/v1/events", "events", response_schema="EventLog"),
        Route("GET", "/healthz", "healthz", response_schema="Health"),
        Route("GET", "/metrics", "metrics", response_schema="Metrics"),
    ]
)
