"""Stdlib-only HTTP front end over the async gateway.

One asyncio server (``asyncio.start_server`` — no new runtime dependencies)
exposes the :class:`~repro.runtime.gateway.AsyncPowerGateway` endpoints as
JSON over HTTP/1.1:

========  ===================  ===================================================
method    path                 body / response
========  ===================  ===================================================
POST      ``/v1/estimate``     one design point → one estimate
POST      ``/v1/estimate_many``  ``{"requests": [...]}`` → ``{"responses": [...]}``
POST      ``/v1/explore``      ``{"kernel", "budget"}`` → frontier + ADRS
GET       ``/v1/models``       the registry's manifest index (names × versions)
GET       ``/v1/traces``       recent request traces (``?limit=N`` /
                               ``?trace_id=...`` for one span tree)
GET       ``/v1/events``       the supervisor event timeline (``?limit=N`` /
                               ``?kind=crash``)
GET       ``/healthz``         liveness + pool supervision (``200 ok`` /
                               ``200 degraded`` while a pool is in post-crash
                               backoff or retired / ``503 closed``)
GET       ``/metrics``         service metrics + runtime stats (incl. the active
                               compute backend and per-backend forward counters)
                               + gateway counters; with ``Accept: text/plain``
                               the Prometheus text exposition instead of JSON
========  ===================  ===================================================

The connection/parsing machinery lives in :class:`AsyncJSONHTTPServer` so
other front ends (the cluster router in :mod:`repro.cluster`) speak the exact
same dialect — status mapping, structured error bodies, request-id echoing,
body limits — without re-implementing HTTP.

Observability (:mod:`repro.obs`) threads through every request: a
client-supplied ``X-Request-ID`` is honoured (one is minted otherwise) and
echoed on the response; POST API calls open a root ``request`` span whose
tree — gateway admission, coalesce, featurise (worker pids), cache lookups,
forward — lands in the ring ``GET /v1/traces`` serves; each request emits
one structured JSON log line and lands in the per-route counter/latency
histograms.  All of it degrades to no-ops for gateways over bare stub
services without an ``obs`` bundle.

A design point on the wire is the JSON shape of
:class:`~repro.hls.pragmas.DesignDirectives`::

    {"kernel": "atax",
     "directives": {"loops":  {"i": {"unroll": 2, "pipeline": true}},
                    "arrays": {"A": {"factor": 2, "kind": "cyclic"}}}}

Every failure is structured JSON (``{"error": {"type", "message"}}``) with
the matching status code: malformed requests are ``400``, unknown paths
``404``, wrong methods ``405``, oversized bodies ``413``, gateway
backpressure ``429``, internal faults ``500``, and a closed gateway ``503``.

Connections default to ``Connection: close`` (curl-able, byte-predictable).
A client that sends ``Connection: keep-alive`` may reuse its connection for
up to :data:`KEEP_ALIVE_MAX_REQUESTS` requests with at most
:data:`KEEP_ALIVE_IDLE_TIMEOUT` seconds of idleness between them; error
responses always close.  :class:`HTTPConnectionPool` is the matching client
— the cluster router holds one per replica so proxied requests skip
per-request TCP setup.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qs

from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, flatten_numeric
from repro.runtime.gateway import (
    AsyncPowerGateway,
    GatewayBackpressureError,
    GatewayClosedError,
)

#: Largest accepted request body; a batch of a few thousand design points is
#: well under this, anything bigger is a client bug.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: How long a client may take to deliver one complete request.  Bounds the
#: damage of idle probes / slowloris connections: a handler task and its fd
#: are released after this instead of being pinned forever.
REQUEST_READ_TIMEOUT = 30.0

#: Keep-alive budget: a connection that opted in (``Connection: keep-alive``)
#: serves at most this many requests before the server closes it anyway, so
#: one client cannot pin a handler task forever.
KEEP_ALIVE_MAX_REQUESTS = 100

#: Idle window between requests on a kept-alive connection.  Expiry closes
#: the connection silently (no 408): an idle pooled client connection is
#: normal, not a protocol fault.  Deliberately much shorter than
#: ``REQUEST_READ_TIMEOUT`` — a parked connection holds a handler task.
KEEP_ALIVE_IDLE_TIMEOUT = 5.0

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


#: Content type of the Prometheus text exposition format (version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Routable paths; requests elsewhere share one "other" metrics label so a
#: path scanner cannot mint unbounded label children.
_KNOWN_PATHS = frozenset(
    {
        "/v1/estimate",
        "/v1/estimate_many",
        "/v1/explore",
        "/v1/models",
        "/v1/traces",
        "/v1/events",
        "/healthz",
        "/metrics",
    }
)

_HTTP_LOGGER = get_logger("http")


class HTTPError(Exception):
    """A structured error response (status code + machine-readable type)."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.message = message


@dataclass
class RawResponse:
    """A non-JSON response body (the Prometheus exposition) with its type."""

    content_type: str
    body: bytes


class _ConnectionClosed(Exception):
    """The peer closed the connection between requests (not an error)."""


def _clean_request_id(raw: str | None) -> str:
    """Echoable request id: client value sanitised, or a freshly minted one.

    Only printable non-whitespace ASCII survives (the id goes back out in a
    response *header* — CR/LF or control bytes from the client must never be
    reflected), bounded so a hostile header can't bloat every log line.
    """
    if raw:
        cleaned = "".join(ch for ch in raw if "!" <= ch <= "~")[:128]
        if cleaned:
            return cleaned
    return os.urandom(8).hex()


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


# ------------------------------------------------------------------ JSON codec


def _require(obj: dict, key: str, kind, where: str):
    if not isinstance(obj, dict):
        raise HTTPError(400, "bad_request", f"{where} must be a JSON object")
    if key not in obj:
        raise HTTPError(400, "bad_request", f"{where} is missing {key!r}")
    value = obj[key]
    if not isinstance(value, kind) or isinstance(value, bool):
        raise HTTPError(
            400, "bad_request", f"{where}[{key!r}] must be {kind.__name__}"
        )
    return value


def directives_from_json(obj: dict | None) -> DesignDirectives:
    """Parse the wire shape of a design point; raises 400 on malformed input.

    ``None`` / ``{}`` is the baseline design.  Validation errors from the
    directive dataclasses themselves (negative unroll factors, unknown
    partition kinds) surface as ``400`` too: a malformed design point is a
    client error, never a server fault.
    """
    if obj is None:
        obj = {}
    if not isinstance(obj, dict):
        raise HTTPError(400, "bad_request", "directives must be a JSON object")
    unknown = set(obj) - {"loops", "arrays"}
    if unknown:
        raise HTTPError(
            400, "bad_request", f"unknown directives keys {sorted(unknown)}"
        )
    for section in ("loops", "arrays"):
        if obj.get(section) is not None and not isinstance(obj[section], dict):
            raise HTTPError(400, "bad_request", f"{section} must be a JSON object")
    loops: dict[str, LoopPragmas] = {}
    for name, spec in (obj.get("loops") or {}).items():
        if not isinstance(spec, dict):
            raise HTTPError(400, "bad_request", f"loops[{name!r}] must be an object")
        bad_keys = set(spec) - {"unroll", "pipeline"}
        if bad_keys:
            # Strict here too: a typo'd pragma key silently ignored would
            # return a confident estimate of the wrong (baseline) design.
            raise HTTPError(
                400,
                "bad_request",
                f"unknown loops[{name!r}] keys {sorted(bad_keys)} "
                "(expected 'unroll', 'pipeline')",
            )
        unroll = spec.get("unroll", 1)
        pipeline = spec.get("pipeline", False)
        # Strict types: int(2.5) would silently estimate a *different* design.
        if isinstance(unroll, bool) or not isinstance(unroll, int):
            raise HTTPError(
                400, "bad_request", f"loops[{name!r}]['unroll'] must be an integer"
            )
        if not isinstance(pipeline, bool):
            raise HTTPError(
                400, "bad_request", f"loops[{name!r}]['pipeline'] must be a boolean"
            )
        try:
            loops[name] = LoopPragmas(unroll_factor=unroll, pipeline=pipeline)
        except ValueError as error:
            raise HTTPError(400, "bad_request", f"loops[{name!r}]: {error}") from error
    arrays: dict[str, ArrayPartition] = {}
    for name, spec in (obj.get("arrays") or {}).items():
        if not isinstance(spec, dict):
            raise HTTPError(400, "bad_request", f"arrays[{name!r}] must be an object")
        bad_keys = set(spec) - {"factor", "kind"}
        if bad_keys:
            raise HTTPError(
                400,
                "bad_request",
                f"unknown arrays[{name!r}] keys {sorted(bad_keys)} "
                "(expected 'factor', 'kind')",
            )
        factor = spec.get("factor", 1)
        kind = spec.get("kind", "cyclic")
        if isinstance(factor, bool) or not isinstance(factor, int):
            raise HTTPError(
                400, "bad_request", f"arrays[{name!r}]['factor'] must be an integer"
            )
        if not isinstance(kind, str):
            raise HTTPError(
                400, "bad_request", f"arrays[{name!r}]['kind'] must be a string"
            )
        try:
            arrays[name] = ArrayPartition(factor=factor, kind=kind)
        except ValueError as error:
            raise HTTPError(400, "bad_request", f"arrays[{name!r}]: {error}") from error
    return DesignDirectives.from_dicts(loops, arrays)


def directives_to_json(directives: DesignDirectives) -> dict:
    """Inverse of :func:`directives_from_json` (used by the demo client)."""
    return {
        "loops": {
            name: {"unroll": pragmas.unroll_factor, "pipeline": pragmas.pipeline}
            for name, pragmas in directives.loop_pragmas
        },
        "arrays": {
            name: {"factor": partition.factor, "kind": partition.kind}
            for name, partition in directives.array_partitions
        },
    }


def estimate_request_from_json(obj: dict):
    """Build an :class:`~repro.serve.service.EstimateRequest` from wire JSON."""
    from repro.serve.service import EstimateRequest

    kernel = _require(obj, "kernel", str, "request")
    unknown = set(obj) - {"kernel", "directives"}
    if unknown:
        raise HTTPError(400, "bad_request", f"unknown request keys {sorted(unknown)}")
    return EstimateRequest(
        kernel=kernel, directives=directives_from_json(obj.get("directives"))
    )


def response_to_json(response) -> dict:
    return {
        "kernel": response.kernel,
        "directives": response.directives,
        "power": response.power,
        "target": response.target,
        "cached_features": response.cached_features,
        "cached_prediction": response.cached_prediction,
        "latency_ms": response.latency_ms,
        "model_fingerprint": response.model_fingerprint,
    }


def explore_report_to_json(report) -> dict:
    return {
        "kernel": report.kernel,
        "budget": report.budget,
        "adrs": report.adrs,
        "num_candidates": report.num_candidates,
        "num_sampled": report.result.num_sampled,
        "elapsed_seconds": report.elapsed_seconds,
        "frontier": [
            {
                "kernel": design.kernel,
                "directives": design.directives,
                "latency_cycles": design.latency_cycles,
                # An exact-frontier design the explorer never sampled has no
                # prediction (NaN); null is its strict-JSON spelling.
                "predicted_power": (
                    None
                    if math.isnan(design.predicted_power)
                    else design.predicted_power
                ),
                "measured_power": design.measured_power,
            }
            for design in report.frontier
        ],
    }


# -------------------------------------------------------------------- server


class AsyncJSONHTTPServer:
    """Connection/protocol half of the HTTP front ends.

    Owns everything below routing: the accept loop, request parsing (with
    line/header/body limits), the opt-in keep-alive loop, structured error
    bodies, response serialisation and graceful drain-on-close.  Subclasses
    implement :meth:`_dispatch` (route the request, return
    ``(status, payload)``) and may override :meth:`_account` for per-request
    metrics.  :class:`GatewayHTTPServer` serves one gateway;
    :class:`repro.cluster.router.ClusterRouter` serves a replica set.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
        read_timeout: float = REQUEST_READ_TIMEOUT,
        keep_alive_max_requests: int = KEEP_ALIVE_MAX_REQUESTS,
        keep_alive_idle_s: float = KEEP_ALIVE_IDLE_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.read_timeout = read_timeout
        self.keep_alive_max_requests = keep_alive_max_requests
        self.keep_alive_idle_s = keep_alive_idle_s
        self._server: asyncio.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        # Handlers parked between requests (waiting for the next request
        # line), by task → transport.  aclose() closes these transports so a
        # kept-alive connection drains immediately instead of waiting out
        # its idle window.
        self._idle: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._closing = False

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (the norm in tests and demos);
        the bound port is also written back to ``self.port``.
        """
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        self._closing = True
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for idle_writer in list(self._idle.values()):
            idle_writer.close()
        # wait_closed does not cover connection handlers on 3.10/3.11; drain
        # them explicitly so every accepted request still gets its response.
        while self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)

    async def __aenter__(self):
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # --------------------------------------------------------------- handling

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            served = 0
            while True:
                started = time.perf_counter()
                method: str | None = None
                path: str | None = None
                request_id: str | None = None
                keep_alive = False
                try:
                    # The first request races the full read timeout (408 on
                    # expiry, same as ever); later requests on a kept-alive
                    # connection race the much shorter idle window and
                    # expire silently.
                    timeout = self.read_timeout if served == 0 else self.keep_alive_idle_s
                    if task is not None:
                        self._idle[task] = writer
                    try:
                        method, path, query, headers, body = await asyncio.wait_for(
                            self._read_request(reader), timeout=timeout
                        )
                    finally:
                        if task is not None:
                            self._idle.pop(task, None)
                    request_id = _clean_request_id(headers.get("x-request-id"))
                    keep_alive = (
                        headers.get("connection", "").strip().lower() == "keep-alive"
                        and served + 1 < self.keep_alive_max_requests
                        and not self._closing
                    )
                    status, payload = await self._dispatch(
                        method, path, query, headers, body, request_id
                    )
                except asyncio.TimeoutError:
                    if served:
                        return  # idle keep-alive connection: close quietly
                    status = 408
                    payload = {
                        "error": {
                            "type": "timeout",
                            "message": f"request not received within {self.read_timeout:.0f}s",
                        }
                    }
                except _ConnectionClosed:
                    return  # clean EOF between requests: nothing to answer
                except HTTPError as error:
                    keep_alive = False  # error responses always close
                    status = error.status
                    payload = {
                        "error": {"type": error.error_type, "message": error.message}
                    }
                except Exception as error:  # noqa: BLE001 - boundary: every fault
                    # becomes a structured 500 instead of a dropped connection.
                    keep_alive = False
                    status = 500
                    payload = {
                        "error": {"type": "internal", "message": f"{type(error).__name__}: {error}"}
                    }
                keep_alive = await self._write_response(
                    writer, status, payload, request_id=request_id, keep_alive=keep_alive
                )
                self._account(method, path, status, started, request_id)
                served += 1
                if not keep_alive or self._closing:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # Client went away mid-exchange; nothing to answer.
        finally:
            if task is not None:
                self._handlers.discard(task)
                self._idle.pop(task, None)
            await _close_writer(writer)

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
        request_id: str,
    ) -> tuple[int, dict | RawResponse]:
        raise NotImplementedError

    def _account(
        self,
        method: str | None,
        path: str | None,
        status: int,
        started: float,
        request_id: str | None,
    ) -> None:
        """Hook: per-request accounting (metrics, logs).  Default: none."""

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            return await self._read_request_inner(reader)
        except ValueError as error:
            # StreamReader raises ValueError past its 64 KiB line limit: an
            # oversized request line / header is the client's fault, not ours.
            raise HTTPError(400, "bad_request", f"unreadable request: {error}") from error

    async def _read_request_inner(self, reader: asyncio.StreamReader):
        request_line_bytes = await reader.readline()
        if not request_line_bytes:
            # Clean EOF before a request line: the peer closed a kept-alive
            # connection (or connected and never spoke) — not a protocol error.
            raise _ConnectionClosed
        request_line = request_line_bytes.decode("latin-1").rstrip("\r\n")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HTTPError(400, "bad_request", f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for _ in range(100):
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise HTTPError(400, "bad_request", "too many request headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise HTTPError(400, "bad_request", "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "bad_request", "malformed Content-Length")
        if length > self.max_body_bytes:
            raise HTTPError(
                413,
                "payload_too_large",
                f"body of {length} bytes exceeds the {self.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = path.partition("?")
        return method, path, parse_qs(query_string), headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | RawResponse,
        *,
        request_id: str | None = None,
        keep_alive: bool = False,
    ) -> bool:
        """Serialise and send; returns whether the connection stays open."""
        if isinstance(payload, RawResponse):
            body = payload.body
            content_type = payload.content_type
        else:
            content_type = "application/json"
            try:
                # allow_nan=False: strict JSON on the wire (NaN/Infinity leaks
                # become a structured 500 here instead of an unparsable body).
                body = json.dumps(payload, allow_nan=False).encode()
            except (TypeError, ValueError):
                status = 500
                keep_alive = False
                body = json.dumps(
                    {"error": {"type": "internal", "message": "unserialisable response payload"}}
                ).encode()
        reason = _STATUS_REASONS.get(status, "Unknown")
        request_id_header = (
            f"X-Request-ID: {request_id}\r\n" if request_id is not None else ""
        )
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{request_id_header}"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        return keep_alive

    @staticmethod
    def _int_param(query: dict, name: str, default: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            value = int(values[0])
        except ValueError:
            raise HTTPError(400, "bad_request", f"{name} must be an integer") from None
        if value < 1:
            raise HTTPError(400, "bad_request", f"{name} must be >= 1")
        return value


class GatewayHTTPServer(AsyncJSONHTTPServer):
    """The asyncio HTTP server; one instance serves one gateway.

    ``registry`` is optional — without one, ``/v1/models`` answers with an
    empty index instead of failing (a service constructed straight from a
    fitted model has no registry to list).
    """

    def __init__(
        self,
        gateway: AsyncPowerGateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        max_body_bytes: int = MAX_BODY_BYTES,
        read_timeout: float = REQUEST_READ_TIMEOUT,
        keep_alive_max_requests: int = KEEP_ALIVE_MAX_REQUESTS,
        keep_alive_idle_s: float = KEEP_ALIVE_IDLE_TIMEOUT,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            max_body_bytes=max_body_bytes,
            read_timeout=read_timeout,
            keep_alive_max_requests=keep_alive_max_requests,
            keep_alive_idle_s=keep_alive_idle_s,
        )
        self.gateway = gateway
        self.registry = registry

    async def aclose(self, *, close_gateway: bool = False) -> None:
        await super().aclose()
        if close_gateway:
            await self.gateway.aclose(close_service=True)

    # --------------------------------------------------------------- handling

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
        request_id: str,
    ) -> tuple[int, dict | RawResponse]:
        """Route the request, under a root ``request`` span for API calls.

        Only the POST endpoints open a root span: a scraped ``/metrics`` or
        ``/healthz`` probe every few seconds would otherwise wash the actual
        request traces out of the bounded ring.
        """
        obs = self._obs()
        tracer = obs.tracer if obs is not None else None
        if (
            tracer is None
            or not tracer.enabled
            or method != "POST"
            or not path.startswith("/v1/")
        ):
            return await self._route(method, path, query, headers, body)
        with tracer.span("request", method=method, path=path) as span:
            tracer.set_request_id(request_id)
            status, payload = await self._route(method, path, query, headers, body)
            span.set_attribute("status", status)
            return status, payload

    def _obs(self):
        # Duck-typed, same as the gateway: a bare stub service has no obs
        # bundle and the HTTP layer simply goes uninstrumented.
        return getattr(self.gateway.service, "obs", None)

    def _account(
        self,
        method: str | None,
        path: str | None,
        status: int,
        started: float,
        request_id: str | None,
    ) -> None:
        """Per-route counter + latency histogram + one structured log line."""
        obs = self._obs()
        if obs is None or method is None:
            return
        # Unknown paths share one label so a scanner can't mint unbounded
        # label children in the registry.
        route = path if path in _KNOWN_PATHS else "other"
        elapsed = time.perf_counter() - started
        try:
            obs.http_requests.labels(path=route, status=str(status)).inc()
            obs.http_seconds.labels(path=route).observe(elapsed)
            log_event(
                _HTTP_LOGGER,
                "http.request",
                method=method,
                path=path,
                status=status,
                latency_ms=round(elapsed * 1e3, 3),
                request_id=request_id,
            )
        except Exception:  # noqa: BLE001 - accounting must never fail a request
            pass

    # ---------------------------------------------------------------- routing

    async def _route(
        self, method: str, path: str, query: dict, headers: dict, body: bytes
    ) -> tuple[int, dict | RawResponse]:
        routes = {
            "/v1/estimate": ("POST", self._estimate),
            "/v1/estimate_many": ("POST", self._estimate_many),
            "/v1/explore": ("POST", self._explore),
            "/v1/models": ("GET", self._models),
            "/v1/traces": ("GET", self._traces),
            "/v1/events": ("GET", self._events),
            "/healthz": ("GET", self._healthz),
            "/metrics": ("GET", self._metrics),
        }
        if path not in routes:
            raise HTTPError(404, "not_found", f"no route for {path}")
        expected_method, handler = routes[path]
        if method != expected_method:
            raise HTTPError(
                405, "method_not_allowed", f"{path} expects {expected_method}, got {method}"
            )
        if expected_method == "POST":
            try:
                parsed = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise HTTPError(400, "bad_request", f"invalid JSON body: {error}") from error
            if not isinstance(parsed, dict):
                raise HTTPError(400, "bad_request", "body must be a JSON object")
            return await handler(parsed)
        return await handler(query, headers)

    async def _call_gateway(self, coroutine):
        """Map the gateway's typed failures onto status codes."""
        try:
            return await coroutine
        except GatewayBackpressureError as error:
            raise HTTPError(429, "backpressure", str(error)) from error
        except GatewayClosedError as error:
            raise HTTPError(503, "closed", str(error)) from error
        except (KeyError, ValueError) as error:
            # Unknown kernels (KeyError from the kernel catalogue) and
            # malformed design points the featuriser rejects are client
            # errors, not server faults.
            message = str(error).strip("'\"") or type(error).__name__
            raise HTTPError(400, "invalid_request", message) from error

    async def _estimate(self, body: dict) -> tuple[int, dict]:
        request = estimate_request_from_json(body)
        response = await self._call_gateway(self.gateway.estimate(request))
        return 200, response_to_json(response)

    async def _estimate_many(self, body: dict) -> tuple[int, dict]:
        raw = _require(body, "requests", list, "body")
        requests = [estimate_request_from_json(item) for item in raw]
        responses = await self._call_gateway(self.gateway.estimate_many(requests))
        return 200, {"responses": [response_to_json(r) for r in responses]}

    async def _explore(self, body: dict) -> tuple[int, dict]:
        kernel = _require(body, "kernel", str, "body")
        unknown = set(body) - {"kernel", "budget"}
        if unknown:
            raise HTTPError(400, "bad_request", f"unknown explore keys {sorted(unknown)}")
        budget = body.get("budget")
        if budget is not None and (
            isinstance(budget, bool) or not isinstance(budget, (int, float))
        ):
            raise HTTPError(400, "bad_request", "budget must be a number")
        report = await self._call_gateway(
            self.gateway.explore(kernel, float(budget) if budget is not None else None)
        )
        return 200, explore_report_to_json(report)

    async def _models(self, query: dict, headers: dict) -> tuple[int, dict]:
        if self.registry is None:
            return 200, {"models": []}
        loop = asyncio.get_running_loop()

        def list_index() -> list[dict]:
            return [
                {
                    "name": name,
                    "versions": self.registry.versions(name),
                    "latest": self.registry.latest_version(name),
                }
                for name in self.registry.list_models()
            ]

        # Registry listing touches the filesystem; keep it off the event loop.
        return 200, {"models": await loop.run_in_executor(None, list_index)}

    async def _healthz(self, query: dict, headers: dict) -> tuple[int, dict]:
        """Liveness plus pool-supervision state.

        A pool in post-crash backoff (or retired to the serial path) turns
        the response *degraded*, not dead: still ``200`` — the service
        answers every request with identical results, only slower — with the
        per-pool health snapshots attached so an operator can see the fault,
        the restart budget and the current/target pool sizes.  Only a closed
        gateway/service is ``503``.
        """
        if self.gateway.closed:
            return 503, {"status": "closed"}
        service_health = getattr(self.gateway.service, "health", None)
        if service_health is None:
            return 200, {"status": "ok"}
        return 200, service_health()

    async def _traces(self, query: dict, headers: dict) -> tuple[int, dict]:
        """Recent request traces (newest first), or one trace by id."""
        obs = self._obs()
        if obs is None:
            return 200, {"traces": [], "stats": {}}
        trace_id = query.get("trace_id")
        if trace_id:
            trace = obs.tracer.find(trace_id[0])
            if trace is None:
                raise HTTPError(404, "not_found", f"no trace {trace_id[0]!r} in the ring")
            return 200, {"trace": trace}
        limit = self._int_param(query, "limit", default=20)
        return 200, {"traces": obs.tracer.recent(limit), "stats": obs.tracer.stats()}

    async def _events(self, query: dict, headers: dict) -> tuple[int, dict]:
        """The supervisor event timeline (oldest first)."""
        obs = self._obs()
        if obs is None:
            return 200, {"events": [], "stats": {}}
        limit = self._int_param(query, "limit", default=100)
        kind_values = query.get("kind")
        kind = kind_values[0] if kind_values else None
        return 200, {
            "events": obs.events.snapshot(limit=limit, kind=kind),
            "stats": obs.events.stats(),
        }

    async def _metrics(self, query: dict, headers: dict) -> tuple[int, dict | RawResponse]:
        snapshot = self.gateway.service.metrics_snapshot()
        snapshot["gateway"] = self.gateway.stats.as_dict()
        if "text/plain" not in headers.get("accept", ""):
            return 200, snapshot
        # Prometheus exposition: the obs registry renders its own instruments
        # (histograms with buckets, labelled counters, gauges); the legacy
        # JSON stats sections are projected in as extra flat gauges.  The
        # "latency"/"observability" sections are *views over the registry* —
        # flattening them too would export every series twice.
        obs = self._obs()
        projected: dict = {}
        for section in ("service", "runtime", "gateway", "closed"):
            if section in snapshot:
                flatten_numeric(f"repro_{section}", snapshot[section], projected)
        registry = obs.metrics if obs is not None else MetricsRegistry()
        text = registry.render_prometheus(extra_gauges=projected)
        return 200, RawResponse(PROMETHEUS_CONTENT_TYPE, text.encode())


# ------------------------------------------------------------------- client


async def request_raw(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """Minimal asyncio HTTP client (tests and demos; not a public API).

    Speaks exactly the dialect the server emits — one request per
    connection — and returns ``(status, response_headers, body_bytes)``
    with header names lowercased.  ``headers`` lets a caller set
    ``X-Request-ID`` or ``Accept: text/plain`` (the Prometheus scrape).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        status, response_headers, data = await _read_client_response(reader)
        return status, response_headers, data
    finally:
        await _close_writer(writer)


async def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict]:
    """:func:`request_raw` with the body parsed as JSON → ``(status, payload)``."""
    status, _, data = await request_raw(host, port, method, path, body, headers)
    return status, json.loads(data.decode() or "null")


async def _read_client_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    status_line = (await reader.readline()).decode("latin-1")
    if not status_line:
        raise ConnectionError("connection closed before a status line")
    status = int(status_line.split()[1])
    response_headers: dict[str, str] = {}
    while True:
        line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not line:
            break
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length", "0"))
    data = await reader.readexactly(length) if length else b""
    return status, response_headers, data


@dataclass
class _PooledConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    served: int = field(default=0)


class HTTPConnectionPool:
    """Keep-alive HTTP/1.1 client for one ``(host, port)`` target.

    The cluster router holds one pool per replica: sequential requests ride
    the same TCP connection (``Connection: keep-alive``) instead of paying
    connection setup per request; concurrent requests each open their own
    connection and up to ``max_idle`` of them are parked for reuse.

    A parked connection the server has since closed (request cap, idle
    timeout, restart) must not fail the request, so the exchange is retried
    on a fresh connection.  A failure on the *fresh* connection raises
    :class:`ConnectionError` — the caller's signal that the target itself is
    down (the router's cue to retry on the next replica in ring order).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_idle: int = 8,
        request_timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self.request_timeout = request_timeout
        self._idle: list[_PooledConnection] = []
        self._closed = False
        self.created = 0
        self.reused = 0

    async def request(
        self,
        method: str,
        path: str,
        body: dict | bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request/response exchange → ``(status, headers, body_bytes)``.

        ``body`` may be pre-serialised bytes (the router relays client
        payloads verbatim) or a JSON-able dict.
        """
        if self._closed:
            raise ConnectionError(f"pool for {self.host}:{self.port} is closed")
        payload = self._encode_body(body)
        while True:
            # Parked connections first (LIFO: the most recently used one is
            # the least likely to have idled out server-side), then fresh.
            conn = self._idle.pop() if self._idle else None
            fresh = conn is None
            if fresh:
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        self.request_timeout,
                    )
                except (OSError, asyncio.TimeoutError) as error:
                    raise ConnectionError(
                        f"cannot connect to {self.host}:{self.port}: "
                        f"{error or type(error).__name__}"
                    ) from error
                conn = _PooledConnection(reader, writer)
                self.created += 1
            try:
                status, response_headers, data = await asyncio.wait_for(
                    self._exchange(conn, method, path, payload, headers),
                    self.request_timeout,
                )
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                OSError,
            ) as error:
                await _close_writer(conn.writer)
                if fresh:
                    raise ConnectionError(
                        f"request to {self.host}:{self.port} failed: "
                        f"{error or type(error).__name__}"
                    ) from error
                continue  # stale parked connection; try again
            if not fresh:
                self.reused += 1
            conn.served += 1
            if (
                response_headers.get("connection", "").lower() == "keep-alive"
                and not self._closed
                and len(self._idle) < self.max_idle
            ):
                self._idle.append(conn)
            else:
                await _close_writer(conn.writer)
            return status, response_headers, data

    async def request_json(
        self,
        method: str,
        path: str,
        body: dict | bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        status, _, data = await self.request(method, path, body, headers)
        return status, json.loads(data.decode() or "null")

    async def _exchange(
        self,
        conn: _PooledConnection,
        method: str,
        path: str,
        payload: bytes,
        headers: dict[str, str] | None,
    ) -> tuple[int, dict[str, str], bytes]:
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        conn.writer.write(head.encode("latin-1") + payload)
        await conn.writer.drain()
        return await _read_client_response(conn.reader)

    @staticmethod
    def _encode_body(body: dict | bytes | None) -> bytes:
        if body is None:
            return b""
        if isinstance(body, (bytes, bytearray)):
            return bytes(body)
        return json.dumps(body, allow_nan=False).encode()

    def stats(self) -> dict:
        return {"created": self.created, "reused": self.reused, "idle": len(self._idle)}

    async def aclose(self) -> None:
        self._closed = True
        idle, self._idle = self._idle, []
        for conn in idle:
            await _close_writer(conn.writer)
