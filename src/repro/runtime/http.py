"""Stdlib-only HTTP front end over the async gateway.

One asyncio server (``asyncio.start_server`` — no new runtime dependencies)
exposes the :class:`~repro.runtime.gateway.AsyncPowerGateway` endpoints as
JSON over HTTP/1.1:

========  =========================  =============================================
method    path                       body / response
========  =========================  =============================================
POST      ``/v1/estimate``           one design point → one estimate
POST      ``/v1/estimate_many``      ``{"requests": [...]}`` → ``{"responses":
                                     [...]}``
POST      ``/v1/explore``            **deprecated** blocking explore (answers
                                     with a ``Deprecation`` header; internally
                                     a submit-and-wait over the jobs tier when
                                     one is mounted)
POST      ``/v1/jobs/explore``       submit an exploration job → ``202`` with
                                     the ``queued`` job snapshot
GET       ``/v1/jobs``               the job table (``?client=`` to filter)
GET       ``/v1/jobs/{id}``          one job's snapshot (state machine:
                                     ``queued → running → succeeded | failed |
                                     cancelled``)
GET       ``/v1/jobs/{id}/updates``  seq-numbered per-iteration updates;
                                     ``?since=N`` resumes, ``?wait=S``
                                     long-polls, ``?stream=1`` streams one
                                     JSON line per update over chunked
                                     transfer until the job finishes
POST      ``/v1/jobs/{id}/cancel``   cancel (queued dies now, running at the
                                     next iteration boundary)
GET       ``/v1/routes``             this table, machine-readable
                                     (:data:`~repro.runtime.routes
                                     .GATEWAY_ROUTES`)
GET       ``/v1/models``             the registry's manifest index
GET       ``/v1/traces``             recent request traces (``?limit=N`` /
                                     ``?trace_id=...`` for one span tree)
GET       ``/v1/events``             the supervisor event timeline (``?limit=N``
                                     / ``?kind=crash``)
GET       ``/healthz``               liveness + pool supervision (``200 ok`` /
                                     ``200 degraded`` / ``503 closed``)
GET       ``/metrics``               service + runtime + gateway + job stats;
                                     with ``Accept: text/plain`` the Prometheus
                                     text exposition instead of JSON
========  =========================  =============================================

The connection/parsing machinery lives in :class:`AsyncJSONHTTPServer` so
other front ends (the cluster router in :mod:`repro.cluster`) speak the exact
same dialect — status mapping, structured error bodies, request-id echoing,
body limits, chunked streaming — without re-implementing HTTP.  Routing
itself is data: both servers dispatch over the shared
:class:`~repro.runtime.routes.RouteTable` and serve it on ``GET /v1/routes``.

Observability (:mod:`repro.obs`) threads through every request: a
client-supplied ``X-Request-ID`` is honoured (one is minted otherwise) and
echoed on the response; POST API calls open a root ``request`` span whose
tree — gateway admission, coalesce, featurise (worker pids), cache lookups,
forward — lands in the ring ``GET /v1/traces`` serves; each request emits
one structured JSON log line and lands in the per-route counter/latency
histograms.  All of it degrades to no-ops for gateways over bare stub
services without an ``obs`` bundle.

A design point on the wire is the JSON shape of
:class:`~repro.hls.pragmas.DesignDirectives`::

    {"kernel": "atax",
     "directives": {"loops":  {"i": {"unroll": 2, "pipeline": true}},
                    "arrays": {"A": {"factor": 2, "kind": "cyclic"}}}}

Every failure is the unified envelope of :mod:`repro.runtime.errors` —
``{"error": {"type", "message", "retryable"}}`` — with the matching status
code: malformed requests are ``400``, unknown paths/jobs ``404``, wrong
methods ``405``, oversized bodies ``413``, gateway backpressure and job
quotas ``429``, internal faults ``500``, and a closed gateway ``503``.

Connections default to ``Connection: close`` (curl-able, byte-predictable).
A client that sends ``Connection: keep-alive`` may reuse its connection for
up to :data:`KEEP_ALIVE_MAX_REQUESTS` requests with at most
:data:`KEEP_ALIVE_IDLE_TIMEOUT` seconds of idleness between them; error
responses always close.  :class:`HTTPConnectionPool` is the matching client
— the cluster router holds one per replica so proxied requests skip
per-request TCP setup.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from typing import AsyncIterator
from urllib.parse import parse_qs

from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, flatten_numeric
from repro.runtime.errors import (
    HTTPError,
    error_payload,
    http_error_from_exception,
)
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.routes import GATEWAY_ROUTES, RouteTable
from repro.serve.wire import explore_report_to_json  # noqa: F401 - re-export;
# the blocking /v1/explore response and a finished job's checkpointed result
# are one wire shape, defined once in repro.serve.wire.

#: Largest accepted request body; a batch of a few thousand design points is
#: well under this, anything bigger is a client bug.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: How long a client may take to deliver one complete request.  Bounds the
#: damage of idle probes / slowloris connections: a handler task and its fd
#: are released after this instead of being pinned forever.
REQUEST_READ_TIMEOUT = 30.0

#: Keep-alive budget: a connection that opted in (``Connection: keep-alive``)
#: serves at most this many requests before the server closes it anyway, so
#: one client cannot pin a handler task forever.
KEEP_ALIVE_MAX_REQUESTS = 100

#: Idle window between requests on a kept-alive connection.  Expiry closes
#: the connection silently (no 408): an idle pooled client connection is
#: normal, not a protocol fault.  Deliberately much shorter than
#: ``REQUEST_READ_TIMEOUT`` — a parked connection holds a handler task.
KEEP_ALIVE_IDLE_TIMEOUT = 5.0

_STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


#: Content type of the Prometheus text exposition format (version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: How long one long-poll leg of an update stream may park before re-polling
#: (each leg rides a gateway bridge thread; bounded so a stream over a stuck
#: job cannot pin one forever without ever re-checking for shutdown).
STREAM_POLL_SECONDS = 10.0

#: Cap of the ``?wait=`` long-poll window clients may request.
MAX_LONG_POLL_SECONDS = 60.0

_HTTP_LOGGER = get_logger("http")


@dataclass
class RawResponse:
    """A non-JSON response body (the Prometheus exposition) with its type."""

    content_type: str
    body: bytes
    headers: dict[str, str] | None = None


@dataclass
class StreamingResponse:
    """A chunked-transfer response: one chunk per yielded bytes object.

    The connection always closes after the stream (chunked framing marks the
    end of the *body*; closing marks the end of the exchange — no keep-alive
    bookkeeping for an unbounded response).  The jobs API streams one JSON
    line per explorer update this way.
    """

    content_type: str
    chunks: AsyncIterator[bytes]
    headers: dict[str, str] | None = None


class _ConnectionClosed(Exception):
    """The peer closed the connection between requests (not an error)."""


def _clean_request_id(raw: str | None) -> str:
    """Echoable request id: client value sanitised, or a freshly minted one.

    Only printable non-whitespace ASCII survives (the id goes back out in a
    response *header* — CR/LF or control bytes from the client must never be
    reflected), bounded so a hostile header can't bloat every log line.
    """
    if raw:
        cleaned = "".join(ch for ch in raw if "!" <= ch <= "~")[:128]
        if cleaned:
            return cleaned
    return os.urandom(8).hex()


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


# ------------------------------------------------------------------ JSON codec


def _require(obj: dict, key: str, kind, where: str):
    if not isinstance(obj, dict):
        raise HTTPError(400, "bad_request", f"{where} must be a JSON object")
    if key not in obj:
        raise HTTPError(400, "bad_request", f"{where} is missing {key!r}")
    value = obj[key]
    if not isinstance(value, kind) or isinstance(value, bool):
        raise HTTPError(
            400, "bad_request", f"{where}[{key!r}] must be {kind.__name__}"
        )
    return value


def directives_from_json(obj: dict | None) -> DesignDirectives:
    """Parse the wire shape of a design point; raises 400 on malformed input.

    ``None`` / ``{}`` is the baseline design.  Validation errors from the
    directive dataclasses themselves (negative unroll factors, unknown
    partition kinds) surface as ``400`` too: a malformed design point is a
    client error, never a server fault.
    """
    if obj is None:
        obj = {}
    if not isinstance(obj, dict):
        raise HTTPError(400, "bad_request", "directives must be a JSON object")
    unknown = set(obj) - {"loops", "arrays"}
    if unknown:
        raise HTTPError(
            400, "bad_request", f"unknown directives keys {sorted(unknown)}"
        )
    for section in ("loops", "arrays"):
        if obj.get(section) is not None and not isinstance(obj[section], dict):
            raise HTTPError(400, "bad_request", f"{section} must be a JSON object")
    loops: dict[str, LoopPragmas] = {}
    for name, spec in (obj.get("loops") or {}).items():
        if not isinstance(spec, dict):
            raise HTTPError(400, "bad_request", f"loops[{name!r}] must be an object")
        bad_keys = set(spec) - {"unroll", "pipeline"}
        if bad_keys:
            # Strict here too: a typo'd pragma key silently ignored would
            # return a confident estimate of the wrong (baseline) design.
            raise HTTPError(
                400,
                "bad_request",
                f"unknown loops[{name!r}] keys {sorted(bad_keys)} "
                "(expected 'unroll', 'pipeline')",
            )
        unroll = spec.get("unroll", 1)
        pipeline = spec.get("pipeline", False)
        # Strict types: int(2.5) would silently estimate a *different* design.
        if isinstance(unroll, bool) or not isinstance(unroll, int):
            raise HTTPError(
                400, "bad_request", f"loops[{name!r}]['unroll'] must be an integer"
            )
        if not isinstance(pipeline, bool):
            raise HTTPError(
                400, "bad_request", f"loops[{name!r}]['pipeline'] must be a boolean"
            )
        try:
            loops[name] = LoopPragmas(unroll_factor=unroll, pipeline=pipeline)
        except ValueError as error:
            raise HTTPError(400, "bad_request", f"loops[{name!r}]: {error}") from error
    arrays: dict[str, ArrayPartition] = {}
    for name, spec in (obj.get("arrays") or {}).items():
        if not isinstance(spec, dict):
            raise HTTPError(400, "bad_request", f"arrays[{name!r}] must be an object")
        bad_keys = set(spec) - {"factor", "kind"}
        if bad_keys:
            raise HTTPError(
                400,
                "bad_request",
                f"unknown arrays[{name!r}] keys {sorted(bad_keys)} "
                "(expected 'factor', 'kind')",
            )
        factor = spec.get("factor", 1)
        kind = spec.get("kind", "cyclic")
        if isinstance(factor, bool) or not isinstance(factor, int):
            raise HTTPError(
                400, "bad_request", f"arrays[{name!r}]['factor'] must be an integer"
            )
        if not isinstance(kind, str):
            raise HTTPError(
                400, "bad_request", f"arrays[{name!r}]['kind'] must be a string"
            )
        try:
            arrays[name] = ArrayPartition(factor=factor, kind=kind)
        except ValueError as error:
            raise HTTPError(400, "bad_request", f"arrays[{name!r}]: {error}") from error
    return DesignDirectives.from_dicts(loops, arrays)


def directives_to_json(directives: DesignDirectives) -> dict:
    """Inverse of :func:`directives_from_json` (used by the demo client)."""
    return {
        "loops": {
            name: {"unroll": pragmas.unroll_factor, "pipeline": pragmas.pipeline}
            for name, pragmas in directives.loop_pragmas
        },
        "arrays": {
            name: {"factor": partition.factor, "kind": partition.kind}
            for name, partition in directives.array_partitions
        },
    }


def estimate_request_from_json(obj: dict):
    """Build an :class:`~repro.serve.service.EstimateRequest` from wire JSON."""
    from repro.serve.service import EstimateRequest

    kernel = _require(obj, "kernel", str, "request")
    unknown = set(obj) - {"kernel", "directives"}
    if unknown:
        raise HTTPError(400, "bad_request", f"unknown request keys {sorted(unknown)}")
    return EstimateRequest(
        kernel=kernel, directives=directives_from_json(obj.get("directives"))
    )


def response_to_json(response) -> dict:
    payload = {
        "kernel": response.kernel,
        "directives": response.directives,
        "power": response.power,
        "target": response.target,
        "cached_features": response.cached_features,
        "cached_prediction": response.cached_prediction,
        "latency_ms": response.latency_ms,
        "model_fingerprint": response.model_fingerprint,
    }
    # Only designs a deployment rule actually routed carry the attribution
    # key; everything else (no plan installed, or a design falling through
    # to the default model) keeps the pre-deployment wire shape byte for
    # byte.
    served_by = getattr(response, "served_by", None)
    if served_by is not None:
        payload["served_by"] = served_by
    return payload


# -------------------------------------------------------------------- server


class AsyncJSONHTTPServer:
    """Connection/protocol half of the HTTP front ends.

    Owns everything below routing: the accept loop, request parsing (with
    line/header/body limits), the opt-in keep-alive loop, structured error
    bodies, response serialisation and graceful drain-on-close.  Subclasses
    implement :meth:`_dispatch` (route the request, return
    ``(status, payload)``) and may override :meth:`_account` for per-request
    metrics.  :class:`GatewayHTTPServer` serves one gateway;
    :class:`repro.cluster.router.ClusterRouter` serves a replica set.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
        read_timeout: float = REQUEST_READ_TIMEOUT,
        keep_alive_max_requests: int = KEEP_ALIVE_MAX_REQUESTS,
        keep_alive_idle_s: float = KEEP_ALIVE_IDLE_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.read_timeout = read_timeout
        self.keep_alive_max_requests = keep_alive_max_requests
        self.keep_alive_idle_s = keep_alive_idle_s
        self._server: asyncio.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        # Handlers parked between requests (waiting for the next request
        # line), by task → transport.  aclose() closes these transports so a
        # kept-alive connection drains immediately instead of waiting out
        # its idle window.
        self._idle: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._closing = False

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (the norm in tests and demos);
        the bound port is also written back to ``self.port``.
        """
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        self._closing = True
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for idle_writer in list(self._idle.values()):
            idle_writer.close()
        # wait_closed does not cover connection handlers on 3.10/3.11; drain
        # them explicitly so every accepted request still gets its response.
        while self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)

    async def __aenter__(self):
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # --------------------------------------------------------------- handling

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            served = 0
            while True:
                started = time.perf_counter()
                method: str | None = None
                path: str | None = None
                request_id: str | None = None
                keep_alive = False
                try:
                    # The first request races the full read timeout (408 on
                    # expiry, same as ever); later requests on a kept-alive
                    # connection race the much shorter idle window and
                    # expire silently.
                    timeout = self.read_timeout if served == 0 else self.keep_alive_idle_s
                    if task is not None:
                        self._idle[task] = writer
                    try:
                        method, path, query, headers, body = await asyncio.wait_for(
                            self._read_request(reader), timeout=timeout
                        )
                    finally:
                        if task is not None:
                            self._idle.pop(task, None)
                    request_id = _clean_request_id(headers.get("x-request-id"))
                    keep_alive = (
                        headers.get("connection", "").strip().lower() == "keep-alive"
                        and served + 1 < self.keep_alive_max_requests
                        and not self._closing
                    )
                    status, payload = await self._dispatch(
                        method, path, query, headers, body, request_id
                    )
                except asyncio.TimeoutError:
                    if served:
                        return  # idle keep-alive connection: close quietly
                    status = 408
                    payload = error_payload(
                        408,
                        "timeout",
                        f"request not received within {self.read_timeout:.0f}s",
                    )
                except _ConnectionClosed:
                    return  # clean EOF between requests: nothing to answer
                except HTTPError as error:
                    keep_alive = False  # error responses always close
                    status = error.status
                    payload = error.payload()
                except Exception as error:  # noqa: BLE001 - boundary: every fault
                    # becomes a structured 500 instead of a dropped connection.
                    keep_alive = False
                    status = 500
                    payload = error_payload(
                        500, "internal", f"{type(error).__name__}: {error}"
                    )
                keep_alive = await self._write_response(
                    writer, status, payload, request_id=request_id, keep_alive=keep_alive
                )
                self._account(method, path, status, started, request_id)
                served += 1
                if not keep_alive or self._closing:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # Client went away mid-exchange; nothing to answer.
        finally:
            if task is not None:
                self._handlers.discard(task)
                self._idle.pop(task, None)
            await _close_writer(writer)

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
        request_id: str,
    ) -> tuple[int, dict | RawResponse]:
        raise NotImplementedError

    def _account(
        self,
        method: str | None,
        path: str | None,
        status: int,
        started: float,
        request_id: str | None,
    ) -> None:
        """Hook: per-request accounting (metrics, logs).  Default: none."""

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            return await self._read_request_inner(reader)
        except ValueError as error:
            # StreamReader raises ValueError past its 64 KiB line limit: an
            # oversized request line / header is the client's fault, not ours.
            raise HTTPError(400, "bad_request", f"unreadable request: {error}") from error

    async def _read_request_inner(self, reader: asyncio.StreamReader):
        request_line_bytes = await reader.readline()
        if not request_line_bytes:
            # Clean EOF before a request line: the peer closed a kept-alive
            # connection (or connected and never spoke) — not a protocol error.
            raise _ConnectionClosed
        request_line = request_line_bytes.decode("latin-1").rstrip("\r\n")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HTTPError(400, "bad_request", f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for _ in range(100):
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise HTTPError(400, "bad_request", "too many request headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise HTTPError(400, "bad_request", "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "bad_request", "malformed Content-Length")
        if length > self.max_body_bytes:
            raise HTTPError(
                413,
                "payload_too_large",
                f"body of {length} bytes exceeds the {self.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = path.partition("?")
        return method, path, parse_qs(query_string), headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | RawResponse | StreamingResponse,
        *,
        request_id: str | None = None,
        keep_alive: bool = False,
    ) -> bool:
        """Serialise and send; returns whether the connection stays open."""
        request_id_header = (
            f"X-Request-ID: {request_id}\r\n" if request_id is not None else ""
        )
        extra_headers = getattr(payload, "headers", None) or {}
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in extra_headers.items()
        )
        reason = _STATUS_REASONS.get(status, "Unknown")
        if isinstance(payload, StreamingResponse):
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {payload.content_type}\r\n"
                "Transfer-Encoding: chunked\r\n"
                f"{request_id_header}"
                f"{extra}"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1"))
            await writer.drain()
            # A fault mid-stream cannot become a status line any more (the
            # head is on the wire); closing without the 0-length terminal
            # chunk is the unambiguous truncation signal chunked framing
            # gives us.
            async for chunk in payload.chunks:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
            return False
        if isinstance(payload, RawResponse):
            body = payload.body
            content_type = payload.content_type
        else:
            content_type = "application/json"
            try:
                # allow_nan=False: strict JSON on the wire (NaN/Infinity leaks
                # become a structured 500 here instead of an unparsable body).
                body = json.dumps(payload, allow_nan=False).encode()
            except (TypeError, ValueError):
                status = 500
                reason = _STATUS_REASONS[500]
                keep_alive = False
                extra = ""
                body = json.dumps(
                    error_payload(500, "internal", "unserialisable response payload")
                ).encode()
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{request_id_header}"
            f"{extra}"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        return keep_alive

    @staticmethod
    def _deprecate(payload, successor: str | None):
        """Stamp the RFC-style ``Deprecation`` + successor ``Link`` headers."""
        headers = {"Deprecation": "true"}
        if successor:
            headers["Link"] = f'<{successor}>; rel="successor-version"'
        if isinstance(payload, (RawResponse, StreamingResponse)):
            payload.headers = {**(payload.headers or {}), **headers}
            return payload
        return RawResponse(
            "application/json",
            json.dumps(payload, allow_nan=False).encode(),
            headers=headers,
        )

    @staticmethod
    def _int_param(query: dict, name: str, default: int, minimum: int = 1) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            value = int(values[0])
        except ValueError:
            raise HTTPError(400, "bad_request", f"{name} must be an integer") from None
        if value < minimum:
            raise HTTPError(400, "bad_request", f"{name} must be >= {minimum}")
        return value

    @staticmethod
    def _float_param(query: dict, name: str, default: float | None) -> float | None:
        values = query.get(name)
        if not values:
            return default
        try:
            value = float(values[0])
        except ValueError:
            raise HTTPError(400, "bad_request", f"{name} must be a number") from None
        if value < 0:
            raise HTTPError(400, "bad_request", f"{name} must be >= 0")
        return value


class GatewayHTTPServer(AsyncJSONHTTPServer):
    """The asyncio HTTP server; one instance serves one gateway.

    ``registry`` is optional — without one, ``/v1/models`` answers with an
    empty index instead of failing (a service constructed straight from a
    fitted model has no registry to list).  The jobs API is served when the
    gateway carries a :class:`~repro.jobs.manager.JobManager` (``503
    jobs_disabled`` otherwise).
    """

    #: The route table this server dispatches over and serves on /v1/routes.
    routes_table: RouteTable = GATEWAY_ROUTES

    def __init__(
        self,
        gateway: AsyncPowerGateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        max_body_bytes: int = MAX_BODY_BYTES,
        read_timeout: float = REQUEST_READ_TIMEOUT,
        keep_alive_max_requests: int = KEEP_ALIVE_MAX_REQUESTS,
        keep_alive_idle_s: float = KEEP_ALIVE_IDLE_TIMEOUT,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            max_body_bytes=max_body_bytes,
            read_timeout=read_timeout,
            keep_alive_max_requests=keep_alive_max_requests,
            keep_alive_idle_s=keep_alive_idle_s,
        )
        self.gateway = gateway
        self.registry = registry

    async def aclose(self, *, close_gateway: bool = False) -> None:
        await super().aclose()
        if close_gateway:
            await self.gateway.aclose(close_service=True)

    # --------------------------------------------------------------- handling

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
        request_id: str,
    ) -> tuple[int, dict | RawResponse]:
        """Route the request, under a root ``request`` span for API calls.

        Only the POST endpoints open a root span: a scraped ``/metrics`` or
        ``/healthz`` probe every few seconds would otherwise wash the actual
        request traces out of the bounded ring.
        """
        obs = self._obs()
        tracer = obs.tracer if obs is not None else None
        if (
            tracer is None
            or not tracer.enabled
            or method != "POST"
            or not path.startswith("/v1/")
        ):
            return await self._route(method, path, query, headers, body)
        with tracer.span("request", method=method, path=path) as span:
            tracer.set_request_id(request_id)
            status, payload = await self._route(method, path, query, headers, body)
            span.set_attribute("status", status)
            return status, payload

    def _obs(self):
        # Duck-typed, same as the gateway: a bare stub service has no obs
        # bundle and the HTTP layer simply goes uninstrumented.
        return getattr(self.gateway.service, "obs", None)

    def _account(
        self,
        method: str | None,
        path: str | None,
        status: int,
        started: float,
        request_id: str | None,
    ) -> None:
        """Per-route counter + latency histogram + one structured log line."""
        obs = self._obs()
        if obs is None or method is None:
            return
        # Route patterns collapse path params (every /v1/jobs/<id> is one
        # label) and unknown paths share "other", so a scanner can't mint
        # unbounded label children in the registry.
        route = self.routes_table.metrics_label(path)
        elapsed = time.perf_counter() - started
        try:
            obs.http_requests.labels(path=route, status=str(status)).inc()
            obs.http_seconds.labels(path=route).observe(elapsed)
            log_event(
                _HTTP_LOGGER,
                "http.request",
                method=method,
                path=path,
                status=status,
                latency_ms=round(elapsed * 1e3, 3),
                request_id=request_id,
            )
        except Exception:  # noqa: BLE001 - accounting must never fail a request
            pass

    # ---------------------------------------------------------------- routing

    async def _route(
        self, method: str, path: str, query: dict, headers: dict, body: bytes
    ) -> tuple[int, dict | RawResponse | StreamingResponse]:
        route, params = self.routes_table.match(method, path)
        handler = getattr(self, f"_{route.name}")
        if route.method in ("POST", "PUT"):
            try:
                parsed = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise HTTPError(400, "bad_request", f"invalid JSON body: {error}") from error
            if parsed is None:
                parsed = {}
            if not isinstance(parsed, dict):
                raise HTTPError(400, "bad_request", "body must be a JSON object")
            status, payload = await handler(parsed, headers, params)
        else:
            status, payload = await handler(query, headers, params)
        if route.deprecated:
            payload = self._deprecate(payload, route.successor)
        return status, payload

    async def _call_gateway(self, coroutine):
        """Map the gateway's typed failures onto the unified error envelope."""
        try:
            return await coroutine
        except HTTPError:
            raise
        except Exception as error:  # noqa: BLE001 - typed mapping below;
            # anything unrecognised re-raises out of http_error_from_exception
            # for the boundary's generic 500.
            raise http_error_from_exception(error) from error

    def _jobs_manager(self):
        if self.gateway.jobs is None:
            raise HTTPError(
                503,
                "jobs_disabled",
                "the jobs API is not enabled on this server",
                retryable=False,
            )
        return self.gateway.jobs

    @staticmethod
    def _client_id(headers: dict, body: dict | None = None) -> str:
        """The quota identity of a submission: body field, else header."""
        if body is not None and body.get("client") is not None:
            client = body["client"]
            if not isinstance(client, str) or not client:
                raise HTTPError(400, "bad_request", "client must be a string")
            return client[:128]
        raw = headers.get("x-client-id", "")
        cleaned = "".join(ch for ch in raw if "!" <= ch <= "~")[:128]
        return cleaned or "default"

    async def _estimate(self, body: dict, headers: dict, params: dict) -> tuple[int, dict]:
        request = estimate_request_from_json(body)
        response = await self._call_gateway(self.gateway.estimate(request))
        return 200, response_to_json(response)

    async def _estimate_many(
        self, body: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        raw = _require(body, "requests", list, "body")
        requests = [estimate_request_from_json(item) for item in raw]
        responses = await self._call_gateway(self.gateway.estimate_many(requests))
        return 200, {"responses": [response_to_json(r) for r in responses]}

    @staticmethod
    def _explore_params(body: dict) -> tuple[str, float | None]:
        kernel = _require(body, "kernel", str, "body")
        unknown = set(body) - {"kernel", "budget", "client"}
        if unknown:
            raise HTTPError(400, "bad_request", f"unknown explore keys {sorted(unknown)}")
        budget = body.get("budget")
        if budget is not None and (
            isinstance(budget, bool) or not isinstance(budget, (int, float))
        ):
            raise HTTPError(400, "bad_request", "budget must be a number")
        return kernel, float(budget) if budget is not None else None

    async def _explore(self, body: dict, headers: dict, params: dict) -> tuple[int, dict]:
        """The deprecated blocking explore: a submit-and-wait over the jobs
        tier when one is mounted (identical results — the job path drives the
        same incremental explorer the direct call does), or the direct
        gateway call without one.  Either way the response carries the
        ``Deprecation`` header pointing at ``POST /v1/jobs/explore``."""
        kernel, budget = self._explore_params(body)
        if self.gateway.jobs is None:
            report = await self._call_gateway(self.gateway.explore(kernel, budget))
            return 200, explore_report_to_json(report)
        snapshot = await self._call_gateway(
            self.gateway.submit_job(
                kernel, budget=budget, client=self._client_id(headers, body)
            )
        )
        job_id = snapshot["job_id"]
        while snapshot["state"] not in ("succeeded", "failed", "cancelled"):
            if self._closing or self.gateway.closed:
                raise HTTPError(503, "closed", "server closed mid-explore")
            snapshot = await self._call_gateway(
                self.gateway.wait_job(job_id, timeout=1.0)
            )
        if snapshot["state"] == "succeeded":
            return 200, snapshot["result"]
        if snapshot["state"] == "cancelled":
            raise HTTPError(
                503, "job_cancelled", f"blocking explore job {job_id} was cancelled"
            )
        raise HTTPError(
            500, "job_failed", snapshot.get("error") or f"job {job_id} failed"
        )

    # ------------------------------------------------------------------- jobs

    async def _submit_explore_job(
        self, body: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        self._jobs_manager()
        kernel = _require(body, "kernel", str, "body")
        unknown = set(body) - {"kernel", "budget", "dse_config", "client"}
        if unknown:
            raise HTTPError(400, "bad_request", f"unknown job keys {sorted(unknown)}")
        budget = body.get("budget")
        if budget is not None and (
            isinstance(budget, bool) or not isinstance(budget, (int, float))
        ):
            raise HTTPError(400, "bad_request", "budget must be a number")
        dse_config = body.get("dse_config")
        if dse_config is not None and not isinstance(dse_config, dict):
            raise HTTPError(400, "bad_request", "dse_config must be a JSON object")
        if budget is not None and dse_config is not None:
            raise HTTPError(
                400, "bad_request", "pass either budget or dse_config, not both"
            )
        snapshot = await self._call_gateway(
            self.gateway.submit_job(
                kernel,
                budget=float(budget) if budget is not None else None,
                dse_config=dse_config,
                client=self._client_id(headers, body),
            )
        )
        return 202, snapshot

    async def _list_jobs(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        self._jobs_manager()
        client_values = query.get("client")
        client = client_values[0] if client_values else None
        jobs = await self._call_gateway(self.gateway.list_jobs(client))
        return 200, {"jobs": jobs}

    async def _get_job(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        self._jobs_manager()
        snapshot = await self._call_gateway(self.gateway.job(params["job_id"]))
        return 200, snapshot

    async def _job_updates(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, dict | StreamingResponse]:
        self._jobs_manager()
        job_id = params["job_id"]
        since = self._int_param(query, "since", default=0, minimum=0)
        stream = query.get("stream", ["0"])[0] not in ("", "0", "false")
        wait = self._float_param(query, "wait", default=None)
        if stream:
            # Resolve the job *before* committing to a 200 chunked head: an
            # unknown id must still be an ordinary 404 envelope.
            await self._call_gateway(self.gateway.job(job_id))
            return 200, StreamingResponse(
                "application/x-ndjson", self._stream_updates(job_id, since)
            )
        if wait is not None:
            payload = await self._call_gateway(
                self.gateway.wait_updates(
                    job_id, since, timeout=min(wait, MAX_LONG_POLL_SECONDS)
                )
            )
        else:
            payload = await self._call_gateway(self.gateway.job_updates(job_id, since))
        return 200, payload

    async def _stream_updates(self, job_id: str, since: int):
        """One JSON line per update, long-polling the manager underneath,
        until the terminal ``done`` update has been emitted."""
        while True:
            payload = await self._call_gateway(
                self.gateway.wait_updates(job_id, since, timeout=STREAM_POLL_SECONDS)
            )
            done = False
            for update in payload["updates"]:
                yield json.dumps(update, allow_nan=False).encode() + b"\n"
                done = done or update.get("event") == "done"
            since = payload["next_since"]
            if done:
                return
            if not payload["updates"] and payload["state"] not in ("queued", "running"):
                # Streaming resumed past the end of a finished log.
                return
            if self._closing or self.gateway.closed:
                return

    async def _cancel_job(self, body: dict, headers: dict, params: dict) -> tuple[int, dict]:
        self._jobs_manager()
        snapshot = await self._call_gateway(self.gateway.cancel_job(params["job_id"]))
        return 200, snapshot

    # ------------------------------------------------------------ deployments

    def _require_deployments(self) -> None:
        if getattr(self.gateway.service, "resolver", None) is None:
            raise HTTPError(
                503,
                "deployments_disabled",
                "deployments are not enabled: the service has no model registry",
                retryable=False,
            )

    @staticmethod
    def _deployment_pattern(body: dict) -> str | None:
        unknown = set(body) - {"pattern"}
        if unknown:
            raise HTTPError(
                400, "bad_request", f"unknown deployment keys {sorted(unknown)}"
            )
        pattern = body.get("pattern")
        if pattern is not None and (not isinstance(pattern, str) or not pattern):
            raise HTTPError(400, "bad_request", "pattern must be a non-empty string")
        return pattern

    async def _get_deployment(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        self._require_deployments()
        return 200, await self._call_gateway(self.gateway.get_deployment())

    async def _put_deployment(
        self, body: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        self._require_deployments()
        return 200, await self._call_gateway(self.gateway.put_deployment(body))

    async def _promote_deployment(
        self, body: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        self._require_deployments()
        pattern = self._deployment_pattern(body)
        return 200, await self._call_gateway(self.gateway.promote_deployment(pattern))

    async def _rollback_deployment(
        self, body: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        self._require_deployments()
        pattern = self._deployment_pattern(body)
        return 200, await self._call_gateway(self.gateway.rollback_deployment(pattern))

    async def _routes(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        return 200, {"version": "v1", "routes": self.routes_table.describe()}

    async def _models(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        if self.registry is None:
            return 200, {"models": []}
        loop = asyncio.get_running_loop()

        def list_index() -> list[dict]:
            return [
                {
                    "name": name,
                    "versions": self.registry.versions(name),
                    "latest": self.registry.latest_version(name),
                }
                for name in self.registry.list_models()
            ]

        # Registry listing touches the filesystem; keep it off the event loop.
        return 200, {"models": await loop.run_in_executor(None, list_index)}

    async def _healthz(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        """Liveness plus pool-supervision state.

        A pool in post-crash backoff (or retired to the serial path) turns
        the response *degraded*, not dead: still ``200`` — the service
        answers every request with identical results, only slower — with the
        per-pool health snapshots attached so an operator can see the fault,
        the restart budget and the current/target pool sizes.  Only a closed
        gateway/service is ``503``.
        """
        if self.gateway.closed:
            return 503, {"status": "closed"}
        service_health = getattr(self.gateway.service, "health", None)
        if service_health is None:
            return 200, {"status": "ok"}
        return 200, service_health()

    async def _traces(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        """Recent request traces (newest first), or one trace by id."""
        obs = self._obs()
        if obs is None:
            return 200, {"traces": [], "stats": {}}
        trace_id = query.get("trace_id")
        if trace_id:
            trace = obs.tracer.find(trace_id[0])
            if trace is None:
                raise HTTPError(404, "not_found", f"no trace {trace_id[0]!r} in the ring")
            return 200, {"trace": trace}
        limit = self._int_param(query, "limit", default=20)
        return 200, {"traces": obs.tracer.recent(limit), "stats": obs.tracer.stats()}

    async def _events(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        """The supervisor event timeline (oldest first)."""
        obs = self._obs()
        if obs is None:
            return 200, {"events": [], "stats": {}}
        limit = self._int_param(query, "limit", default=100)
        kind_values = query.get("kind")
        kind = kind_values[0] if kind_values else None
        return 200, {
            "events": obs.events.snapshot(limit=limit, kind=kind),
            "stats": obs.events.stats(),
        }

    async def _metrics(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, dict | RawResponse]:
        snapshot = self.gateway.service.metrics_snapshot()
        snapshot["gateway"] = self.gateway.stats.as_dict()
        if self.gateway.jobs is not None:
            snapshot["jobs"] = self.gateway.jobs.stats()
        if "text/plain" not in headers.get("accept", ""):
            return 200, snapshot
        # Prometheus exposition: the obs registry renders its own instruments
        # (histograms with buckets, labelled counters, gauges); the legacy
        # JSON stats sections are projected in as extra flat gauges.  The
        # "latency"/"observability" sections are *views over the registry* —
        # flattening them too would export every series twice.
        obs = self._obs()
        projected: dict = {}
        for section in ("service", "runtime", "gateway", "jobs", "closed"):
            if section in snapshot:
                flatten_numeric(f"repro_{section}", snapshot[section], projected)
        registry = obs.metrics if obs is not None else MetricsRegistry()
        text = registry.render_prometheus(extra_gauges=projected)
        return 200, RawResponse(PROMETHEUS_CONTENT_TYPE, text.encode())


# ------------------------------------------------------------------- client


async def request_raw(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """Minimal asyncio HTTP client (tests and demos; not a public API).

    Speaks exactly the dialect the server emits — one request per
    connection — and returns ``(status, response_headers, body_bytes)``
    with header names lowercased.  ``headers`` lets a caller set
    ``X-Request-ID`` or ``Accept: text/plain`` (the Prometheus scrape).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        status, response_headers, data = await _read_client_response(reader)
        return status, response_headers, data
    finally:
        await _close_writer(writer)


async def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict]:
    """:func:`request_raw` with the body parsed as JSON → ``(status, payload)``."""
    status, _, data = await request_raw(host, port, method, path, body, headers)
    return status, json.loads(data.decode() or "null")


async def _read_client_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    status, response_headers = await _read_client_head(reader)
    if response_headers.get("transfer-encoding", "").lower() == "chunked":
        data = b"".join([chunk async for chunk in _read_chunks(reader)])
        return status, response_headers, data
    length = int(response_headers.get("content-length", "0"))
    data = await reader.readexactly(length) if length else b""
    return status, response_headers, data


async def _read_client_head(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str]]:
    status_line = (await reader.readline()).decode("latin-1")
    if not status_line:
        raise ConnectionError("connection closed before a status line")
    status = int(status_line.split()[1])
    response_headers: dict[str, str] = {}
    while True:
        line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not line:
            break
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    return status, response_headers


async def _read_chunks(reader: asyncio.StreamReader):
    """Decode chunked transfer encoding, one yielded bytes object per chunk.

    A connection closed before the 0-length terminal chunk raises — chunked
    framing makes truncation detectable, and a half-delivered update stream
    must fail loudly, not look complete.
    """
    while True:
        size_line = (await reader.readline()).decode("latin-1").strip()
        if not size_line:
            raise ConnectionError("connection closed mid-stream (no terminal chunk)")
        size = int(size_line.split(";")[0], 16)
        if size == 0:
            await reader.readline()  # trailing CRLF after the terminal chunk
            return
        chunk = await reader.readexactly(size)
        await reader.readexactly(2)  # CRLF after each chunk
        yield chunk


async def stream_json_lines(
    host: str,
    port: int,
    path: str,
    headers: dict[str, str] | None = None,
):
    """Client half of the chunked update stream: yields one parsed JSON
    object per line as the server emits them (tests and demos).

    Raises :class:`~repro.runtime.errors.HTTPError` when the server answers
    with an error envelope instead of a stream.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        status, response_headers = await _read_client_head(reader)
        if response_headers.get("transfer-encoding", "").lower() != "chunked":
            length = int(response_headers.get("content-length", "0"))
            data = await reader.readexactly(length) if length else b""
            detail = json.loads(data.decode() or "{}").get("error", {})
            raise HTTPError(
                status,
                detail.get("type", "error"),
                detail.get("message", f"{path} answered {status} without a stream"),
                retryable=detail.get("retryable"),
            )
        buffer = b""
        async for chunk in _read_chunks(reader):
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                if line.strip():
                    yield json.loads(line.decode())
        if buffer.strip():
            yield json.loads(buffer.decode())
    finally:
        await _close_writer(writer)


@dataclass
class _PooledConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    served: int = field(default=0)


class HTTPConnectionPool:
    """Keep-alive HTTP/1.1 client for one ``(host, port)`` target.

    The cluster router holds one pool per replica: sequential requests ride
    the same TCP connection (``Connection: keep-alive``) instead of paying
    connection setup per request; concurrent requests each open their own
    connection and up to ``max_idle`` of them are parked for reuse.

    A parked connection the server has since closed (request cap, idle
    timeout, restart) must not fail the request, so the exchange is retried
    on a fresh connection.  A failure on the *fresh* connection raises
    :class:`ConnectionError` — the caller's signal that the target itself is
    down (the router's cue to retry on the next replica in ring order).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_idle: int = 8,
        request_timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self.request_timeout = request_timeout
        self._idle: list[_PooledConnection] = []
        self._closed = False
        self.created = 0
        self.reused = 0

    async def request(
        self,
        method: str,
        path: str,
        body: dict | bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request/response exchange → ``(status, headers, body_bytes)``.

        ``body`` may be pre-serialised bytes (the router relays client
        payloads verbatim) or a JSON-able dict.
        """
        if self._closed:
            raise ConnectionError(f"pool for {self.host}:{self.port} is closed")
        payload = self._encode_body(body)
        while True:
            # Parked connections first (LIFO: the most recently used one is
            # the least likely to have idled out server-side), then fresh.
            conn = self._idle.pop() if self._idle else None
            fresh = conn is None
            if fresh:
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        self.request_timeout,
                    )
                except (OSError, asyncio.TimeoutError) as error:
                    raise ConnectionError(
                        f"cannot connect to {self.host}:{self.port}: "
                        f"{error or type(error).__name__}"
                    ) from error
                conn = _PooledConnection(reader, writer)
                self.created += 1
            try:
                status, response_headers, data = await asyncio.wait_for(
                    self._exchange(conn, method, path, payload, headers),
                    self.request_timeout,
                )
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                OSError,
            ) as error:
                await _close_writer(conn.writer)
                if fresh:
                    raise ConnectionError(
                        f"request to {self.host}:{self.port} failed: "
                        f"{error or type(error).__name__}"
                    ) from error
                continue  # stale parked connection; try again
            if not fresh:
                self.reused += 1
            conn.served += 1
            if (
                response_headers.get("connection", "").lower() == "keep-alive"
                and not self._closed
                and len(self._idle) < self.max_idle
            ):
                self._idle.append(conn)
            else:
                await _close_writer(conn.writer)
            return status, response_headers, data

    async def request_json(
        self,
        method: str,
        path: str,
        body: dict | bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict]:
        status, _, data = await self.request(method, path, body, headers)
        return status, json.loads(data.decode() or "null")

    async def _exchange(
        self,
        conn: _PooledConnection,
        method: str,
        path: str,
        payload: bytes,
        headers: dict[str, str] | None,
    ) -> tuple[int, dict[str, str], bytes]:
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        conn.writer.write(head.encode("latin-1") + payload)
        await conn.writer.drain()
        return await _read_client_response(conn.reader)

    @staticmethod
    def _encode_body(body: dict | bytes | None) -> bytes:
        if body is None:
            return b""
        if isinstance(body, (bytes, bytearray)):
            return bytes(body)
        return json.dumps(body, allow_nan=False).encode()

    def stats(self) -> dict:
        return {"created": self.created, "reused": self.reused, "idle": len(self._idle)}

    async def aclose(self) -> None:
        self._closed = True
        idle, self._idle = self._idle, []
        for conn in idle:
            await _close_writer(conn.writer)
