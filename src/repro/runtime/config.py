"""Configuration of the parallel serving runtime.

One frozen dataclass carries every knob of the runtime components —
the compute backend of the packed forward (:mod:`repro.backend`), the
featurisation :class:`~repro.runtime.pool.WorkerPool`, the pooled-forward
:class:`~repro.runtime.pool.ForwardPool`, the
:class:`~repro.runtime.microbatch.MicroBatcher` request coalescer and the
:class:`~repro.runtime.cache.PersistentCache` disk tier — so
:class:`~repro.serve.service.PowerEstimationService` can be handed a single
``runtime=RuntimeConfig(...)`` argument.  The defaults disable everything:
a service constructed without a runtime config behaves exactly like the
serial, in-memory-cached service of PR 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the parallel serving runtime (all off by default)."""

    #: Compute backend of the packed mega-graph forward (``"numpy"`` /
    #: ``"optimized"``); ``None`` defers to ``$REPRO_BACKEND`` and finally the
    #: ``numpy`` reference.  In their default (auto) configuration the
    #: shipped backends are bitwise-identical on the forward path, so the
    #: selection only changes speed, never predictions — EXCEPT under the
    #: explicit accelerator-tier opt-ins: ``REPRO_BACKEND_ACCEL=torch``
    #: trades the guarantee for torch GEMMs (bit-identity then depends on
    #: numpy and torch linking the same BLAS) and
    #: ``REPRO_BACKEND_ACCEL=f32`` runs inference single-precision within
    #: the backend's advertised ``tolerance`` (see
    #: :mod:`repro.backend.optimized`).  Don't mix those opt-ins with a
    #: persistent prediction cache written under a different backend
    #: configuration.
    backend: str | None = None

    #: Number of featurisation worker processes; 0 or 1 keeps featurisation
    #: serial in the service process.  With autoscaling enabled (see
    #: ``num_workers_max``) this is the pool's *starting* size.
    num_workers: int = 0
    #: Autoscaling floor of the featurisation pool (0 defers to
    #: ``num_workers``, or 2 when only ``num_workers_max`` is set).
    num_workers_min: int = 0
    #: Autoscaling ceiling of the featurisation pool; 0 or 1 disables
    #: autoscaling (the pool stays fixed at ``num_workers``).  Setting it > 1
    #: enables the pool even when ``num_workers`` is unset: the supervisor
    #: then grows from the floor under queued ``estimate_many`` bursts and
    #: shrinks back when traffic goes idle.
    num_workers_max: int = 0
    #: Scale-up watermark: grow the pool when the designs in flight exceed
    #: this many per current worker.  Must exceed the scale-down watermark —
    #: the gap is the hysteresis band that stops burst/idle flapping.
    autoscale_up_queue_per_worker: float = 4.0
    #: Scale-down watermark: a batch admitted with at most this many designs
    #: in flight per worker counts toward the idle streak.
    autoscale_down_queue_per_worker: float = 1.0
    #: Consecutive low-pressure batches before the pool shrinks one worker.
    autoscale_down_patience: int = 4

    #: How many times a supervised pool (featurisation or forward) may be
    #: restarted after a worker crash before it retires to the serial path
    #: for the rest of the service's life.  0 restores the old one-strike
    #: policy.
    pool_max_restarts: int = 3
    #: Base of the exponential backoff between pool restarts, in seconds
    #: (restart ``k`` waits ``base * 2**(k-1)``, capped at 2 s).
    pool_restart_backoff_s: float = 0.05
    #: Restart-budget decay window, in seconds: every full window of
    #: fault-free operation refunds one consumed restart, so a long-lived
    #: pool is only retired by faults clustered in time, never by
    #: ``pool_max_restarts`` transient faults spread over weeks.  0 (the
    #: default) disables decay — the budget is then for the process lifetime.
    pool_restart_budget_decay_s: float = 0.0
    #: Multiprocessing start method (``"fork"`` / ``"spawn"`` /
    #: ``"forkserver"``); ``None`` picks ``fork`` where available (cheap, and
    #: the workers rebuild their generator anyway) and ``spawn`` elsewhere.
    start_method: str | None = None
    #: Below ``num_workers * min_designs_per_worker`` featurisation misses a
    #: batch stays serial: sharding two designs across four processes costs
    #: more in IPC than it saves.
    min_designs_per_worker: int = 2

    #: Number of pooled-forward worker processes; 0 or 1 keeps the packed
    #: forward in the service process.  Only engages for ensemble models with
    #: at least ``forward_min_members`` members (weights are published once
    #: as a read-only shared-memory block; see
    #: :class:`~repro.runtime.pool.ForwardPool`).
    forward_workers: int = 0
    #: Ensembles smaller than this do not shard the *member* axis: sharding
    #: a handful of members across processes costs more in IPC than the
    #: forwards themselves.  (Batches may still shard the graph axis — see
    #: ``forward_shard_axis``.)
    forward_min_members: int = 8
    #: Which axis of the packed forward the pool shards: ``"members"`` (one
    #: contiguous member slice per worker), ``"graphs"`` (every member over a
    #: contiguous graph slice of the pack — the lever for large batches on
    #: small ensembles and single-model flows) or ``"auto"`` (members when
    #: the ensemble has at least ``forward_min_members``, otherwise graphs
    #: for batches of at least ``forward_min_graphs`` designs).  Any choice
    #: is bitwise-identical to the serial forward.
    forward_shard_axis: str = "auto"
    #: Batches smaller than this do not shard the *graph* axis: slicing a
    #: handful of graphs across processes costs more in IPC than the pack's
    #: forward.
    forward_min_graphs: int = 8

    #: Maximum coalesced batch: the micro-batcher flushes as soon as this many
    #: single-design ``estimate`` calls have gathered.
    coalesce_max_batch: int = 16
    #: How long (milliseconds) the first request of a batch may wait for
    #: company before the batch flushes anyway.  0 disables coalescing:
    #: ``estimate`` calls run directly.
    coalesce_window_ms: float = 0.0

    #: Directory of the persistent second cache tier; ``None`` disables it.
    persistent_cache_dir: str | Path | None = None
    #: Byte budget of the on-disk sample store; the cost-aware eviction policy
    #: keeps total sample bytes under this.
    persistent_cache_max_bytes: int = 256 * 1024 * 1024

    #: Whether the service records request traces (:mod:`repro.obs.trace`).
    #: On by default: the per-span cost is sub-microsecond (gated by
    #: ``benchmarks/test_obs_overhead.py``) and predictions are bitwise-
    #: identical either way — tracing is side-band by construction.
    tracing: bool = True
    #: Completed traces kept in the in-memory ring ``GET /v1/traces`` serves.
    trace_ring: int = 128
    #: Pool lifecycle events kept in the timeline ``GET /v1/events`` serves.
    event_ring: int = 512

    #: Admission-control limit of the async gateway: the maximum number of
    #: designs that may be in flight (submitted, not yet answered) at once.
    #: A submission that would exceed it fast-fails with
    #: :class:`~repro.runtime.gateway.GatewayBackpressureError` instead of
    #: queueing unboundedly.
    gateway_max_in_flight: int = 1024
    #: Size of the gateway's bridge thread pool.  Each thread carries one
    #: blocking service call at a time, so this bounds how many concurrent
    #: requests can park in the micro-batcher (and therefore the largest
    #: coalesced batch the gateway can produce).
    gateway_threads: int = 32

    #: Durable checkpoint directory of the async job service; ``None`` defers
    #: to ``<persistent_cache_dir>/jobs`` (when persistence is enabled) and
    #: finally to memory-only jobs that do not survive a restart.
    jobs_dir: str | Path | None = None
    #: Bound of the job table (live + finished records).  Finished jobs are
    #: evicted oldest-first to admit new ones; a table full of *live* jobs is
    #: typed backpressure (429 ``job_table_full``).
    max_jobs: int = 64
    #: Active (queued + running) jobs one client may hold; the excess
    #: submission fast-fails with the 429 ``job_quota`` envelope.
    max_jobs_per_client: int = 4
    #: Runner threads draining the job queues (each carries one exploration
    #: at a time, stepping it iteration by iteration).
    job_runners: int = 2
    #: Sleep between job iterations, in seconds.  0 (the default) runs flat
    #: out; a positive value throttles jobs — the knob chaos/latency tests
    #: use to pin a job mid-flight deterministically.
    job_step_delay_s: float = 0.0
    #: Bound of the deployment resolver's read-through artifact cache: how
    #: many *non-default* model artifacts (plan champions/challengers) stay
    #: loaded at once.  The ambient default model is pinned outside the
    #: cache; evictions past the bound reload weights from the registry on
    #: next use (and surface as ``artifact_evicted`` events).
    deploy_artifact_cache_entries: int = 4

    def __post_init__(self) -> None:
        if self.backend is not None:
            from repro.backend import resolve_backend_name

            resolve_backend_name(self.backend)  # raises on unknown names
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.num_workers_min < 0 or self.num_workers_max < 0:
            raise ValueError("num_workers_min/num_workers_max must be >= 0")
        if self.num_workers_max > 1:
            low, high, start = self.featurisation_worker_bounds()
            if low > high:
                # Blame the field the floor actually came from: an unset
                # num_workers_min defers to num_workers.
                source = (
                    "num_workers_min" if self.num_workers_min > 1 else "num_workers"
                )
                raise ValueError(f"{source}={low} exceeds num_workers_max={high}")
            assert low <= start <= high
        elif self.num_workers_min > 1:
            # A floor without a pool to apply it to is a misconfiguration,
            # not a silent no-op: the operator asked for >= N workers.
            if self.num_workers <= 1:
                raise ValueError(
                    "num_workers_min requires num_workers or num_workers_max "
                    "to enable the pool"
                )
            if self.num_workers < self.num_workers_min:
                raise ValueError("num_workers is below num_workers_min")
        if self.autoscale_up_queue_per_worker <= self.autoscale_down_queue_per_worker:
            raise ValueError(
                "autoscale_up_queue_per_worker must exceed "
                "autoscale_down_queue_per_worker (the hysteresis band)"
            )
        if self.autoscale_down_queue_per_worker <= 0:
            raise ValueError("autoscale_down_queue_per_worker must be > 0")
        if self.autoscale_down_patience < 1:
            raise ValueError("autoscale_down_patience must be >= 1")
        if self.pool_max_restarts < 0:
            raise ValueError("pool_max_restarts must be >= 0")
        if self.pool_restart_backoff_s < 0:
            raise ValueError("pool_restart_backoff_s must be >= 0")
        if self.pool_restart_budget_decay_s < 0:
            raise ValueError("pool_restart_budget_decay_s must be >= 0")
        if self.forward_workers < 0:
            raise ValueError("forward_workers must be >= 0")
        if self.forward_min_members < 2:
            raise ValueError("forward_min_members must be >= 2")
        if self.forward_shard_axis not in ("auto", "members", "graphs"):
            raise ValueError(
                "forward_shard_axis must be auto, members or graphs"
            )
        if self.forward_min_graphs < 2:
            raise ValueError("forward_min_graphs must be >= 2")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start method {self.start_method!r}")
        if self.min_designs_per_worker < 1:
            raise ValueError("min_designs_per_worker must be >= 1")
        if self.coalesce_max_batch < 1:
            raise ValueError("coalesce_max_batch must be >= 1")
        if self.coalesce_window_ms < 0:
            raise ValueError("coalesce_window_ms must be >= 0")
        if self.persistent_cache_max_bytes < 1:
            raise ValueError("persistent_cache_max_bytes must be >= 1")
        if self.trace_ring < 1:
            raise ValueError("trace_ring must be >= 1")
        if self.event_ring < 1:
            raise ValueError("event_ring must be >= 1")
        if self.gateway_max_in_flight < 1:
            raise ValueError("gateway_max_in_flight must be >= 1")
        if self.gateway_threads < 1:
            raise ValueError("gateway_threads must be >= 1")
        if self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        if self.max_jobs_per_client < 1:
            raise ValueError("max_jobs_per_client must be >= 1")
        if self.job_runners < 1:
            raise ValueError("job_runners must be >= 1")
        if self.job_step_delay_s < 0:
            raise ValueError("job_step_delay_s must be >= 0")
        if self.deploy_artifact_cache_entries < 1:
            raise ValueError("deploy_artifact_cache_entries must be >= 1")

    @property
    def parallel_featurisation(self) -> bool:
        return self.num_workers > 1 or self.num_workers_max > 1

    def featurisation_worker_bounds(self) -> tuple[int, int, int]:
        """Resolved ``(min, max, start)`` worker counts of the supervised pool.

        Without ``num_workers_max`` the pool is fixed at ``num_workers``
        (min == max == start: autoscaling off, supervision still on).  An
        unset ``num_workers_min`` defers to ``num_workers`` — the operator's
        start size is the floor, autoscaling only grows from it — and to the
        2-worker minimum when only ``num_workers_max`` is given.
        """
        if self.num_workers_max > 1:
            if self.num_workers_min > 1:
                low = self.num_workers_min
            elif self.num_workers > 1:
                low = self.num_workers
            else:
                low = 2
            high = self.num_workers_max
            start = self.num_workers if self.num_workers > 1 else low
            return low, high, min(max(start, low), max(high, low))
        return self.num_workers, self.num_workers, self.num_workers

    @property
    def parallel_forward(self) -> bool:
        return self.forward_workers > 1

    @property
    def coalescing_enabled(self) -> bool:
        return self.coalesce_window_ms > 0

    @property
    def persistence_enabled(self) -> bool:
        return self.persistent_cache_dir is not None
