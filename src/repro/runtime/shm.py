"""Read-only shared-memory blocks for pooled prediction.

Two kinds of segment live here, both with the same create/attach/unlink
lifecycle:

* :class:`SharedParameterBlock` — a fitted ensemble's weights.  Immutable for
  the pool's lifetime, so sharding its packed forward across worker processes
  must not re-pickle megabytes of parameters into every task: every member's
  parameter tensors are serialised once into a single
  ``multiprocessing.shared_memory`` segment; workers attach by name (a short
  string that travels in the pool initializer) and map each parameter back as
  a **read-only numpy view** — zero copies, zero per-task weight pickling,
  one physical copy of the ensemble no matter how many workers run.
* :class:`SharedArrayBundle` — one packed mega-graph batch's arrays (node /
  edge features, edge index, relation types, graph assignment, metadata).
  Published per chunk by the forward pool so that *tasks* carry only a tiny
  picklable :class:`ArrayBundleSpec` plus slice bounds: workers attach and
  view instead of unpickling the packed batch once per shard, which is what
  makes graph-axis sharding of large single-model batches pay off.

Layout: parameters are packed back to back as contiguous float64 in
``(member, parameter)`` traversal order — the order
:meth:`repro.nn.layers.Module.parameters` yields, which is deterministic for
identically constructed models, so the worker's freshly built members accept
the views positionally.  The picklable :class:`ParameterBlockSpec` carries
the segment name plus every parameter's shape.

Lifecycle: the creating process owns the segment and must call
:meth:`SharedParameterBlock.unlink` when its pool closes; workers only ever
:func:`attach_parameter_block` and drop their maps on exit.  On Python 3.13+
the attach is untracked (``track=False``); on older versions the attach's
``resource_tracker`` registration is a harmless duplicate *because the
attachers are multiprocessing children of the creator* — fork and spawn
workers both inherit the parent's tracker process, so the duplicate add is a
set no-op and only the owner's ``unlink`` ever unregisters the name.
(Attaching from an unrelated process on <= 3.12 would invite the well-known
tracker-unlinks-on-exit wart; the pools here never do that.)
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class ParameterBlockSpec:
    """Picklable description of one shared parameter segment.

    ``member_shapes[m][p]`` is the shape of member ``m``'s parameter ``p``;
    offsets are implied by packing order, so the spec stays tiny (it rides in
    the worker-pool initializer, not in per-task payloads).
    """

    shm_name: str
    member_shapes: tuple[tuple[tuple[int, ...], ...], ...]
    #: Content fingerprint of the model whose weights the segment snapshots
    #: (``None`` when the creator has no fingerprint).  Provenance for
    #: diagnostics under deployment plans — which artifact a worker's
    #: attached weights belong to — never consulted by the forward itself.
    fingerprint: str | None = None

    @property
    def num_members(self) -> int:
        return len(self.member_shapes)

    @property
    def total_elements(self) -> int:
        return sum(
            int(np.prod(shape, dtype=np.int64))
            for member in self.member_shapes
            for shape in member
        )


def _views_from_buffer(
    buffer, spec: ParameterBlockSpec, writeable: bool
) -> list[list[np.ndarray]]:
    """Slice the flat segment back into per-member parameter views."""
    flat = np.frombuffer(buffer, dtype=np.float64, count=spec.total_elements)
    views: list[list[np.ndarray]] = []
    offset = 0
    for member in spec.member_shapes:
        member_views: list[np.ndarray] = []
        for shape in member:
            size = int(np.prod(shape, dtype=np.int64))
            view = flat[offset : offset + size].reshape(shape)
            view.flags.writeable = writeable
            member_views.append(view)
            offset += size
        views.append(member_views)
    return views


class SharedParameterBlock:
    """Owning handle of one shared-memory parameter segment (creator side)."""

    def __init__(self, spec: ParameterBlockSpec, shm: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm = shm

    @staticmethod
    def create(
        member_parameters: list[list[np.ndarray]],
        *,
        fingerprint: str | None = None,
    ) -> "SharedParameterBlock":
        """Pack every member's parameters into a fresh shared segment."""
        if not member_parameters or not any(member_parameters):
            raise ValueError("cannot share an empty parameter set")
        shapes = tuple(
            tuple(tuple(int(d) for d in array.shape) for array in member)
            for member in member_parameters
        )
        total = sum(array.size for member in member_parameters for array in member)
        shm = shared_memory.SharedMemory(create=True, size=max(total * 8, 1))
        spec = ParameterBlockSpec(
            shm_name=shm.name, member_shapes=shapes, fingerprint=fingerprint
        )
        views = _views_from_buffer(shm.buf, spec, writeable=True)
        for member_views, member in zip(views, member_parameters):
            for view, array in zip(member_views, member):
                view[...] = np.asarray(array, dtype=np.float64)
        return SharedParameterBlock(spec, shm)

    @property
    def nbytes(self) -> int:
        return self.spec.total_elements * 8

    def views(self) -> list[list[np.ndarray]]:
        """Read-only in-process views (the serial path can share them too)."""
        return _views_from_buffer(self._shm.buf, self.spec, writeable=False)

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Release the segment (idempotent; owner-side teardown)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


# ------------------------------------------------------------ array bundles

#: Alignment of each array inside a bundle segment.  16 bytes keeps every
#: view's base pointer SIMD-aligned regardless of the preceding array's size.
_BUNDLE_ALIGN = 16


def _aligned(offset: int) -> int:
    return (offset + _BUNDLE_ALIGN - 1) // _BUNDLE_ALIGN * _BUNDLE_ALIGN


@dataclass(frozen=True)
class ArrayBundleSpec:
    """Picklable description of one shared array-bundle segment.

    ``fields`` holds ``(name, shape, dtype-str)`` per array in packing order;
    offsets are implied (each array starts at the next 16-byte boundary), so
    the spec stays a few hundred bytes no matter how large the batch is — it
    rides in every per-shard task payload.
    """

    shm_name: str
    fields: tuple[tuple[str, tuple[int, ...], str], ...]

    def layout(self) -> tuple[list[tuple[str, tuple[int, ...], np.dtype, int]], int]:
        """Per-field ``(name, shape, dtype, byte offset)`` plus total bytes."""
        entries: list[tuple[str, tuple[int, ...], np.dtype, int]] = []
        offset = 0
        for name, shape, dtype_str in self.fields:
            dtype = np.dtype(dtype_str)
            offset = _aligned(offset)
            entries.append((name, shape, dtype, offset))
            offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        return entries, offset

    @property
    def nbytes(self) -> int:
        return self.layout()[1]


def _bundle_views_from_buffer(
    buffer, spec: ArrayBundleSpec, writeable: bool
) -> dict[str, np.ndarray]:
    """Map the flat segment back into named array views."""
    views: dict[str, np.ndarray] = {}
    entries, _ = spec.layout()
    for name, shape, dtype, offset in entries:
        size = int(np.prod(shape, dtype=np.int64))
        view = np.frombuffer(buffer, dtype=dtype, count=size, offset=offset).reshape(
            shape
        )
        view.flags.writeable = writeable
        views[name] = view
    return views


class SharedArrayBundle:
    """Owning handle of one shared array-bundle segment (creator side)."""

    def __init__(self, spec: ArrayBundleSpec, shm: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm = shm

    @staticmethod
    def create(arrays: dict[str, np.ndarray]) -> "SharedArrayBundle":
        """Copy the named arrays into a fresh shared segment, in dict order."""
        if not arrays:
            raise ValueError("cannot share an empty array bundle")
        fields = tuple(
            (name, tuple(int(d) for d in np.asarray(array).shape), np.asarray(array).dtype.str)
            for name, array in arrays.items()
        )
        probe = ArrayBundleSpec(shm_name="", fields=fields)
        total = probe.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        spec = ArrayBundleSpec(shm_name=shm.name, fields=fields)
        views = _bundle_views_from_buffer(shm.buf, spec, writeable=True)
        for name, array in arrays.items():
            views[name][...] = np.asarray(array)
        return SharedArrayBundle(spec, shm)

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes

    def views(self) -> dict[str, np.ndarray]:
        """Read-only in-process views (the creating process can share too)."""
        return _bundle_views_from_buffer(self._shm.buf, self.spec, writeable=False)

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Release the segment (idempotent; owner-side teardown)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def attach_array_bundle(
    spec: ArrayBundleSpec,
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Worker-side attach: map the segment and return read-only named views.

    Same contract and tracker notes as :func:`attach_parameter_block`: keep
    the returned handle referenced while the views are in use, and never
    unlink from the attaching side.
    """
    try:
        shm = shared_memory.SharedMemory(name=spec.shm_name, track=False)
    except TypeError:  # Python < 3.13: no track flag (see module docstring).
        shm = shared_memory.SharedMemory(name=spec.shm_name)
    return shm, _bundle_views_from_buffer(shm.buf, spec, writeable=False)


def attach_parameter_block(
    spec: ParameterBlockSpec,
) -> tuple[shared_memory.SharedMemory, list[list[np.ndarray]]]:
    """Worker-side attach: map the segment and return read-only views.

    The returned ``SharedMemory`` handle must stay referenced as long as the
    views are used (the views borrow its buffer).  The attach is untracked
    where the stdlib allows it (3.13+); on older versions the registration
    lands in the creator's shared tracker as a duplicate no-op (see the
    module docstring), so the worker's exit cannot unlink a segment it does
    not own.
    """
    try:
        shm = shared_memory.SharedMemory(name=spec.shm_name, track=False)
    except TypeError:  # Python < 3.13: no track flag (see module docstring).
        shm = shared_memory.SharedMemory(name=spec.shm_name)
    return shm, _views_from_buffer(shm.buf, spec, writeable=False)
