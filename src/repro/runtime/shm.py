"""Read-only shared-memory parameter blocks for pooled prediction.

A fitted ensemble's weights are immutable, so sharding its packed forward
across worker processes must not re-pickle megabytes of parameters into every
task.  :class:`SharedParameterBlock` serialises every member's parameter
tensors once into a single ``multiprocessing.shared_memory`` segment; workers
attach by name (a short string that travels in the pool initializer) and map
each parameter back as a **read-only numpy view** — zero copies, zero
per-task weight pickling, one physical copy of the ensemble no matter how
many workers run.

Layout: parameters are packed back to back as contiguous float64 in
``(member, parameter)`` traversal order — the order
:meth:`repro.nn.layers.Module.parameters` yields, which is deterministic for
identically constructed models, so the worker's freshly built members accept
the views positionally.  The picklable :class:`ParameterBlockSpec` carries
the segment name plus every parameter's shape.

Lifecycle: the creating process owns the segment and must call
:meth:`SharedParameterBlock.unlink` when its pool closes; workers only ever
:func:`attach_parameter_block` and drop their maps on exit.  On Python 3.13+
the attach is untracked (``track=False``); on older versions the attach's
``resource_tracker`` registration is a harmless duplicate *because the
attachers are multiprocessing children of the creator* — fork and spawn
workers both inherit the parent's tracker process, so the duplicate add is a
set no-op and only the owner's ``unlink`` ever unregisters the name.
(Attaching from an unrelated process on <= 3.12 would invite the well-known
tracker-unlinks-on-exit wart; the pools here never do that.)
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class ParameterBlockSpec:
    """Picklable description of one shared parameter segment.

    ``member_shapes[m][p]`` is the shape of member ``m``'s parameter ``p``;
    offsets are implied by packing order, so the spec stays tiny (it rides in
    the worker-pool initializer, not in per-task payloads).
    """

    shm_name: str
    member_shapes: tuple[tuple[tuple[int, ...], ...], ...]

    @property
    def num_members(self) -> int:
        return len(self.member_shapes)

    @property
    def total_elements(self) -> int:
        return sum(
            int(np.prod(shape, dtype=np.int64))
            for member in self.member_shapes
            for shape in member
        )


def _views_from_buffer(
    buffer, spec: ParameterBlockSpec, writeable: bool
) -> list[list[np.ndarray]]:
    """Slice the flat segment back into per-member parameter views."""
    flat = np.frombuffer(buffer, dtype=np.float64, count=spec.total_elements)
    views: list[list[np.ndarray]] = []
    offset = 0
    for member in spec.member_shapes:
        member_views: list[np.ndarray] = []
        for shape in member:
            size = int(np.prod(shape, dtype=np.int64))
            view = flat[offset : offset + size].reshape(shape)
            view.flags.writeable = writeable
            member_views.append(view)
            offset += size
        views.append(member_views)
    return views


class SharedParameterBlock:
    """Owning handle of one shared-memory parameter segment (creator side)."""

    def __init__(self, spec: ParameterBlockSpec, shm: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm = shm

    @staticmethod
    def create(member_parameters: list[list[np.ndarray]]) -> "SharedParameterBlock":
        """Pack every member's parameters into a fresh shared segment."""
        if not member_parameters or not any(member_parameters):
            raise ValueError("cannot share an empty parameter set")
        shapes = tuple(
            tuple(tuple(int(d) for d in array.shape) for array in member)
            for member in member_parameters
        )
        total = sum(array.size for member in member_parameters for array in member)
        shm = shared_memory.SharedMemory(create=True, size=max(total * 8, 1))
        spec = ParameterBlockSpec(shm_name=shm.name, member_shapes=shapes)
        views = _views_from_buffer(shm.buf, spec, writeable=True)
        for member_views, member in zip(views, member_parameters):
            for view, array in zip(member_views, member):
                view[...] = np.asarray(array, dtype=np.float64)
        return SharedParameterBlock(spec, shm)

    @property
    def nbytes(self) -> int:
        return self.spec.total_elements * 8

    def views(self) -> list[list[np.ndarray]]:
        """Read-only in-process views (the serial path can share them too)."""
        return _views_from_buffer(self._shm.buf, self.spec, writeable=False)

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Release the segment (idempotent; owner-side teardown)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def attach_parameter_block(
    spec: ParameterBlockSpec,
) -> tuple[shared_memory.SharedMemory, list[list[np.ndarray]]]:
    """Worker-side attach: map the segment and return read-only views.

    The returned ``SharedMemory`` handle must stay referenced as long as the
    views are used (the views borrow its buffer).  The attach is untracked
    where the stdlib allows it (3.13+); on older versions the registration
    lands in the creator's shared tracker as a duplicate no-op (see the
    module docstring), so the worker's exit cannot unlink a segment it does
    not own.
    """
    try:
        shm = shared_memory.SharedMemory(name=spec.shm_name, track=False)
    except TypeError:  # Python < 3.13: no track flag (see module docstring).
        shm = shared_memory.SharedMemory(name=spec.shm_name)
    return shm, _views_from_buffer(shm.buf, spec, writeable=False)
