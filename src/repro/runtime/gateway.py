"""Async front end: thousands of awaitable requests over the threaded runtime.

The serving runtime of PR 2 is thread-shaped: concurrent ``estimate`` calls
coalesce in the :class:`~repro.runtime.microbatch.MicroBatcher` only if they
arrive on concurrent *threads*, and a blocked caller holds its thread for the
whole batch window.  A DSE driver holding thousands of in-flight estimates
would need thousands of threads.  :class:`AsyncPowerGateway` bridges the gap:
it exposes ``estimate`` / ``estimate_many`` / ``explore`` as coroutines, and
carries each accepted call over a bounded thread pool onto the synchronous
:class:`~repro.serve.service.PowerEstimationService`, so one event loop can
hold arbitrarily many awaitable requests while a fixed number of bridge
threads feeds the same micro-batcher / worker pool / cache stack underneath.

Admission control makes the bridge bounded end to end: at most
``max_in_flight`` designs may be submitted-but-unanswered at once, and a
submission over the limit fast-fails with the typed
:class:`GatewayBackpressureError` instead of queueing unboundedly — the
caller (or the HTTP layer, as a ``429``) decides whether to retry, shed, or
slow down.  Because every accepted call runs the unmodified service methods,
gateway results are exactly the direct path's: ``estimate_many`` responses
are bitwise-identical, and coalesced singles match direct calls the same way
thread-level coalescing does.

The gateway registers itself as a service close hook, so a service shut down
mid-request flips the gateway closed: requests already in flight complete on
the service's degraded serial path, new ones fast-fail with
:class:`GatewayClosedError`.
"""

from __future__ import annotations

import asyncio
import contextvars
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from repro.runtime.config import RuntimeConfig


class GatewayError(RuntimeError):
    """Base class of the gateway's typed submission failures."""


class GatewayClosedError(GatewayError):
    """Submission after the gateway (or its service) was closed."""


class GatewayBackpressureError(GatewayError):
    """Fast-fail of a submission that would exceed ``max_in_flight``.

    Carries the observed load so callers can build retry / shedding policies
    without parsing the message.
    """

    def __init__(self, in_flight: int, max_in_flight: int, cost: int) -> None:
        super().__init__(
            f"gateway at capacity: {in_flight} designs in flight + {cost} "
            f"submitted > max_in_flight={max_in_flight}"
        )
        self.in_flight = in_flight
        self.max_in_flight = max_in_flight
        self.cost = cost


@dataclass
class GatewayStats:
    """Counters of one gateway's lifetime (all mutated on the event loop).

    Every counter is in *designs*, not submissions — a rejected batch of 100
    adds 100 to ``rejected`` just as an accepted one adds 100 to
    ``submitted`` — so acceptance rates computed across the counters
    reconcile under batch traffic.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    in_flight: int = 0
    peak_in_flight: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
        }


class AsyncPowerGateway:
    """Awaitable ``estimate`` / ``estimate_many`` / ``explore`` over a service.

    Single-event-loop object: submissions must come from one running loop
    (the admission counter relies on the loop's serialised callbacks instead
    of a lock).  The blocking service calls themselves run on the gateway's
    bridge thread pool, so the micro-batcher sees real concurrent threads and
    coalescing works exactly as it does for thread-based callers.
    """

    def __init__(
        self,
        service,
        *,
        max_in_flight: int | None = None,
        threads: int | None = None,
        jobs=None,
    ) -> None:
        runtime: RuntimeConfig = service.runtime
        self.service = service
        #: The :class:`~repro.jobs.manager.JobManager` serving the jobs API,
        #: or ``None`` on a gateway without the async job tier.
        self.jobs = jobs
        self.max_in_flight = (
            max_in_flight if max_in_flight is not None else runtime.gateway_max_in_flight
        )
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        thread_count = threads if threads is not None else runtime.gateway_threads
        if thread_count < 1:
            raise ValueError("threads must be >= 1")
        self._executor = ThreadPoolExecutor(
            max_workers=thread_count, thread_name_prefix="power-gateway"
        )
        self.threads = thread_count
        self.stats = GatewayStats()
        # Duck-typed: a full service carries an Observability bundle; bare
        # stubs (tests, alternative services) simply go uninstrumented.
        self._obs = getattr(service, "obs", None)
        self._pending: set[asyncio.Future] = set()
        self._closed = False
        # A service closed out from under the gateway closes the gateway too:
        # in-flight calls finish on the degraded serial path, new submissions
        # fast-fail instead of piling onto a half-torn-down runtime.
        service.add_close_hook(self._mark_closed)

    # ------------------------------------------------------------------ public

    @property
    def closed(self) -> bool:
        # Two-sided: a gateway built over an already-closed service (or one
        # whose service closed in a hook-registration race) must report
        # closed everywhere — health checks included — not just on submit.
        return self._closed or self.service.closed

    async def estimate(self, request):
        """Awaitable single-design estimate (coalesces with concurrent calls)."""
        return await self._submit(self.service.estimate, request, cost=1)

    async def estimate_many(self, requests: list) -> list:
        """Awaitable batch estimate; bitwise-identical to the direct call.

        The whole batch counts against ``max_in_flight`` at submission, so a
        burst of large batches is shed as eagerly as a burst of singles.
        """
        requests = list(requests)
        return await self._submit(
            self.service.estimate_many, requests, cost=max(len(requests), 1)
        )

    async def explore(self, kernel: str, budget: float | None = None, **kwargs):
        """Awaitable design-space exploration (one admission slot per call)."""
        return await self._submit(
            partial(self.service.explore, kernel, budget, **kwargs), cost=1
        )

    def runtime_stats(self) -> dict:
        """Gateway counters plus the underlying service's runtime stats."""
        stats = self.service.runtime_stats()
        stats["gateway"] = self.stats.as_dict()
        if self.jobs is not None:
            stats["jobs"] = self.jobs.stats()
        return stats

    # ------------------------------------------------------------------- jobs
    #
    # The job verbs hop the same bridge pool but skip admission accounting:
    # a job *submission* is a table insert (the admission policy lives in the
    # JobManager's own quota/table bounds), and polls/cancels are reads that
    # must keep working even when the estimate path is at max_in_flight —
    # rejecting a status poll under load would hide exactly the state the
    # caller needs to see.

    def _require_jobs(self):
        if self.jobs is None:
            raise KeyError("the jobs API is not enabled on this gateway")
        return self.jobs

    async def _job_call(self, fn, *args, **kwargs):
        if self._closed:
            raise GatewayClosedError("gateway is closed")
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        try:
            return await loop.run_in_executor(
                self._executor, partial(ctx.run, partial(fn, *args, **kwargs))
            )
        except RuntimeError as error:
            if self._executor is None or "shutdown" in str(error):
                raise GatewayClosedError("gateway is closed") from None
            raise

    async def submit_job(
        self,
        kernel: str,
        *,
        budget: float | None = None,
        dse_config: dict | None = None,
        client: str = "default",
    ) -> dict:
        """Submit one exploration job; returns its ``queued`` snapshot."""
        manager = self._require_jobs()
        return await self._job_call(
            manager.submit,
            kernel,
            budget=budget,
            dse_config=dse_config,
            client=client,
        )

    async def job(self, job_id: str) -> dict:
        return await self._job_call(self._require_jobs().get, job_id)

    async def list_jobs(self, client: str | None = None) -> list[dict]:
        return await self._job_call(self._require_jobs().list, client)

    async def job_updates(self, job_id: str, since: int = 0) -> dict:
        return await self._job_call(self._require_jobs().updates, job_id, since)

    async def wait_updates(
        self, job_id: str, since: int = 0, timeout: float = 30.0
    ) -> dict:
        """Long-poll: blocks (on a bridge thread) until news or timeout."""
        return await self._job_call(
            self._require_jobs().wait_updates, job_id, since, timeout
        )

    async def wait_job(self, job_id: str, timeout: float | None = None) -> dict:
        return await self._job_call(self._require_jobs().wait, job_id, timeout)

    async def cancel_job(self, job_id: str) -> dict:
        return await self._job_call(self._require_jobs().cancel, job_id)

    # ------------------------------------------------------------ deployments
    #
    # Deployment verbs ride the same bridge pool (plan reads and publishes
    # touch the registry directory) and likewise skip admission accounting:
    # an operator inspecting or rolling back the live plan must get through
    # even when the estimate path is saturated.

    async def get_deployment(self) -> dict:
        return await self._job_call(self.service.deployment_view)

    async def put_deployment(self, document: dict) -> dict:
        return await self._job_call(self.service.put_deployment, document)

    async def promote_deployment(self, pattern: str | None = None) -> dict:
        return await self._job_call(self.service.promote_deployment, pattern)

    async def rollback_deployment(self, pattern: str | None = None) -> dict:
        return await self._job_call(self.service.rollback_deployment, pattern)

    async def aclose(self, *, close_service: bool = False) -> None:
        """Stop admitting, drain in-flight calls, shut the bridge pool down.

        With ``close_service=True`` also closes the underlying service (off
        the event loop — closing joins worker processes).  Idempotent.
        """
        self._closed = True
        # A gateway that dies before its (long-lived) service must not stay
        # reachable through the service's close-hook list.
        self.service.remove_close_hook(self._mark_closed)
        while self._pending:
            await asyncio.gather(*list(self._pending), return_exceptions=True)
        loop = asyncio.get_running_loop()
        executor = self._executor
        if executor is not None:
            self._executor = None
            await loop.run_in_executor(None, partial(executor.shutdown, wait=True))
        if close_service and not self.service.closed:
            await loop.run_in_executor(None, self.service.close)

    async def __aenter__(self) -> "AsyncPowerGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # --------------------------------------------------------------- internals

    def _mark_closed(self) -> None:
        # Runs on whichever thread called service.close(); a bare flag write
        # is atomic enough — the admission check on the loop sees it on its
        # next submission.
        self._closed = True

    def _admit(self, cost: int) -> None:
        if self._closed or self.service.closed:
            self.stats.rejected += cost
            self._count_designs("rejected_closed", cost)
            raise GatewayClosedError("gateway is closed")
        if cost > self.max_in_flight:
            # Not backpressure: this submission could never be admitted, even
            # on an idle gateway.  A retryable error here would have clients
            # retrying forever; a ValueError tells them to split the batch.
            self.stats.rejected += cost
            self._count_designs("rejected_oversize", cost)
            raise ValueError(
                f"batch of {cost} designs exceeds the gateway's capacity "
                f"(max_in_flight={self.max_in_flight}); split the batch"
            )
        if self.stats.in_flight + cost > self.max_in_flight:
            self.stats.rejected += cost
            self._count_designs("rejected_backpressure", cost)
            raise GatewayBackpressureError(
                self.stats.in_flight, self.max_in_flight, cost
            )
        self.stats.submitted += cost
        self.stats.in_flight += cost
        self.stats.peak_in_flight = max(self.stats.peak_in_flight, self.stats.in_flight)
        self._count_designs("admitted", cost)

    def _count_designs(self, outcome: str, cost: int) -> None:
        if self._obs is not None:
            self._obs.gateway_designs.labels(outcome=outcome).inc(cost)

    def _release(self, cost: int, future: asyncio.Future) -> None:
        self.stats.in_flight -= cost
        if future.cancelled() or future.exception() is not None:
            self.stats.errors += cost
        else:
            self.stats.completed += cost
        self._pending.discard(future)

    async def _submit(self, fn, *args, cost: int):
        tracer = self._obs.tracer if self._obs is not None else None
        if tracer is None or not tracer.enabled:
            return await self._submit_inner(fn, args, cost)
        with tracer.span("gateway", cost=cost) as span:
            span.set_attribute("in_flight", self.stats.in_flight)
            return await self._submit_inner(fn, args, cost)

    async def _submit_inner(self, fn, args, cost: int):
        self._admit(cost)
        loop = asyncio.get_running_loop()
        # Copy the calling context over the thread hop: run_in_executor does
        # not propagate contextvars, so without this the blocking service
        # call would start a fresh trace instead of nesting under the
        # request/gateway spans.
        ctx = contextvars.copy_context()
        try:
            future = loop.run_in_executor(self._executor, partial(ctx.run, fn, *args))
        except BaseException:
            # The executor refused (shut down between the closed check and
            # here); undo the admission so the slot is not leaked.
            self.stats.in_flight -= cost
            self.stats.submitted -= cost
            self.stats.rejected += cost
            raise GatewayClosedError("gateway is closed") from None
        self._pending.add(future)
        future.add_done_callback(partial(self._release, cost))
        # Shield the bridge future: cancelling the awaiting task must not
        # orphan the accounting (the service call is running on a thread and
        # completes regardless; its done-callback releases the slot).
        return await asyncio.shield(future)
