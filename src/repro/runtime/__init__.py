"""Parallel serving runtime: the layer between the service façade and the engine.

Three components turn the synchronous, single-process
:class:`~repro.serve.service.PowerEstimationService` of PR 1 into a parallel
runtime, each independently switchable through :class:`RuntimeConfig`:

* :mod:`repro.runtime.pool` — :class:`WorkerPool` shards per-kernel
  featurisation (the dominant serving cost) across worker processes with a
  deterministic merge: pooled results are bitwise-identical to the serial
  path's; :class:`ForwardPool` shards the packed mega-graph forward itself
  across ensemble members on read-only shared-memory parameter blocks
  (:mod:`repro.runtime.shm`), with the same contiguous-shard merge
  guarantee;
* :mod:`repro.runtime.microbatch` — :class:`MicroBatcher` coalesces concurrent
  single-design ``estimate`` calls into packed batches under a size/deadline
  policy (injectable clock, so the policy is testable without sleeping);
* :mod:`repro.runtime.cache` — :class:`PersistentCache`, the on-disk
  content-addressed second tier under the inference cache with cost-aware
  (featurisation-seconds-saved) eviction, so hit rates survive restarts.

:mod:`repro.runtime.supervisor` wraps both pools in a supervised lifecycle
(:class:`SupervisedPool`): bounded restart-on-crash with exponential backoff
(worker deaths surface as :class:`WorkerCrashError`), queue-depth-driven
autoscaling with hysteresis, and per-pool health snapshots the service
threads through ``runtime_stats()`` and the HTTP ``/metrics`` / ``/healthz``
endpoints.

Two front-end modules layer on top (PR 3):

* :mod:`repro.runtime.gateway` — :class:`AsyncPowerGateway` exposes the
  service endpoints as coroutines with bounded admission control, bridging
  thousands of awaitable requests onto the thread-based coalescer;
* :mod:`repro.runtime.http` — a stdlib-only asyncio HTTP server with JSON
  endpoints over the gateway (``/v1/estimate``, ``/v1/estimate_many``,
  ``/v1/explore``, ``/v1/models``, ``/healthz``, ``/metrics``).

The core runtime depends only on the featurisation pipeline and the graph
containers — never on :mod:`repro.serve` — so the service can layer on top of
it without an import cycle.  The two front-end modules sit above the service
and are deliberately *not* imported here: importing :mod:`repro.runtime` must
stay cheap and cycle-free for the service itself.
"""

from repro.runtime.cache import PERSISTENT_FORMAT_VERSION, PersistentCache
from repro.runtime.config import RuntimeConfig
from repro.runtime.microbatch import ItemError, MicroBatcher, MicroBatchStats
from repro.runtime.pool import (
    ForwardPool,
    ForwardPoolStats,
    PoolStats,
    WorkerCrashError,
    WorkerPool,
    available_cpus,
    default_start_method,
    shard_evenly,
)
from repro.runtime.shm import (
    ParameterBlockSpec,
    SharedParameterBlock,
    attach_parameter_block,
)
from repro.runtime.supervisor import (
    PoolClosedError,
    PoolRetiredError,
    SupervisedPool,
)

__all__ = [
    "PERSISTENT_FORMAT_VERSION",
    "PersistentCache",
    "RuntimeConfig",
    "ItemError",
    "MicroBatcher",
    "MicroBatchStats",
    "ForwardPool",
    "ForwardPoolStats",
    "ParameterBlockSpec",
    "PoolClosedError",
    "PoolRetiredError",
    "PoolStats",
    "SharedParameterBlock",
    "SupervisedPool",
    "WorkerCrashError",
    "WorkerPool",
    "attach_parameter_block",
    "available_cpus",
    "default_start_method",
    "shard_evenly",
]
