"""Request coalescing: packing single-design calls into micro-batches.

The batched inference engine is fastest when it sees many designs at once,
but interactive clients send one design per call.  :class:`MicroBatcher`
bridges the two under a classic size/deadline policy: the first request of a
batch opens a window of ``max_delay`` seconds; requests arriving inside the
window join the batch; the batch flushes as soon as it reaches ``max_batch``
items or the window expires, whichever comes first.  One flush call then
serves every member — for the power service, one packed
``PowerGear.predict_batch`` forward instead of N single-graph passes.

Concurrency model:

* every member of a batch waits deadline-aware (so the batch expires even if
  another member was interrupted out of its wait);
* whoever observes the seal first claims the flush, runs it outside the
  batcher lock (flushes themselves are serialised by a dedicated lock, so a
  non-thread-safe flush function is safe), and wakes everyone with their
  per-slot results;
* a flush error is shared fate by default — every member re-raises it — but
  the flush function may return :class:`ItemError` in a slot to fail that
  member alone.

The clock is injectable so tests can drive the deadline policy
deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class ItemError:
    """Per-item failure a flush may return in place of that item's result.

    The member that submitted the item re-raises ``error``; the rest of the
    batch is unaffected.
    """

    error: BaseException


@dataclass
class MicroBatchStats:
    """Counters of one batcher's lifetime."""

    batches: int = 0
    items: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    forced_flushes: int = 0
    largest_batch: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "items": self.items,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "forced_flushes": self.forced_flushes,
            "largest_batch": self.largest_batch,
            "mean_batch": self.items / self.batches if self.batches else 0.0,
        }


class _Batch:
    """One in-flight micro-batch (internal)."""

    __slots__ = (
        "items",
        "deadline",
        "sealed",
        "reason",
        "claimed",
        "done",
        "results",
        "error",
        "flush_ids",
    )

    def __init__(self, deadline: float) -> None:
        self.items: list = []
        self.deadline = deadline
        self.sealed = False
        self.reason: str | None = None
        self.claimed = False
        self.done = threading.Event()
        self.results: list | None = None
        self.error: BaseException | None = None
        # (trace_id, span_id) of the claimer's coalesce span: followers link
        # their own traces to the one that actually hosts the flush work.
        self.flush_ids: tuple[str, str] | None = None


class MicroBatcher:
    """Coalesces concurrent ``submit`` calls into batched flushes."""

    def __init__(
        self,
        flush: Callable[[list], list],
        *,
        max_batch: int = 16,
        max_delay: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        tracer=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self._flush = flush
        self.max_batch = max_batch
        self.max_delay = max_delay
        #: Optional :class:`repro.obs.trace.Tracer`.  Both sides of the
        #: leader/follower handoff get covered: every member's wait is a
        #: ``coalesce`` span in *its own* trace, the flush runs under the
        #: claimer's ``batch.flush`` span (so the batch's service work lands
        #: in the claimer's tree), and followers record the claimer's trace
        #: id as a ``flush_trace`` link.
        self.tracer = tracer
        self._clock = clock
        self._cond = threading.Condition()
        self._flush_lock = threading.Lock()
        self._open: _Batch | None = None
        self._inflight: list[_Batch] = []
        self._closed = False
        self.stats = MicroBatchStats()

    # ------------------------------------------------------------------ public

    def submit(self, item):
        """Enqueue one item; blocks until its batch has flushed; returns its result.

        If the flush function raises, every member of the batch re-raises that
        exception; a flush that returns :class:`ItemError` in a slot fails
        only that slot's member.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._submit(item, None)
        with tracer.span("coalesce") as span:
            return self._submit(item, span)

    def _submit(self, item, span):
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            batch = self._open
            if batch is None:
                batch = _Batch(deadline=self._clock() + self.max_delay)
                self._open = batch
            slot = len(batch.items)
            batch.items.append(item)
            if len(batch.items) >= self.max_batch:
                self._seal(batch, "size")
            # Every member waits deadline-aware: the batch expires even when
            # the member that opened it was interrupted out of its wait.
            while not batch.sealed:
                remaining = batch.deadline - self._clock()
                if remaining <= 0:
                    self._seal(batch, "deadline")
                    break
                self._cond.wait(timeout=remaining)
            claimed = not batch.claimed
            batch.claimed = True
        if claimed:
            if span is not None and self.tracer is not None:
                ids = self.tracer.current_ids()
                if ids is not None:
                    batch.flush_ids = ids
            self._run_flush(batch)
        else:
            batch.done.wait()
        if span is not None:
            span.set_attribute("role", "leader" if claimed else "follower")
            span.set_attribute("batch_size", len(batch.items))
            span.set_attribute("reason", batch.reason)
            if not claimed and batch.flush_ids is not None:
                span.set_attribute("flush_trace", batch.flush_ids[0])
        if batch.error is not None:
            raise batch.error
        result = batch.results[slot]
        if isinstance(result, ItemError):
            raise result.error
        return result

    def flush_pending(self) -> None:
        """Seal the open batch now (its waiters flush it); no-op when idle."""
        with self._cond:
            batch = self._open
            if batch is not None and not batch.sealed:
                self._seal(batch, "forced")

    def poke(self) -> None:
        """Wake waiting threads so they re-read the clock.

        With the default monotonic clock this is never needed (leaders time
        their own waits); it exists for injected clocks, whose driver must
        nudge the leader after advancing time past a deadline.
        """
        with self._cond:
            self._cond.notify_all()

    def close(self) -> None:
        """Flush whatever is pending and refuse further submissions.

        Blocks until any in-flight batch has finished flushing, so after
        ``close`` returns no flush can still be running (callers may safely
        tear down whatever resources the flush function uses).
        """
        with self._cond:
            self._closed = True
            batch = self._open
            if batch is not None and not batch.sealed:
                self._seal(batch, "forced")
            pending = list(self._inflight)
        for batch in pending:
            batch.done.wait()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _seal(self, batch: _Batch, reason: str) -> None:
        """Caller holds ``self._cond``."""
        batch.sealed = True
        batch.reason = reason
        self._inflight.append(batch)
        if self._open is batch:
            self._open = None
        self.stats.batches += 1
        self.stats.items += len(batch.items)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch.items))
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "deadline":
            self.stats.deadline_flushes += 1
        else:
            self.stats.forced_flushes += 1
        self._cond.notify_all()

    def _run_flush(self, batch: _Batch) -> None:
        tracer = self.tracer
        try:
            with self._flush_lock:
                items = list(batch.items)
                if tracer is not None and tracer.enabled:
                    with tracer.span(
                        "batch.flush", size=len(items), reason=batch.reason
                    ):
                        results = list(self._flush(items))
                else:
                    results = list(self._flush(items))
            if len(results) != len(batch.items):
                raise RuntimeError(
                    f"flush returned {len(results)} results for {len(batch.items)} items"
                )
            batch.results = results
        except BaseException as error:
            batch.error = error
        finally:
            batch.done.set()
            with self._cond:
                if batch in self._inflight:
                    self._inflight.remove(batch)
