"""Gradient-boosted regression trees, implemented from scratch.

The HL-Pow baseline uses scikit-learn's GBDT; this module provides an
equivalent: CART regression trees with variance-reduction splits, boosted on
least-squares residuals with shrinkage, plus the small hyper-parameter grid
search the paper performs on a validation split (tree count, depth, minimum
samples per leaf, learning rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.utils.metrics import mape


@dataclass
class _TreeNode:
    """Internal node (or leaf when ``feature`` is None) of a regression tree."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splitting."""

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_leaf: int = 2,
        max_features: float | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_features is not None and not 0.0 < max_features <= 1.0:
            raise ValueError("max_features must be a fraction in (0, 1]")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: _TreeNode | None = None

    # ------------------------------------------------------------------ fitting

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on the number of samples")
        self._root = self._build(features, targets, depth=0)
        return self

    def _build(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(targets.mean()))
        if depth >= self.max_depth or targets.shape[0] < 2 * self.min_samples_leaf:
            return node
        if np.allclose(targets, targets[0]):
            return node

        best_gain = 1e-12
        best: tuple[int, float] | None = None
        total_count = targets.shape[0]
        total_sum = float(targets.sum())
        base_sse = float(((targets - targets.mean()) ** 2).sum())
        min_leaf = self.min_samples_leaf
        num_features = features.shape[1]
        if self.max_features is not None and self.max_features < 1.0:
            subset_size = max(1, int(round(num_features * self.max_features)))
            feature_indices = self._rng.choice(num_features, size=subset_size, replace=False)
        else:
            feature_indices = range(num_features)
        for feature_index in feature_indices:
            column = features[:, feature_index]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            sorted_targets = targets[order]
            # Candidate split positions: between distinct consecutive values,
            # respecting the minimum leaf size on both sides.
            prefix_sums = np.cumsum(sorted_targets)
            prefix_squares = np.cumsum(sorted_targets**2)
            positions = np.arange(1, total_count)
            valid = (
                (positions >= min_leaf)
                & (positions <= total_count - min_leaf)
                & (sorted_values[1:] > sorted_values[:-1])
            )
            if not valid.any():
                continue
            split_positions = positions[valid]
            left_sums = prefix_sums[split_positions - 1]
            left_squares = prefix_squares[split_positions - 1]
            right_sums = total_sum - left_sums
            right_squares = prefix_squares[-1] - left_squares
            left_counts = split_positions
            right_counts = total_count - split_positions
            sse = (
                left_squares
                - left_sums**2 / left_counts
                + right_squares
                - right_sums**2 / right_counts
            )
            gains = base_sse - sse
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                position = int(split_positions[best_local])
                threshold = float(
                    (sorted_values[position - 1] + sorted_values[position]) / 2.0
                )
                best = (feature_index, threshold)

        if best is None:
            return node
        feature_index, threshold = best
        mask = features[:, feature_index] <= threshold
        node.feature = feature_index
        node.threshold = threshold
        node.left = self._build(features[mask], targets[mask], depth + 1)
        node.right = self._build(features[~mask], targets[~mask], depth + 1)
        return node

    # --------------------------------------------------------------- prediction

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("the tree has not been fitted")
        features = np.asarray(features, dtype=float)
        return np.array([self._predict_row(row) for row in features])

    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value if node is not None else 0.0


@dataclass(frozen=True)
class GBDTConfig:
    """Hyper-parameters of the boosted ensemble."""

    n_estimators: int = 80
    max_depth: int = 5
    min_samples_leaf: int = 2
    learning_rate: float = 0.08
    max_features: float | None = 0.3

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")


class GradientBoostingRegressor:
    """Least-squares gradient boosting with shrinkage."""

    def __init__(self, config: GBDTConfig | None = None) -> None:
        self.config = config or GBDTConfig()
        self._initial_prediction = 0.0
        self._trees: list[DecisionTreeRegressor] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        self._initial_prediction = float(targets.mean())
        self._trees = []
        predictions = np.full_like(targets, self._initial_prediction)
        for _ in range(self.config.n_estimators):
            residuals = targets - predictions
            tree = DecisionTreeRegressor(
                max_depth=self.config.max_depth,
                min_samples_leaf=self.config.min_samples_leaf,
                max_features=self.config.max_features,
                seed=len(self._trees),
            )
            tree.fit(features, residuals)
            update = tree.predict(features)
            predictions = predictions + self.config.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        predictions = np.full(features.shape[0], self._initial_prediction)
        for tree in self._trees:
            predictions = predictions + self.config.learning_rate * tree.predict(features)
        return predictions

    @property
    def num_trees(self) -> int:
        return len(self._trees)


def tune_gbdt(
    train_features: np.ndarray,
    train_targets: np.ndarray,
    valid_features: np.ndarray,
    valid_targets: np.ndarray,
    n_estimators_grid: tuple[int, ...] = (60,),
    max_depth_grid: tuple[int, ...] = (4, 6),
    min_samples_leaf_grid: tuple[int, ...] = (2,),
    learning_rate_grid: tuple[float, ...] = (0.05, 0.1),
) -> tuple[GradientBoostingRegressor, GBDTConfig]:
    """Small grid search mirroring HL-Pow's validation-based hyper-parameter tuning."""
    best_error = float("inf")
    best_model: GradientBoostingRegressor | None = None
    best_config: GBDTConfig | None = None
    for n_estimators, max_depth, min_leaf, learning_rate in product(
        n_estimators_grid, max_depth_grid, min_samples_leaf_grid, learning_rate_grid
    ):
        config = GBDTConfig(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_leaf,
            learning_rate=learning_rate,
        )
        model = GradientBoostingRegressor(config).fit(train_features, train_targets)
        error = mape(valid_targets, np.maximum(model.predict(valid_features), 1e-9))
        if error < best_error:
            best_error = error
            best_model = model
            best_config = config
    assert best_model is not None and best_config is not None
    return best_model, best_config
