"""Baselines: HL-Pow (histogram features + gradient-boosted trees).

HL-Pow (Lin et al., ASP-DAC 2020) is the state-of-the-art HLS power model the
paper compares against: it encodes the activities of each HLS operation type
into per-type histograms, concatenates them into a fixed-length design feature
vector, and trains gradient boosting decision trees (GBDT) for power
inference.  scikit-learn is not available offline, so the GBDT is implemented
from scratch in :mod:`repro.baselines.gbdt`.
"""

from repro.baselines.gbdt import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    GBDTConfig,
)
from repro.baselines.hlpow import HLPowModel, HLPowConfig, hlpow_features

__all__ = [
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "GBDTConfig",
    "HLPowModel",
    "HLPowConfig",
    "hlpow_features",
]
