"""HL-Pow baseline: per-operation-type activity histograms + GBDT.

HL-Pow aligns features across designs by "encoding the activities of each type
of HLS operations into a histogram individually, concatenating histograms as
overall design features, and then training models to infer power".  Here the
histograms are computed from the constructed power graph: for every operation
type (opcode / buffer kind), the activation rates of the nodes of that type
are binned into a fixed-width histogram; the HLS report metadata (resources,
latency, clock and scaling factors) is appended, matching HL-Pow's use of
design-level features.  Crucially — and this is the paper's point — the
feature vector carries *no interconnect structure*: edges and their switching
activities are invisible to HL-Pow, which is why it trails PowerGear on
dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.gbdt import GBDTConfig, GradientBoostingRegressor, tune_gbdt
from repro.graph.dataset import GraphSample
from repro.graph.features import NODE_NUMERIC_FEATURES, NODE_TYPE_CATEGORIES, OPCODE_VOCABULARY
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class HLPowConfig:
    """Feature and training configuration of the HL-Pow reproduction."""

    histogram_bins: int = 8
    activation_rate_cap: float = 2.0
    tune_hyperparameters: bool = True
    validation_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.histogram_bins < 2:
            raise ValueError("histogram_bins must be >= 2")
        if self.activation_rate_cap <= 0:
            raise ValueError("activation_rate_cap must be positive")


_NUM_ONEHOT = len(NODE_TYPE_CATEGORIES) + len(OPCODE_VOCABULARY)
_ACTIVATION_COLUMN = _NUM_ONEHOT + NODE_NUMERIC_FEATURES.index("activation_rate")
_SWITCHING_COLUMN = _NUM_ONEHOT + NODE_NUMERIC_FEATURES.index("overall_switching")


def hlpow_features(sample: GraphSample, config: HLPowConfig | None = None) -> np.ndarray:
    """HL-Pow feature vector of one design point.

    The node features of the (unscaled) power graph are used to recover, for
    every opcode, the activation rates of its nodes; one histogram per opcode
    is built and all histograms are concatenated, followed by the design-level
    metadata from the HLS report.
    """
    config = config or HLPowConfig()
    graph = sample.graph
    node_features = graph.node_features
    bins = np.linspace(0.0, config.activation_rate_cap, config.histogram_bins + 1)

    histograms: list[np.ndarray] = []
    opcode_block = node_features[:, len(NODE_TYPE_CATEGORIES) : _NUM_ONEHOT]
    activation = np.clip(node_features[:, _ACTIVATION_COLUMN], 0.0, config.activation_rate_cap)
    for opcode_index in range(len(OPCODE_VOCABULARY)):
        mask = opcode_block[:, opcode_index] > 0.5
        if mask.any():
            histogram, _ = np.histogram(activation[mask], bins=bins)
        else:
            histogram = np.zeros(config.histogram_bins)
        histograms.append(histogram.astype(float))

    metadata = np.asarray(graph.metadata, dtype=float).reshape(-1)
    switching_total = float(node_features[:, _SWITCHING_COLUMN].sum())
    extras = np.array([graph.num_nodes, switching_total, sample.latency_cycles], dtype=float)
    return np.concatenate([np.concatenate(histograms), metadata, np.log1p(extras)])


class HLPowModel:
    """The HL-Pow power model: histogram features regressed by a GBDT."""

    def __init__(self, config: HLPowConfig | None = None) -> None:
        self.config = config or HLPowConfig()
        self.model: GradientBoostingRegressor | None = None
        self.selected_config: GBDTConfig | None = None

    def featurise(self, samples: list[GraphSample]) -> np.ndarray:
        return np.stack([hlpow_features(sample, self.config) for sample in samples])

    def fit(self, samples: list[GraphSample], target: str = "dynamic") -> "HLPowModel":
        if len(samples) < 4:
            raise ValueError("HL-Pow needs at least four training samples")
        features = self.featurise(samples)
        targets = np.array([s.target(target) for s in samples])

        if self.config.tune_hyperparameters and len(samples) >= 10:
            rng = new_rng(self.config.seed)
            order = rng.permutation(len(samples))
            cut = max(1, int(round(len(samples) * self.config.validation_fraction)))
            valid_ids, train_ids = order[:cut], order[cut:]
            self.model, self.selected_config = tune_gbdt(
                features[train_ids],
                targets[train_ids],
                features[valid_ids],
                targets[valid_ids],
            )
            # Refit the selected configuration on the full training set.
            self.model = GradientBoostingRegressor(self.selected_config).fit(features, targets)
        else:
            self.selected_config = GBDTConfig()
            self.model = GradientBoostingRegressor(self.selected_config).fit(features, targets)
        return self

    def predict(self, samples: list[GraphSample]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("HL-Pow model has not been fitted")
        return np.maximum(self.model.predict(self.featurise(samples)), 1e-9)
