"""Per-batch model resolution against the live deployment plan.

:class:`ModelResolver` is what :class:`~repro.serve.service.PowerEstimationService`
now holds instead of "the model": given one immutable plan snapshot (taken
once per request batch, so a promote or rollback mid-load can never mix
artifacts within a batch) it maps each design point onto the
``(model, version, role)`` that serves it, plus the optional second arm
whose predictions are recorded and diffed but not returned.

Resolved artifacts are kept in a bounded read-through LRU cache
(:class:`~repro.serve.cache.LRUStore`) keyed by ``(name, version)`` —
loading a model artifact means reading and verifying ``weights.npz``, far
too expensive per batch.  The service's ambient default model bypasses the
cache entirely: with no plan installed every request resolves to it and the
hot path does no registry I/O at all.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.deploy.plan import (
    DeploymentPlan,
    UnknownArtifactError,
    assign_challenger,
)
from repro.deploy.store import DeploymentStore

__all__ = ["ModelResolver", "ResolvedModel"]


@dataclass(frozen=True, eq=False)
class ResolvedModel:
    """A loaded artifact plus the role it plays for one design point."""

    name: str | None
    version: int | None
    role: str  # "default" | "champion" | "challenger"
    model: object
    fingerprint: str

    @property
    def label(self) -> str:
        """Stable metrics label for this artifact."""
        if self.name is None:
            return "default"
        return f"{self.name}:v{self.version}"

    def served_by(self) -> dict:
        """Wire-level description attached to planned responses."""
        return {"model": self.name, "version": self.version, "role": self.role}


class ModelResolver:
    """Maps design points → loaded models through the live deployment plan."""

    def __init__(
        self,
        registry,
        *,
        default_model,
        default_name: str | None = None,
        default_version: int | None = None,
        default_fingerprint: str | None = None,
        cache_entries: int = 4,
        store: DeploymentStore | None = None,
        on_evict=None,
    ) -> None:
        # Imported here, not at module top: repro.serve.service imports this
        # module, so a top-level import of repro.serve would be circular.
        from repro.serve.cache import LRUStore

        self.registry = registry
        self.store = store if store is not None else DeploymentStore(registry.root)
        self._default = ResolvedModel(
            name=default_name,
            version=default_version,
            role="default",
            model=default_model,
            fingerprint=(
                default_fingerprint
                if default_fingerprint is not None
                else default_model.fingerprint()
            ),
        )
        self._cache = LRUStore(max_entries=cache_entries, on_evict=on_evict)
        self._load_lock = threading.Lock()

    # -------------------------------------------------------------- snapshots

    @property
    def default(self) -> ResolvedModel:
        return self._default

    def snapshot(self) -> DeploymentPlan | None:
        """The live plan right now (stat-revalidated), or ``None``."""
        return self.store.current()

    def current_seq(self) -> int | None:
        plan = self.snapshot()
        return plan.seq if plan is not None else None

    def plan_at(self, seq: int | None) -> DeploymentPlan | None:
        """The immutable plan published as ``seq``.

        ``None`` and ``0`` both resolve to "no plan" — ``0`` is the pinned
        form (a job that *started* with no plan installed must keep running
        with none, even if one is published mid-resume), ``None`` the
        unpinned one.  Published seqs start at 1.
        """
        if not seq:
            return None
        return self.store.load(seq)

    # ------------------------------------------------------------- resolution

    def resolve(
        self, plan: DeploymentPlan | None, kernel: str, directives_key: str
    ) -> tuple[ResolvedModel, ResolvedModel | None, str | None]:
        """``(serving arm, recorded arm or None, rule pattern or None)``.

        The serving arm's prediction is returned to the caller; the recorded
        arm (present only for designs selected onto a challenger slice) is
        predicted too, diffed, and exported as drift metrics.  With no plan
        or no matching rule the ambient default model serves and nothing is
        recorded — exactly the pre-deployment behaviour.
        """
        rule = plan.match(kernel) if plan is not None else None
        if rule is None:
            return self._default, None, None
        champion = self.model_for(rule.name, rule.version, "champion")
        challenger_spec = rule.challenger
        if challenger_spec is None or not assign_challenger(
            kernel, directives_key, challenger_spec.fraction
        ):
            return champion, None, rule.pattern
        challenger = self.model_for(
            challenger_spec.name, challenger_spec.version, "challenger"
        )
        if challenger_spec.shadow:
            return champion, challenger, rule.pattern
        return challenger, champion, rule.pattern

    def model_for(self, name: str, version: int, role: str) -> ResolvedModel:
        """Load ``(name, version)`` through the bounded artifact cache."""
        default = self._default
        if name == default.name and version == default.version:
            if role == "default":
                return default
            return ResolvedModel(
                name=name,
                version=version,
                role=role,
                model=default.model,
                fingerprint=default.fingerprint,
            )
        key = f"{name}:{version}"
        cached = self._cache.get(key)
        if cached is None:
            with self._load_lock:
                cached = self._cache.get(key)
                if cached is None:
                    try:
                        model = self.registry.load(name, version)
                    except KeyError as error:
                        raise UnknownArtifactError(
                            f"registry has no artifact {name} v{version}"
                        ) from error
                    cached = (model, model.fingerprint())
                    self._cache.put(key, cached)
        model, fingerprint = cached
        return ResolvedModel(
            name=name, version=version, role=role, model=model, fingerprint=fingerprint
        )

    # ------------------------------------------------------------- management

    def validate(self, plan: DeploymentPlan) -> None:
        """Reject plans referencing artifacts the registry does not hold."""
        for name, version in plan.artifact_refs():
            try:
                self.registry.load_artifact(name, version)
            except KeyError as error:
                raise UnknownArtifactError(
                    f"deployment plan references unknown artifact {name} v{version}"
                ) from error

    def publish(self, plan: DeploymentPlan) -> DeploymentPlan:
        """Validate and atomically publish ``plan`` under a fresh seq."""
        self.validate(plan)
        return self.store.put(plan)

    def promote(self, pattern: str | None = None) -> DeploymentPlan:
        """Promote the live plan's challenger(s) and publish the result."""
        plan = self._require_plan()
        return self.publish(plan.promote(pattern))

    def rollback(self, pattern: str | None = None) -> DeploymentPlan:
        """Drop the live plan's challenger(s) and publish the result."""
        plan = self._require_plan()
        return self.publish(plan.rollback(pattern))

    def describe(self) -> dict:
        """JSON view of the deployment state for ``GET /v1/deployments``."""
        plan = self.snapshot()
        return {
            "seq": plan.seq if plan is not None else None,
            "plan": plan.to_json() if plan is not None else None,
            "default": {
                "model": self._default.name,
                "version": self._default.version,
                "fingerprint": self._default.fingerprint,
            },
            "artifact_cache": {"entries": len(self._cache)},
        }

    def _require_plan(self) -> DeploymentPlan:
        plan = self.snapshot()
        if plan is None:
            raise ValueError("no deployment plan is installed")
        return plan
