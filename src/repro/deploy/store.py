"""Durable, atomically-swappable storage for deployment plans.

Plans live *through the registry*: the store keeps its files under
``<registry root>/_deployments/`` (a leading underscore keeps the directory
invisible to registry scans, which reject non-alphanumeric-leading names).
Replicas sharing one registry directory therefore share one deployment
state with no extra push channel:

* ``plan-<seq>.json`` — one immutable document per published sequence
  number, retained forever so jobs can pin the plan they started under and
  resume bitwise even after later publishes;
* ``current.json`` — a full copy of the live plan, swapped with the
  tmp-file + :func:`os.replace` idiom so readers only ever see a complete
  document;
* ``.lock`` — an ``flock`` serialising sequence allocation across
  processes (two replicas publishing concurrently cannot mint the same
  seq).

Readers revalidate by ``stat`` (:meth:`DeploymentStore.current`): the
parsed plan is cached against ``(st_mtime_ns, st_size)`` of
``current.json``, so the steady-state cost per request batch is one
``stat(2)`` and every replica converges on a publish without being told.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import threading
from pathlib import Path

from repro.deploy.plan import DeploymentPlan

try:  # pragma: no cover - exercised wherever flock exists (all POSIX)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["DEPLOYMENTS_DIRNAME", "DeploymentStore"]

#: Subdirectory of the registry root that holds deployment state.
DEPLOYMENTS_DIRNAME = "_deployments"

_PLAN_FILE_RE = re.compile(r"plan-(\d+)\.json$")


class DeploymentStore:
    """Seq-numbered plan documents under ``<root>/_deployments/``."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root) / DEPLOYMENTS_DIRNAME
        self._lock = threading.Lock()
        # (st_mtime_ns, st_size) of current.json → parsed plan.
        self._cached_sig: tuple[int, int] | None = None
        self._cached_plan: DeploymentPlan | None = None

    # ------------------------------------------------------------------ reads

    def current(self) -> DeploymentPlan | None:
        """The live plan, or ``None`` when nothing has been published.

        Cached against the ``stat`` signature of ``current.json`` so calling
        this per request batch costs one ``stat(2)`` in the steady state.
        """
        path = self._current_path
        try:
            stat = path.stat()
        except OSError:
            with self._lock:
                self._cached_sig = None
                self._cached_plan = None
            return None
        signature = (stat.st_mtime_ns, stat.st_size)
        with self._lock:
            if signature == self._cached_sig:
                return self._cached_plan
        plan = self._read_plan(path)
        with self._lock:
            self._cached_sig = signature
            self._cached_plan = plan
        return plan

    def load(self, seq: int) -> DeploymentPlan:
        """The immutable document published as ``seq`` (for job pinning)."""
        plan = self._read_plan(self.root / f"plan-{int(seq)}.json")
        if plan is None:
            raise KeyError(f"deployment store has no plan with seq {seq}")
        return plan

    def sequences(self) -> list[int]:
        """Every published sequence number, ascending."""
        try:
            entries = os.listdir(self.root)
        except OSError:
            return []
        seqs = []
        for entry in entries:
            match = _PLAN_FILE_RE.fullmatch(entry)
            if match:
                seqs.append(int(match.group(1)))
        return sorted(seqs)

    # ----------------------------------------------------------------- writes

    def put(self, plan: DeploymentPlan) -> DeploymentPlan:
        """Publish ``plan`` under a freshly-allocated seq and swap it live.

        The input plan's ``seq`` is ignored; allocation is serialised across
        processes by an ``flock`` so concurrent publishers never collide.
        Returns the plan as published (with its assigned seq).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with self._allocation_lock():
            seqs = self.sequences()
            seq = (seqs[-1] if seqs else 0) + 1
            published = DeploymentPlan(seq=seq, rules=plan.rules)
            document = json.dumps(published.to_json(), indent=2, sort_keys=True)
            self._write_atomic(self.root / f"plan-{seq}.json", document)
            self._write_atomic(self._current_path, document)
        return published

    # --------------------------------------------------------------- plumbing

    @property
    def _current_path(self) -> Path:
        return self.root / "current.json"

    @staticmethod
    def _read_plan(path: Path) -> DeploymentPlan | None:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        try:
            return DeploymentPlan.from_json(payload)
        except ValueError:
            return None

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    @contextlib.contextmanager
    def _allocation_lock(self):
        if fcntl is None:  # pragma: no cover - non-POSIX
            with self._lock:
                yield
            return
        with self._lock, open(self.root / ".lock", "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
