"""Model lifecycle: deployment plans, canary/shadow rollout, and resolution.

The registry (:mod:`repro.serve.registry`) stores artifacts; this package
turns it into a deployment system.  A :class:`DeploymentPlan` maps kernel
patterns onto artifact ``(name, version)`` pairs with optional canary /
shadow challengers, a :class:`DeploymentStore` publishes plans atomically
under seq numbers through the shared registry directory, and a
:class:`ModelResolver` resolves each request batch against one immutable
plan snapshot through a bounded artifact cache.  With no plan installed the
resolver degenerates to the ambient default model and the serving path is
bitwise-identical to the single-model service it replaced.
"""

from repro.deploy.plan import (
    PLAN_FORMAT_VERSION,
    ChallengerSpec,
    DeploymentPlan,
    DeploymentRule,
    UnknownArtifactError,
    assign_challenger,
)
from repro.deploy.resolver import ModelResolver, ResolvedModel
from repro.deploy.store import DEPLOYMENTS_DIRNAME, DeploymentStore

__all__ = [
    "DEPLOYMENTS_DIRNAME",
    "PLAN_FORMAT_VERSION",
    "ChallengerSpec",
    "DeploymentPlan",
    "DeploymentRule",
    "DeploymentStore",
    "ModelResolver",
    "ResolvedModel",
    "UnknownArtifactError",
    "assign_challenger",
]
