"""Deployment plans: which artifact serves which kernel, and how canaries split.

A :class:`DeploymentPlan` is a small JSON document that maps kernel patterns
(``fnmatch`` style, first match wins) onto a **champion** model artifact
``(name, version)`` from the registry, with an optional per-rule
**challenger**:

* *canary* (``shadow: false``) — the challenger serves a ``fraction`` of the
  rule's traffic and its predictions are returned to callers;
* *shadow* (``shadow: true``) — the challenger runs on the selected designs,
  its predictions are recorded and diffed against the champion's, but the
  champion's answer is what callers see.

In both modes the selected designs are predicted by **both** arms so the
service can export champion/challenger divergence metrics.

The split is a pure function of the design point: :func:`assign_challenger`
hashes ``kernel + "\\x00" + directives_key`` with blake2b and compares the
first 8 bytes against ``fraction * 2**64``.  No RNG, no per-replica state —
the same design point lands on the same arm on every replica, every process,
every restart, and the assignment is monotone in ``fraction`` (raising the
fraction only ever moves designs *onto* the challenger).

Plans are versioned documents with a server-assigned ``seq``; storage and
atomic swap live in :mod:`repro.deploy.store`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fnmatch import fnmatchcase

__all__ = [
    "PLAN_FORMAT_VERSION",
    "ChallengerSpec",
    "DeploymentPlan",
    "DeploymentRule",
    "UnknownArtifactError",
    "assign_challenger",
]

#: Bump when the plan document schema changes incompatibly.
PLAN_FORMAT_VERSION = 1

_TWO_64 = 1 << 64


class UnknownArtifactError(KeyError):
    """A plan references an artifact ``(name, version)`` the registry lacks."""

    def __str__(self) -> str:  # KeyError wraps its message in quotes
        return self.args[0] if self.args else "unknown artifact"


def assign_challenger(kernel: str, directives_key: str, fraction: float) -> bool:
    """Deterministically decide whether a design point rides the challenger.

    The decision is a pure function of ``(kernel, directives_key, fraction)``
    so every replica — and every restart — splits traffic identically.
    """
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    digest = hashlib.blake2b(
        f"{kernel}\x00{directives_key}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") < int(fraction * _TWO_64)


@dataclass(frozen=True)
class ChallengerSpec:
    """The challenger arm of one rule: artifact, traffic slice, and mode."""

    name: str
    version: int
    fraction: float = 1.0
    shadow: bool = False

    def to_json(self) -> dict:
        return {
            "model": self.name,
            "model_version": self.version,
            "fraction": self.fraction,
            "shadow": self.shadow,
        }


@dataclass(frozen=True)
class DeploymentRule:
    """One routing rule: kernel pattern → champion, with optional challenger."""

    pattern: str
    name: str
    version: int
    challenger: ChallengerSpec | None = None

    def matches(self, kernel: str) -> bool:
        return fnmatchcase(kernel, self.pattern)

    def to_json(self) -> dict:
        payload = {
            "pattern": self.pattern,
            "model": self.name,
            "model_version": self.version,
        }
        if self.challenger is not None:
            payload["challenger"] = self.challenger.to_json()
        return payload


@dataclass(frozen=True)
class DeploymentPlan:
    """A seq-numbered, immutable set of routing rules."""

    seq: int
    rules: tuple[DeploymentRule, ...]

    def match(self, kernel: str) -> DeploymentRule | None:
        """First rule whose pattern matches ``kernel``, or ``None``."""
        for rule in self.rules:
            if rule.matches(kernel):
                return rule
        return None

    def artifact_refs(self) -> list[tuple[str, int]]:
        """Every ``(name, version)`` the plan references, champions first."""
        refs: list[tuple[str, int]] = []
        for rule in self.rules:
            refs.append((rule.name, rule.version))
            if rule.challenger is not None:
                refs.append((rule.challenger.name, rule.challenger.version))
        return refs

    def to_json(self) -> dict:
        return {
            "version": PLAN_FORMAT_VERSION,
            "seq": self.seq,
            "rules": [rule.to_json() for rule in self.rules],
        }

    @classmethod
    def from_json(cls, payload: object, *, seq: int | None = None) -> DeploymentPlan:
        """Parse and validate a plan document.

        ``seq`` overrides the document's own sequence number (the store
        assigns it at publish time; client-submitted values are ignored).
        Raises :class:`ValueError` on any malformed field.
        """
        if not isinstance(payload, dict):
            raise ValueError("deployment plan must be a JSON object")
        version = payload.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported deployment plan version {version!r} "
                f"(this build speaks {PLAN_FORMAT_VERSION})"
            )
        raw_rules = payload.get("rules", [])
        if not isinstance(raw_rules, list):
            raise ValueError("deployment plan 'rules' must be a list")
        rules = tuple(_rule_from_json(entry, index) for index, entry in enumerate(raw_rules))
        if seq is None:
            seq = payload.get("seq", 0)
            if not isinstance(seq, int) or seq < 0:
                raise ValueError("deployment plan 'seq' must be a non-negative integer")
        return cls(seq=seq, rules=rules)

    def promote(self, pattern: str | None = None) -> DeploymentPlan:
        """Challenger becomes champion (and is removed) for matching rules.

        ``pattern=None`` promotes every rule that has a challenger; otherwise
        only the rule whose pattern equals ``pattern``.  Raises
        :class:`ValueError` when nothing is promotable.
        """
        rules, changed = [], 0
        for rule in self.rules:
            if rule.challenger is not None and pattern in (None, rule.pattern):
                rules.append(
                    DeploymentRule(
                        pattern=rule.pattern,
                        name=rule.challenger.name,
                        version=rule.challenger.version,
                    )
                )
                changed += 1
            else:
                rules.append(rule)
        if not changed:
            raise ValueError(
                "no canary to promote"
                + (f" for rule pattern {pattern!r}" if pattern is not None else "")
            )
        return DeploymentPlan(seq=self.seq, rules=tuple(rules))

    def rollback(self, pattern: str | None = None) -> DeploymentPlan:
        """Drop the challenger (champion keeps serving) for matching rules."""
        rules, changed = [], 0
        for rule in self.rules:
            if rule.challenger is not None and pattern in (None, rule.pattern):
                rules.append(
                    DeploymentRule(
                        pattern=rule.pattern, name=rule.name, version=rule.version
                    )
                )
                changed += 1
            else:
                rules.append(rule)
        if not changed:
            raise ValueError(
                "no canary to roll back"
                + (f" for rule pattern {pattern!r}" if pattern is not None else "")
            )
        return DeploymentPlan(seq=self.seq, rules=tuple(rules))


def _rule_from_json(entry: object, index: int) -> DeploymentRule:
    where = f"rules[{index}]"
    if not isinstance(entry, dict):
        raise ValueError(f"{where} must be a JSON object")
    pattern = entry.get("pattern")
    if not isinstance(pattern, str) or not pattern:
        raise ValueError(f"{where}.pattern must be a non-empty string")
    name, version = _artifact_from(entry, where)
    challenger = None
    raw = entry.get("challenger")
    if raw is not None:
        cwhere = f"{where}.challenger"
        if not isinstance(raw, dict):
            raise ValueError(f"{cwhere} must be a JSON object")
        cname, cversion = _artifact_from(raw, cwhere)
        shadow = raw.get("shadow", False)
        if not isinstance(shadow, bool):
            raise ValueError(f"{cwhere}.shadow must be a boolean")
        fraction = raw.get("fraction", 1.0 if shadow else None)
        if fraction is None:
            raise ValueError(f"{cwhere}.fraction is required for a canary")
        if isinstance(fraction, bool) or not isinstance(fraction, (int, float)):
            raise ValueError(f"{cwhere}.fraction must be a number")
        fraction = float(fraction)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"{cwhere}.fraction must be in (0, 1], got {fraction}")
        challenger = ChallengerSpec(
            name=cname, version=cversion, fraction=fraction, shadow=shadow
        )
    return DeploymentRule(
        pattern=pattern, name=name, version=version, challenger=challenger
    )


def _artifact_from(entry: dict, where: str) -> tuple[str, int]:
    name = entry.get("model")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{where}.model must be a non-empty string")
    version = entry.get("model_version")
    if isinstance(version, bool) or not isinstance(version, int) or version < 1:
        raise ValueError(f"{where}.model_version must be a positive integer")
    return name, version
