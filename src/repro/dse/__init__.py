"""Design-space exploration case study (Section IV-C).

PowerGear is used as the power predictor inside an iterative Pareto-guided
sampling loop that trades off latency against dynamic power; the quality of
the resulting approximate Pareto frontier is measured with the average
distance from reference set (ADRS, Eq. 8) against the exact frontier computed
from ground-truth measurements of every design point.
"""

from repro.dse.pareto import pareto_front, adrs, ParetoPoint
from repro.dse.explorer import (
    DSEConfig,
    DSEResult,
    ExplorationState,
    ParetoExplorer,
    DesignCandidate,
)

__all__ = [
    "pareto_front",
    "adrs",
    "ParetoPoint",
    "DSEConfig",
    "DSEResult",
    "ExplorationState",
    "ParetoExplorer",
    "DesignCandidate",
]
